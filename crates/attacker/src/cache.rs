//! Session-cache theft (§6.2).
//!
//! The server's session cache maps session IDs to live master secrets.
//! A captured connection shows its session ID in plaintext (ClientHello on
//! resumption; ServerHello on establishment); an attacker who dumps the
//! cache while the entry is resident recovers the secret and decrypts
//! every connection under that session — the original full handshake and
//! each resumption.

use crate::passive::CapturedConnection;
use crate::stek::RecoveredTraffic;
use ts_tls::cache::SharedSessionCache;
use ts_tls::session::SessionState;

/// Why a cache attack failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheAttackError {
    /// No session ID visible in the capture.
    NoSessionId,
    /// The dump holds no entry for the captured ID (evicted/expired-swept).
    NotInDump,
    /// Record decryption failed.
    RecordFailure(String),
}

impl std::fmt::Display for CacheAttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheAttackError::NoSessionId => write!(f, "no session ID in capture"),
            CacheAttackError::NotInDump => write!(f, "session not in stolen cache"),
            CacheAttackError::RecordFailure(e) => write!(f, "record decryption failed: {e}"),
        }
    }
}

impl std::error::Error for CacheAttackError {}

/// A stolen cache dump: raw (session id, state) pairs, exactly what
/// memory forensics on a terminator yields.
pub type CacheDump = Vec<(Vec<u8>, SessionState)>;

/// Dump a live shared cache (the moment of compromise).
pub fn steal_cache(cache: &SharedSessionCache) -> CacheDump {
    cache.dump_secrets()
}

/// Decrypt a capture using a stolen cache dump.
pub fn decrypt_with_cache_dump(
    capture: &CapturedConnection,
    dump: &CacheDump,
) -> Result<RecoveredTraffic, CacheAttackError> {
    // The resumption ID (offered and echoed) or the freshly issued one.
    let candidate_ids: Vec<&Vec<u8>> = [&capture.offered_session_id, &capture.server_session_id]
        .into_iter()
        .filter(|id| !id.is_empty())
        .collect();
    if candidate_ids.is_empty() {
        return Err(CacheAttackError::NoSessionId);
    }
    for id in candidate_ids {
        if let Some((_, state)) = dump.iter().find(|(k, _)| k == id) {
            let (c2s, s2c) = capture
                .decrypt_with_master(&state.master_secret)
                .map_err(|e| CacheAttackError::RecordFailure(e.to_string()))?;
            return Ok(RecoveredTraffic {
                client_to_server: c2s,
                server_to_client: s2c,
                master_secret: state.master_secret,
            });
        }
    }
    Err(CacheAttackError::NotInDump)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passive::testutil::{run_connection, world};

    #[test]
    fn dumped_cache_decrypts_established_connection() {
        let w = world(b"cache-steal");
        let (capture, _client, _server) =
            run_connection(&w, b"c1", 100, b"GET /messages", b"private messages", None);
        // Compromise happens after the connection, while the entry lives.
        let dump = steal_cache(w.config.session_cache.as_ref().unwrap());
        assert!(!dump.is_empty(), "session cached");
        let parsed = CapturedConnection::parse(&capture).unwrap();
        let recovered = decrypt_with_cache_dump(&parsed, &dump).unwrap();
        assert_eq!(recovered.client_to_server, b"GET /messages");
        assert_eq!(recovered.server_to_client, b"private messages");
    }

    #[test]
    fn unrelated_dump_fails() {
        let w = world(b"cache-unrelated");
        let (capture, _c, _s) = run_connection(&w, b"c1", 100, b"req", b"resp", None);
        let parsed = CapturedConnection::parse(&capture).unwrap();
        let other = world(b"cache-other");
        let (_cap2, _c2, _s2) = run_connection(&other, b"c2", 100, b"x", b"y", None);
        let dump = steal_cache(other.config.session_cache.as_ref().unwrap());
        assert_eq!(
            decrypt_with_cache_dump(&parsed, &dump),
            Err(CacheAttackError::NotInDump)
        );
    }

    #[test]
    fn cleared_cache_defeats_the_attack() {
        let w = world(b"cache-cleared");
        let (capture, _c, _s) = run_connection(&w, b"c1", 100, b"req", b"resp", None);
        let cache = w.config.session_cache.as_ref().unwrap();
        cache.clear(); // secure erase (§8.2)
        let dump = steal_cache(cache);
        assert!(dump.is_empty());
        let parsed = CapturedConnection::parse(&capture).unwrap();
        assert_eq!(
            decrypt_with_cache_dump(&parsed, &dump),
            Err(CacheAttackError::NotInDump)
        );
    }

    #[test]
    fn expired_but_unswept_entries_still_fall() {
        // The paper's point about the window ending only at secure
        // *discard*: refusing resumption is not the same as erasing.
        let w = world(b"cache-unswept");
        let (capture, _c, _s) = run_connection(&w, b"c1", 100, b"old request", b"old data", None);
        // Much later: entry expired for resumption purposes...
        let cache = w.config.session_cache.as_ref().unwrap();
        let parsed = CapturedConnection::parse(&capture).unwrap();
        assert!(cache
            .lookup("victim.sim", &parsed.server_session_id, 10_000_000)
            .is_none());
        // ...but memory still holds it until a sweep.
        let dump = steal_cache(cache);
        assert!(decrypt_with_cache_dump(&parsed, &dump).is_ok());
        cache.sweep(10_000_000);
        let dump = steal_cache(cache);
        assert_eq!(
            decrypt_with_cache_dump(&parsed, &dump),
            Err(CacheAttackError::NotInDump)
        );
    }
}
