//! Diffie-Hellman value theft (§6.3).
//!
//! When a server reuses its ephemeral value, stealing the secret exponent
//! `a` (or X25519 scalar `d_A`) lets the attacker recompute the premaster
//! for every captured connection that used the value — the client's public
//! value is in the plaintext ClientKeyExchange — and, unlike session-state
//! theft, this also decrypts *future* connections until the value rotates.

use crate::passive::CapturedConnection;
use crate::stek::RecoveredTraffic;
use ts_crypto::bignum::Ub;
use ts_tls::ephemeral::{CachedDhe, CachedEcdhe};
use ts_tls::keys::master_secret;
use ts_tls::suites::KeyExchange;

/// Why a DH-value attack failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhAttackError {
    /// The capture is not a full PFS handshake (no client KEX on the wire).
    NoClientKex,
    /// The suite's exchange doesn't match the stolen value's type.
    KexMismatch,
    /// Premaster recomputation failed (wrong value / server rotated).
    WrongValue(String),
    /// Record decryption failed (the stolen value wasn't the one used).
    RecordFailure(String),
}

impl std::fmt::Display for DhAttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhAttackError::NoClientKex => write!(f, "no ClientKeyExchange in capture"),
            DhAttackError::KexMismatch => write!(f, "stolen value type does not match suite"),
            DhAttackError::WrongValue(e) => write!(f, "premaster recomputation failed: {e}"),
            DhAttackError::RecordFailure(e) => write!(f, "record decryption failed: {e}"),
        }
    }
}

impl std::error::Error for DhAttackError {}

/// Decrypt a capture with a stolen finite-field DHE secret.
pub fn decrypt_with_stolen_dhe(
    capture: &CapturedConnection,
    stolen: &CachedDhe,
) -> Result<RecoveredTraffic, DhAttackError> {
    if capture.cipher_suite.key_exchange() != KeyExchange::Dhe {
        return Err(DhAttackError::KexMismatch);
    }
    let yc = capture
        .client_kex_public
        .as_ref()
        .ok_or(DhAttackError::NoClientKex)?;
    let yc = Ub::from_bytes_be(yc);
    let premaster = stolen
        .keypair
        .shared_secret(&yc)
        .map_err(|e| DhAttackError::WrongValue(e.to_string()))?;
    finish(capture, &premaster)
}

/// Decrypt a capture with a stolen X25519 secret.
pub fn decrypt_with_stolen_ecdhe(
    capture: &CapturedConnection,
    stolen: &CachedEcdhe,
) -> Result<RecoveredTraffic, DhAttackError> {
    if capture.cipher_suite.key_exchange() != KeyExchange::Ecdhe {
        return Err(DhAttackError::KexMismatch);
    }
    let point = capture
        .client_kex_public
        .as_ref()
        .ok_or(DhAttackError::NoClientKex)?;
    let point: [u8; 32] = point
        .as_slice()
        .try_into()
        .map_err(|_| DhAttackError::WrongValue("bad point length".into()))?;
    let premaster = stolen.keypair.shared_secret(&point).to_vec();
    finish(capture, &premaster)
}

/// Sanity check: does the stolen value match what the server presented on
/// the wire? (An attacker can pre-filter captures this way.)
pub fn value_matches_capture(capture: &CapturedConnection, public_value: &[u8]) -> bool {
    capture
        .server_kex_public
        .as_ref()
        .map(|v| v == public_value)
        .unwrap_or(false)
}

fn finish(
    capture: &CapturedConnection,
    premaster: &[u8],
) -> Result<RecoveredTraffic, DhAttackError> {
    let master = master_secret(premaster, &capture.client_random, &capture.server_random);
    let (c2s, s2c) = capture
        .decrypt_with_master(&master)
        .map_err(|e| DhAttackError::RecordFailure(e.to_string()))?;
    Ok(RecoveredTraffic {
        client_to_server: c2s,
        server_to_client: s2c,
        master_secret: master,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passive::testutil::world;
    use ts_crypto::drbg::HmacDrbg;
    use ts_tls::config::ClientConfig;
    use ts_tls::pump::{pump, pump_app_data};
    use ts_tls::suites::CipherSuite;
    use ts_tls::{ClientConn, ServerConn};

    fn run_with_suites(
        w: &crate::passive::testutil::World,
        suites: Vec<CipherSuite>,
        seed: &[u8],
        req: &[u8],
        resp: &[u8],
    ) -> ts_tls::pump::WireCapture {
        let mut ccfg = ClientConfig::new(w.store.clone(), "victim.sim", 100);
        ccfg.suites = suites;
        let mut client = ClientConn::new(ccfg, HmacDrbg::new(&[seed, b"-c"].concat()));
        let mut server = ServerConn::new(
            w.config.clone(),
            HmacDrbg::new(&[seed, b"-s"].concat()),
            100,
        );
        let result = pump(&mut client, &mut server).unwrap();
        let mut capture = result.capture;
        client.send_app_data(req).unwrap();
        pump_app_data(&mut client, &mut server, &mut capture).unwrap();
        server.send_app_data(resp).unwrap();
        pump_app_data(&mut client, &mut server, &mut capture).unwrap();
        capture
    }

    #[test]
    fn stolen_dhe_secret_decrypts() {
        let w = world(b"dhe-steal");
        let capture = run_with_suites(
            &w,
            CipherSuite::dhe_only().to_vec(),
            b"d1",
            b"dhe request",
            b"dhe response",
        );
        let parsed = CapturedConnection::parse(&capture).unwrap();
        let (stolen_dhe, _) = w.config.ephemeral.steal();
        let stolen = stolen_dhe.expect("server cached its DHE value");
        assert!(value_matches_capture(
            &parsed,
            &stolen.keypair.public_bytes()
        ));
        let recovered = decrypt_with_stolen_dhe(&parsed, &stolen).unwrap();
        assert_eq!(recovered.client_to_server, b"dhe request");
        assert_eq!(recovered.server_to_client, b"dhe response");
    }

    #[test]
    fn stolen_ecdhe_secret_decrypts() {
        let w = world(b"ecdhe-steal");
        let capture = run_with_suites(
            &w,
            CipherSuite::ecdhe_only().to_vec(),
            b"e1",
            b"ec request",
            b"ec response",
        );
        let parsed = CapturedConnection::parse(&capture).unwrap();
        let (_, stolen_ecdhe) = w.config.ephemeral.steal();
        let stolen = stolen_ecdhe.expect("server cached its ECDHE value");
        assert!(value_matches_capture(&parsed, &stolen.keypair.public));
        let recovered = decrypt_with_stolen_ecdhe(&parsed, &stolen).unwrap();
        assert_eq!(recovered.client_to_server, b"ec request");
        assert_eq!(recovered.server_to_client, b"ec response");
    }

    #[test]
    fn value_theft_decrypts_future_connections_too() {
        // Steal first, capture later: reuse means the same value protects
        // future traffic (§6.3).
        let w = world(b"dhe-future");
        // Prime the cache with one connection, then steal.
        let _ = run_with_suites(&w, CipherSuite::ecdhe_only().to_vec(), b"p", b"x", b"y");
        let (_, stolen) = w.config.ephemeral.steal();
        let stolen = stolen.unwrap();
        // A *later* connection.
        let capture = run_with_suites(
            &w,
            CipherSuite::ecdhe_only().to_vec(),
            b"later",
            b"future secret",
            b"future reply",
        );
        let parsed = CapturedConnection::parse(&capture).unwrap();
        let recovered = decrypt_with_stolen_ecdhe(&parsed, &stolen).unwrap();
        assert_eq!(recovered.client_to_server, b"future secret");
    }

    #[test]
    fn wrong_value_fails() {
        let w = world(b"dhe-wrong");
        let capture = run_with_suites(
            &w,
            CipherSuite::ecdhe_only().to_vec(),
            b"w1",
            b"req",
            b"resp",
        );
        let parsed = CapturedConnection::parse(&capture).unwrap();
        // A fresh unrelated keypair.
        let mut rng = HmacDrbg::new(b"unrelated-ec");
        let wrong = ts_tls::ephemeral::CachedEcdhe {
            keypair: std::sync::Arc::new(ts_crypto::x25519::X25519KeyPair::generate(&mut rng)),
            created_at: 0,
        };
        assert!(!value_matches_capture(&parsed, &wrong.keypair.public));
        assert!(matches!(
            decrypt_with_stolen_ecdhe(&parsed, &wrong),
            Err(DhAttackError::RecordFailure(_))
        ));
    }

    #[test]
    fn kex_mismatch_detected() {
        let w = world(b"dhe-mismatch");
        let capture = run_with_suites(
            &w,
            CipherSuite::ecdhe_only().to_vec(),
            b"m1",
            b"req",
            b"resp",
        );
        let parsed = CapturedConnection::parse(&capture).unwrap();
        let (stolen_dhe, _) = w.config.ephemeral.steal();
        // Force-generate a DHE value to have something to try.
        let _ = w.config.ephemeral.dhe_keypair(0);
        let (stolen_dhe2, _) = w.config.ephemeral.steal();
        let stolen = stolen_dhe.or(stolen_dhe2).unwrap();
        assert_eq!(
            decrypt_with_stolen_dhe(&parsed, &stolen).unwrap_err(),
            DhAttackError::KexMismatch
        );
    }
}
