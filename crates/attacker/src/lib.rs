//! # ts-attacker — the §6/§7 threat model, executable
//!
//! The paper's attacker passively records TLS traffic, later compromises a
//! server's stored secrets, and decrypts the recorded connections. This
//! crate makes each step concrete against real captures from the `ts-tls`
//! stack:
//!
//! * [`passive`] — parse a wire capture without any keys: handshake
//!   plaintext (randoms, suite, offered/issued tickets, session IDs) plus
//!   the encrypted record bodies per direction
//! * [`stek`] — STEK theft (§6.1): decrypt the ticket from the capture,
//!   recover the master secret, re-derive record keys, read the traffic
//! * [`cache`] — session-cache theft (§6.2): match the captured session ID
//!   against a stolen cache dump
//! * [`dhe`] — Diffie-Hellman value theft (§6.3): recompute the premaster
//!   from the stolen server secret and the captured client public
//! * [`target`] — nation-state target analysis (§7.2): keys-per-day
//!   arithmetic, cross-protocol STEK reach, MX-census impact
//!
//! Every function either produces the exact plaintext or a typed refusal —
//! the tests assert both directions (stolen secret ⇒ plaintext recovered;
//! wrong/rotated secret ⇒ nothing).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dhe;
pub mod passive;
pub mod stek;
pub mod target;

pub use passive::{CapturedConnection, PassiveParseError};
