//! Passive capture parsing — what an on-path observer sees without keys.

use ts_tls::pump::WireCapture;
use ts_tls::suites::CipherSuite;
use ts_tls::wire::extensions::find_session_ticket;
use ts_tls::wire::handshake::{ClientKeyExchange, HandshakeMessage, HandshakeReassembler};
use ts_tls::wire::record::{ContentType, RecordLayer};

/// Parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassiveParseError {
    /// Record framing broke.
    BadRecord(String),
    /// A plaintext handshake message failed to parse.
    BadHandshake(String),
    /// The capture is missing a required message.
    Missing(&'static str),
}

impl std::fmt::Display for PassiveParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassiveParseError::BadRecord(e) => write!(f, "bad record: {e}"),
            PassiveParseError::BadHandshake(e) => write!(f, "bad handshake: {e}"),
            PassiveParseError::Missing(what) => write!(f, "capture missing {what}"),
        }
    }
}

impl std::error::Error for PassiveParseError {}

/// One direction's encrypted records, in order (sequence = index).
#[derive(Debug, Clone, Default)]
pub struct EncryptedRecords {
    /// Raw protected bodies with their content types.
    pub records: Vec<(ContentType, Vec<u8>)>,
}

/// Everything extractable from a capture without keys.
#[derive(Debug, Clone)]
pub struct CapturedConnection {
    /// Client random.
    pub client_random: [u8; 32],
    /// Server random.
    pub server_random: [u8; 32],
    /// Negotiated suite (from ServerHello).
    pub cipher_suite: CipherSuite,
    /// Session ID the client offered.
    pub offered_session_id: Vec<u8>,
    /// Session ID the server answered with.
    pub server_session_id: Vec<u8>,
    /// Ticket the client offered in its ClientHello (resumption attempts).
    pub offered_ticket: Option<Vec<u8>>,
    /// Ticket the server issued in plaintext (NewSessionTicket).
    pub issued_ticket: Option<Vec<u8>>,
    /// The abbreviated-handshake signal: server CCS arrived before any
    /// Certificate.
    pub abbreviated: bool,
    /// Client key-exchange public value (full handshakes; plaintext).
    pub client_kex_public: Option<Vec<u8>>,
    /// Server key-exchange public value (from ServerKeyExchange).
    pub server_kex_public: Option<Vec<u8>>,
    /// Encrypted records the client sent (Finished first, then data).
    pub client_encrypted: EncryptedRecords,
    /// Encrypted records the server sent.
    pub server_encrypted: EncryptedRecords,
}

/// Parse one direction: plaintext handshake until CCS, then raw bodies.
struct DirectionParse {
    messages: Vec<HandshakeMessage>,
    encrypted: EncryptedRecords,
}

fn parse_direction(
    bytes: &[u8],
    suite_hint: impl Fn(&[HandshakeMessage]) -> Option<CipherSuite>,
) -> Result<DirectionParse, PassiveParseError> {
    let mut layer = RecordLayer::new();
    layer.feed(bytes);
    let mut reasm = HandshakeReassembler::new();
    let mut messages = Vec::new();
    let mut encrypted = EncryptedRecords::default();
    let mut after_ccs = false;
    loop {
        let record = match layer.next_record() {
            Ok(Some(r)) => r,
            Ok(None) => break,
            Err(e) => return Err(PassiveParseError::BadRecord(e.to_string())),
        };
        if after_ccs {
            encrypted
                .records
                .push((record.content_type, record.payload));
            continue;
        }
        match record.content_type {
            ContentType::ChangeCipherSpec => after_ccs = true,
            ContentType::Handshake => {
                reasm.feed(&record.payload);
                loop {
                    // The CKE decoder needs the negotiated suite, which
                    // the caller learned from the peer's ServerHello.
                    let hint = suite_hint(&messages);
                    match reasm.next(hint) {
                        Ok(Some(m)) => messages.push(m),
                        Ok(None) => break,
                        Err(e) => return Err(PassiveParseError::BadHandshake(e.to_string())),
                    }
                }
            }
            ContentType::Alert | ContentType::ApplicationData => {
                // Plaintext alerts (pre-CCS failures) are ignorable here.
            }
        }
    }
    Ok(DirectionParse {
        messages,
        encrypted,
    })
}

impl CapturedConnection {
    /// Parse a full capture.
    pub fn parse(capture: &WireCapture) -> Result<CapturedConnection, PassiveParseError> {
        // Server direction first: it reveals the suite.
        let server = parse_direction(&capture.server_to_client, |_own| None)?;
        let sh = server
            .messages
            .iter()
            .find_map(|m| match m {
                HandshakeMessage::ServerHello(sh) => Some(sh.clone()),
                _ => None,
            })
            .ok_or(PassiveParseError::Missing("ServerHello"))?;
        let cipher_suite = CipherSuite::from_id(sh.cipher_suite)
            .ok_or(PassiveParseError::Missing("known cipher suite"))?;
        let client = parse_direction(&capture.client_to_server, move |_own| Some(cipher_suite))?;
        let ch = client
            .messages
            .iter()
            .find_map(|m| match m {
                HandshakeMessage::ClientHello(ch) => Some(ch.clone()),
                _ => None,
            })
            .ok_or(PassiveParseError::Missing("ClientHello"))?;
        let offered_ticket = find_session_ticket(&ch.extensions)
            .filter(|t| !t.is_empty())
            .map(|t| t.to_vec());
        let issued_ticket = server.messages.iter().find_map(|m| match m {
            HandshakeMessage::NewSessionTicket(nst) => Some(nst.ticket.clone()),
            _ => None,
        });
        let abbreviated = !server
            .messages
            .iter()
            .any(|m| matches!(m, HandshakeMessage::Certificate(_)));
        let client_kex_public = client.messages.iter().find_map(|m| match m {
            HandshakeMessage::ClientKeyExchange(cke) => Some(match cke {
                ClientKeyExchange::Rsa {
                    encrypted_premaster,
                } => encrypted_premaster.clone(),
                ClientKeyExchange::Dhe { yc } => yc.clone(),
                ClientKeyExchange::Ecdhe { point } => point.clone(),
            }),
            _ => None,
        });
        let server_kex_public = server.messages.iter().find_map(|m| match m {
            HandshakeMessage::ServerKeyExchange(ske) => Some(ske.params.public_value().to_vec()),
            _ => None,
        });
        Ok(CapturedConnection {
            client_random: ch.random,
            server_random: sh.random,
            cipher_suite,
            offered_session_id: ch.session_id.clone(),
            server_session_id: sh.session_id.clone(),
            offered_ticket,
            issued_ticket,
            abbreviated,
            client_kex_public,
            server_kex_public,
            client_encrypted: client.encrypted,
            server_encrypted: server.encrypted,
        })
    }

    /// Decrypt both directions' application data with a recovered master
    /// secret. Returns (client→server bytes, server→client bytes).
    pub fn decrypt_with_master(
        &self,
        master: &[u8; 48],
    ) -> Result<(Vec<u8>, Vec<u8>), ts_tls::TlsError> {
        let keys = ts_tls::keys::key_block(
            master,
            &self.client_random,
            &self.server_random,
            self.cipher_suite,
        );
        let decrypt_dir = |dir_keys: &ts_tls::wire::record::DirectionKeys,
                           records: &EncryptedRecords|
         -> Result<Vec<u8>, ts_tls::TlsError> {
            let mut out = Vec::new();
            for (seq, (content_type, body)) in records.records.iter().enumerate() {
                let pt = ts_tls::wire::record::decrypt_captured(
                    dir_keys,
                    seq as u64,
                    *content_type,
                    body,
                )?;
                if *content_type == ContentType::ApplicationData {
                    out.extend_from_slice(&pt);
                }
            }
            Ok(out)
        };
        let c2s = decrypt_dir(&keys.client_write, &self.client_encrypted)?;
        let s2c = decrypt_dir(&keys.server_write, &self.server_encrypted)?;
        Ok((c2s, s2c))
    }
}

/// Shared fixtures for this crate's attack tests.
#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::Arc;
    use ts_crypto::drbg::HmacDrbg;
    use ts_crypto::rsa::RsaPrivateKey;
    use ts_tls::config::{ClientConfig, ServerConfig, ServerIdentity};
    use ts_tls::ephemeral::{EphemeralCache, EphemeralPolicy};
    use ts_tls::pump::{pump, pump_app_data};
    use ts_tls::ticket::{RotationPolicy, SharedStekManager, StekManager, TicketFormat};
    use ts_tls::{ClientConn, ServerConn};
    use ts_x509::{Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

    pub(crate) struct World {
        pub store: Arc<RootStore>,
        pub config: ServerConfig,
    }

    pub(crate) fn world(seed: &[u8]) -> World {
        let mut rng = HmacDrbg::new(seed);
        let ca_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let ca_name = DistinguishedName::cn("Attack CA");
        let ca = Certificate::issue(
            &CertificateParams {
                serial: 1,
                subject: ca_name.clone(),
                validity: Validity {
                    not_before: 0,
                    not_after: u32::MAX as u64,
                },
                dns_names: vec![],
                is_ca: true,
            },
            &ca_key.public,
            &ca_name,
            &ca_key,
        );
        let leaf_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let leaf = Certificate::issue(
            &CertificateParams {
                serial: 2,
                subject: DistinguishedName::cn("victim.sim"),
                validity: Validity {
                    not_before: 0,
                    not_after: u32::MAX as u64,
                },
                dns_names: vec!["victim.sim".into()],
                is_ca: false,
            },
            &leaf_key.public,
            &ca_name,
            &ca_key,
        );
        let mut store = RootStore::new();
        store.add_root(ca);
        let identity = Arc::new(ServerIdentity {
            chain: vec![leaf],
            key: leaf_key,
        });
        let eph = EphemeralCache::new(
            EphemeralPolicy::ReuseForever,
            ts_crypto::dh::DhGroup::Sim256,
            HmacDrbg::new(&[seed, b"-eph"].concat()),
        );
        let mut config = ServerConfig::new(identity, eph);
        config.tickets = Some(SharedStekManager::new(StekManager::new(
            RotationPolicy::Static,
            TicketFormat::Rfc5077,
            HmacDrbg::new(&[seed, b"-stek"].concat()),
            0,
        )));
        config.ticket_accept_window = 86_400;
        config.ticket_lifetime_hint = 86_400;
        World {
            store: Arc::new(store),
            config,
        }
    }

    pub(crate) fn run_connection(
        w: &World,
        seed: &[u8],
        now: u64,
        request: &[u8],
        response: &[u8],
        resume_ticket: Option<(Vec<u8>, ts_tls::session::SessionState)>,
    ) -> (ts_tls::pump::WireCapture, ClientConn, ServerConn) {
        let mut ccfg = ClientConfig::new(w.store.clone(), "victim.sim", now);
        ccfg.resumption.ticket = resume_ticket;
        let mut client = ClientConn::new(ccfg, HmacDrbg::new(&[seed, b"-c"].concat()));
        let mut server = ServerConn::new(
            w.config.clone(),
            HmacDrbg::new(&[seed, b"-s"].concat()),
            now,
        );
        let result = pump(&mut client, &mut server).expect("handshake");
        let mut capture = result.capture;
        client.send_app_data(request).unwrap();
        pump_app_data(&mut client, &mut server, &mut capture).unwrap();
        server.send_app_data(response).unwrap();
        pump_app_data(&mut client, &mut server, &mut capture).unwrap();
        (capture, client, server)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{run_connection, world};
    use super::*;

    #[test]
    fn parse_full_handshake_capture() {
        let w = world(b"parse-full");
        let (capture, client, _server) =
            run_connection(&w, b"c1", 100, b"GET /secret", b"200 OK", None);
        let parsed = CapturedConnection::parse(&capture).unwrap();
        assert!(!parsed.abbreviated);
        assert!(
            parsed.issued_ticket.is_some(),
            "NST is plaintext on the wire"
        );
        assert!(parsed.offered_ticket.is_none());
        assert!(parsed.client_kex_public.is_some());
        assert!(parsed.server_kex_public.is_some());
        assert_eq!(parsed.cipher_suite, client.summary().unwrap().cipher_suite);
        assert!(!parsed.client_encrypted.records.is_empty());
        assert!(!parsed.server_encrypted.records.is_empty());
    }

    #[test]
    fn parse_abbreviated_capture() {
        let w = world(b"parse-abbrev");
        let (cap1, client, _server) = run_connection(&w, b"c1", 100, b"req", b"resp", None);
        let s = client.summary().unwrap();
        let nst = s.new_ticket.clone().unwrap();
        let parsed1 = CapturedConnection::parse(&cap1).unwrap();
        assert!(!parsed1.abbreviated);
        let (cap2, _client2, _server2) = run_connection(
            &w,
            b"c2",
            200,
            b"req2",
            b"resp2",
            Some((nst.ticket.clone(), s.session.clone())),
        );
        let parsed2 = CapturedConnection::parse(&cap2).unwrap();
        assert!(parsed2.abbreviated, "no Certificate on resumption");
        assert_eq!(parsed2.offered_ticket, Some(nst.ticket));
    }

    #[test]
    fn decrypt_with_correct_master_recovers_plaintext() {
        let w = world(b"decrypt");
        let (capture, client, _server) =
            run_connection(&w, b"c1", 100, b"GET /account", b"balance: 42", None);
        let parsed = CapturedConnection::parse(&capture).unwrap();
        let master = client.master_secret().unwrap();
        let (c2s, s2c) = parsed.decrypt_with_master(&master).unwrap();
        assert_eq!(c2s, b"GET /account");
        assert_eq!(s2c, b"balance: 42");
    }

    #[test]
    fn decrypt_with_wrong_master_fails() {
        let w = world(b"decrypt-wrong");
        let (capture, _client, _server) = run_connection(&w, b"c1", 100, b"req", b"resp", None);
        let parsed = CapturedConnection::parse(&capture).unwrap();
        let wrong = [0u8; 48];
        assert!(parsed.decrypt_with_master(&wrong).is_err());
    }

    #[test]
    fn garbage_capture_rejected() {
        let cap = WireCapture {
            client_to_server: vec![0xff; 32],
            server_to_client: vec![1, 2, 3],
        };
        assert!(CapturedConnection::parse(&cap).is_err());
        let empty = WireCapture::default();
        assert_eq!(
            CapturedConnection::parse(&empty).unwrap_err(),
            PassiveParseError::Missing("ServerHello")
        );
    }
}
