//! STEK theft (§6.1) — "the most worrisome practice".
//!
//! The session ticket travels outside the TLS tunnel: the server sends it
//! in plaintext (NewSessionTicket) and the client replays it in later
//! ClientHellos. Whoever holds the STEK decrypts the ticket, which
//! *contains the session's master secret*, and with the (public) hello
//! randoms re-derives the record keys — for the original connection and
//! every resumption under that ticket, past or future, regardless of the
//! key exchange used.

use crate::passive::CapturedConnection;
use ts_tls::ticket::{sniff_format, Stek};

/// Why STEK-based decryption failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StekAttackError {
    /// No ticket on the wire (neither issued nor offered).
    NoTicket,
    /// None of the stolen keys decrypts the ticket (rotated away).
    NoMatchingKey,
    /// The ticket decrypted but record decryption failed (shouldn't
    /// happen with an authentic capture).
    RecordFailure(String),
}

impl std::fmt::Display for StekAttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StekAttackError::NoTicket => write!(f, "no ticket in capture"),
            StekAttackError::NoMatchingKey => write!(f, "no stolen STEK matches"),
            StekAttackError::RecordFailure(e) => write!(f, "record decryption failed: {e}"),
        }
    }
}

impl std::error::Error for StekAttackError {}

/// Recovered plaintext from one connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredTraffic {
    /// Client→server application bytes.
    pub client_to_server: Vec<u8>,
    /// Server→client application bytes.
    pub server_to_client: Vec<u8>,
    /// The recovered master secret (for chaining further captures).
    pub master_secret: [u8; 48],
}

/// Attempt to decrypt a captured connection with stolen STEKs.
///
/// Tries the ticket the client *offered* (resumptions) first, then the
/// ticket the server *issued* (initial connections) — both are on the
/// wire in plaintext.
pub fn decrypt_with_stolen_steks(
    capture: &CapturedConnection,
    stolen: &[Stek],
) -> Result<RecoveredTraffic, StekAttackError> {
    let tickets: Vec<&Vec<u8>> = capture
        .offered_ticket
        .iter()
        .chain(capture.issued_ticket.iter())
        .collect();
    if tickets.is_empty() {
        return Err(StekAttackError::NoTicket);
    }
    for ticket in tickets {
        let format = sniff_format(ticket);
        for key in stolen {
            if let Ok(state) = key.open(ticket, format) {
                let (c2s, s2c) = capture
                    .decrypt_with_master(&state.master_secret)
                    .map_err(|e| StekAttackError::RecordFailure(e.to_string()))?;
                return Ok(RecoveredTraffic {
                    client_to_server: c2s,
                    server_to_client: s2c,
                    master_secret: state.master_secret,
                });
            }
        }
    }
    Err(StekAttackError::NoMatchingKey)
}

/// Bulk decryption: the XKEYSCORE scenario — a pile of captures, a few
/// stolen keys; returns (index, recovered) for every connection that falls.
pub fn bulk_decrypt(
    captures: &[CapturedConnection],
    stolen: &[Stek],
) -> Vec<(usize, RecoveredTraffic)> {
    captures
        .iter()
        .enumerate()
        .filter_map(|(i, c)| decrypt_with_stolen_steks(c, stolen).ok().map(|r| (i, r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passive::testutil::{run_connection, world};
    use ts_crypto::drbg::HmacDrbg;

    #[test]
    fn stolen_stek_decrypts_initial_connection() {
        let w = world(b"stek-initial");
        let (capture, _client, _server) = run_connection(
            &w,
            b"c1",
            100,
            b"POST /login user=alice",
            b"welcome alice",
            None,
        );
        let parsed = CapturedConnection::parse(&capture).unwrap();
        let stolen = w.config.tickets.as_ref().unwrap().steal_keys();
        let recovered = decrypt_with_stolen_steks(&parsed, &stolen).unwrap();
        assert_eq!(recovered.client_to_server, b"POST /login user=alice");
        assert_eq!(recovered.server_to_client, b"welcome alice");
    }

    #[test]
    fn stolen_stek_decrypts_resumed_connection() {
        let w = world(b"stek-resumed");
        let (_cap1, client, _server) = run_connection(&w, b"c1", 100, b"r1", b"s1", None);
        let s = client.summary().unwrap();
        let nst = s.new_ticket.clone().unwrap();
        let (cap2, _c2, _s2) = run_connection(
            &w,
            b"c2",
            200,
            b"GET /inbox",
            b"mail contents",
            Some((nst.ticket, s.session.clone())),
        );
        let parsed = CapturedConnection::parse(&cap2).unwrap();
        assert!(parsed.abbreviated);
        let stolen = w.config.tickets.as_ref().unwrap().steal_keys();
        let recovered = decrypt_with_stolen_steks(&parsed, &stolen).unwrap();
        assert_eq!(recovered.client_to_server, b"GET /inbox");
        assert_eq!(recovered.server_to_client, b"mail contents");
    }

    #[test]
    fn pfs_cipher_does_not_help() {
        // The connection used ECDHE — "forward secret" — yet falls to the
        // STEK. This is the paper's core finding.
        let w = world(b"stek-pfs");
        let (capture, client, _server) =
            run_connection(&w, b"c1", 100, b"secret query", b"secret answer", None);
        assert!(client.summary().unwrap().cipher_suite.is_forward_secret());
        let parsed = CapturedConnection::parse(&capture).unwrap();
        let stolen = w.config.tickets.as_ref().unwrap().steal_keys();
        assert!(decrypt_with_stolen_steks(&parsed, &stolen).is_ok());
    }

    #[test]
    fn wrong_stek_recovers_nothing() {
        let w = world(b"stek-wrong");
        let (capture, _client, _server) = run_connection(&w, b"c1", 100, b"req", b"resp", None);
        let parsed = CapturedConnection::parse(&capture).unwrap();
        let mut rng = HmacDrbg::new(b"unrelated");
        let wrong = vec![ts_tls::ticket::Stek::generate(&mut rng, 0)];
        assert_eq!(
            decrypt_with_stolen_steks(&parsed, &wrong),
            Err(StekAttackError::NoMatchingKey)
        );
    }

    #[test]
    fn no_ticket_no_attack() {
        // Client that doesn't offer ticket support → nothing on the wire.
        let w = world(b"stek-noticket");
        let mut ccfg = ts_tls::config::ClientConfig::new(w.store.clone(), "victim.sim", 100);
        ccfg.offer_ticket_support = false;
        let mut client = ts_tls::ClientConn::new(ccfg, HmacDrbg::new(b"nt-c"));
        let mut server = ts_tls::ServerConn::new(w.config.clone(), HmacDrbg::new(b"nt-s"), 100);
        let result = ts_tls::pump::pump(&mut client, &mut server).unwrap();
        let parsed = CapturedConnection::parse(&result.capture).unwrap();
        let stolen = w.config.tickets.as_ref().unwrap().steal_keys();
        assert_eq!(
            decrypt_with_stolen_steks(&parsed, &stolen),
            Err(StekAttackError::NoTicket)
        );
    }

    #[test]
    fn bulk_decryption_over_many_captures() {
        let w = world(b"stek-bulk");
        let mut captures = Vec::new();
        for i in 0..5 {
            let (cap, _c, _s) = run_connection(
                &w,
                format!("bulk{i}").as_bytes(),
                100 + i,
                format!("request {i}").as_bytes(),
                format!("response {i}").as_bytes(),
                None,
            );
            captures.push(CapturedConnection::parse(&cap).unwrap());
        }
        let stolen = w.config.tickets.as_ref().unwrap().steal_keys();
        let recovered = bulk_decrypt(&captures, &stolen);
        assert_eq!(recovered.len(), 5, "one 16-byte key, all connections fall");
        for (i, r) in &recovered {
            assert_eq!(r.client_to_server, format!("request {i}").as_bytes());
        }
    }
}
