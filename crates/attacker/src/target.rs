//! Nation-state target analysis (§7.2).
//!
//! The paper walks through an attacker's cost-benefit against a Google-like
//! provider: how many 16-byte keys must be exfiltrated per unit time to
//! sustain full decryption coverage, how far one STEK reaches (web + SMTP +
//! IMAP properties, hosted-mail customers via MX), and the contrast with a
//! Yandex-like provider that never rotates.

use ts_core::groups::ServiceGroup;
use ts_population::Population;

/// The analysis output for one provider.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetAnalysis {
    /// Provider label.
    pub provider: String,
    /// STEK rotation period (seconds; `u64::MAX` = never).
    pub rotation_period: u64,
    /// How long issued tickets are accepted (key must live ≥ this long).
    pub acceptance_window: u64,
    /// Keys the attacker must steal per day for continuous coverage.
    pub keys_per_day: f64,
    /// Domains directly behind the shared STEK.
    pub stek_domains: usize,
    /// Additional domains whose mail transits the provider (MX census).
    pub mx_domains: usize,
    /// Seconds of *retrospective* traffic one stolen key unlocks
    /// (bounded by how long a key stays in memory).
    pub retrospective_window: u64,
}

impl TargetAnalysis {
    /// One-paragraph summary in the paper's style.
    pub fn summary(&self) -> String {
        let keys = if self.keys_per_day == 0.0 {
            "a single key, once".to_string()
        } else {
            format!("{:.1} keys per day", self.keys_per_day)
        };
        format!(
            "{}: stealing {} sustains decryption of TLS connections to {} domains \
             (plus mail for {} more via MX); each 16-byte key unlocks {} of \
             recorded traffic.",
            self.provider,
            keys,
            self.stek_domains,
            self.mx_domains,
            ts_core::report::fmt_duration(self.retrospective_window),
        )
    }
}

/// Analyze a provider given its STEK service group and rotation facts.
pub fn analyze_provider(
    provider: &str,
    stek_group: &ServiceGroup,
    rotation_period: u64,
    acceptance_window: u64,
    mx_domains: usize,
) -> TargetAnalysis {
    let keys_per_day = if rotation_period == u64::MAX {
        0.0
    } else {
        86_400.0 / rotation_period as f64
    };
    // A key is in memory from creation until rotation + acceptance
    // overlap; stealing everything in memory at one instant yields a
    // retrospective window of rotation + acceptance (for the Google case:
    // two keys, 28 hours).
    let retrospective_window = if rotation_period == u64::MAX {
        u64::MAX
    } else {
        rotation_period + acceptance_window
    };
    TargetAnalysis {
        provider: provider.to_string(),
        rotation_period,
        acceptance_window,
        keys_per_day,
        stek_domains: stek_group.size(),
        mx_domains,
        retrospective_window,
    }
}

/// Run the §7.2 analysis against the simulated population's Google
/// analogue ("goggle") using ground truth for rotation facts and the DNS
/// MX census for reach.
pub fn analyze_goggle(pop: &Population, stek_group: &ServiceGroup) -> TargetAnalysis {
    let mx = pop.dns.domains_with_mx(&pop.goggle_smtp_host).len();
    // Rotation facts from any goggle domain's ground truth.
    let truth = pop
        .truth
        .iter()
        .find(|t| t.operator.as_deref() == Some("goggle"))
        .expect("goggle domains exist");
    let period = truth.stek_period.unwrap_or(u64::MAX);
    analyze_provider(
        "goggle (Google analogue)",
        stek_group,
        period,
        28 * 3_600 - period,
        mx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_core::groups::ServiceGroup;

    fn group(n: usize) -> ServiceGroup {
        ServiceGroup {
            label: "prov".into(),
            members: (0..n).map(|i| format!("d{i}.sim")).collect(),
        }
    }

    #[test]
    fn google_style_arithmetic() {
        // 14-hour rotation, 28-hour acceptance: the paper's "only two
        // 16-byte keys must be stolen every 28 hours".
        let a = analyze_provider("google-like", &group(8973), 14 * 3_600, 14 * 3_600, 90_000);
        assert!((a.keys_per_day - 86_400.0 / 50_400.0).abs() < 1e-9);
        // Keys per 28h window = keys_per_day * 28/24 = 2.0.
        let per_28h = a.keys_per_day * 28.0 / 24.0;
        assert!(
            (per_28h - 2.0).abs() < 1e-9,
            "two keys per 28 hours: {per_28h}"
        );
        assert_eq!(a.retrospective_window, 28 * 3_600);
        assert_eq!(a.stek_domains, 8973);
    }

    #[test]
    fn yandex_style_never_rotates() {
        let a = analyze_provider("yandex-like", &group(8), u64::MAX, u64::MAX, 0);
        assert_eq!(a.keys_per_day, 0.0);
        assert_eq!(a.retrospective_window, u64::MAX);
        assert!(a.summary().contains("a single key, once"));
    }

    #[test]
    fn summary_mentions_reach() {
        let a = analyze_provider("p", &group(100), 86_400, 0, 42);
        let s = a.summary();
        assert!(s.contains("100 domains"));
        assert!(s.contains("42 more"));
        assert!((a.keys_per_day - 1.0).abs() < 1e-9);
    }
}
