//! Benchmarks for the analysis pipeline (ts-core) at realistic data
//! volumes: span estimation over hundreds of thousands of sightings,
//! union-find closure over Top-Million-scale group structures, and CDF
//! construction — the operations the paper ran over nine weeks of scans.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::time::Duration;
use ts_core::cdf::Cdf;
use ts_core::groups;
use ts_core::lifetime::SpanEstimator;
use ts_core::observations::TicketSighting;
use ts_core::unionfind::UnionFind;

/// Synthesize a campaign: `domains` domains × `days` days of sightings,
/// with a CloudFlare-like 6% sharing one id per day and a 10% static-STEK
/// tail.
fn synth_sightings(domains: usize, days: u64) -> Vec<TicketSighting> {
    let mut out = Vec::with_capacity(domains * days as usize);
    for d in 0..domains {
        for day in 0..days {
            let stek_id = if d < domains / 16 {
                format!("cdn-shared-day{day}")
            } else if d % 10 == 0 {
                format!("static-{d}")
            } else {
                format!("daily-{d}-{day}")
            };
            out.push(TicketSighting {
                domain: format!("d{d:06}.sim"),
                day,
                stek_id,
                lifetime_hint: 300,
            });
        }
    }
    out
}

fn bench_span_estimation(c: &mut Criterion) {
    let mut g = c.benchmark_group("span_estimation");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for domains in [1_000usize, 10_000] {
        let sightings = synth_sightings(domains, 63);
        g.throughput(Throughput::Elements(sightings.len() as u64));
        g.bench_function(format!("ingest_and_spans_{domains}x63"), |b| {
            b.iter_batched(
                SpanEstimator::new,
                |mut est| {
                    est.record_tickets(&sightings);
                    est.domain_spans()
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_group_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_groups");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    let sightings = synth_sightings(10_000, 7);
    g.bench_function("stek_groups_10k_domains", |b| {
        b.iter(|| groups::stek_groups(&sightings))
    });
    g.finish();
}

fn bench_union_find(c: &mut Criterion) {
    let mut g = c.benchmark_group("union_find");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for n in [100_000usize, 1_000_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("chain_union_{n}"), |b| {
            b.iter_batched(
                || UnionFind::new(n),
                |mut uf| {
                    // Million-scale transitive closure: 1000-element chains.
                    for start in (0..n).step_by(1000) {
                        for i in start..(start + 999).min(n - 1) {
                            uf.union(i, i + 1);
                        }
                    }
                    uf.sets().len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_cdf(c: &mut Criterion) {
    let mut g = c.benchmark_group("cdf");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    let samples: Vec<u64> = (0..1_000_000u64).map(|i| (i * 7919) % 86_400).collect();
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("build_1m_samples", |b| {
        b.iter_batched(|| samples.clone(), Cdf::from_samples, BatchSize::LargeInput)
    });
    let cdf = Cdf::from_samples(samples);
    g.bench_function("query_series", |b| {
        let breakpoints: Vec<u64> = (0..288).map(|i| i * 300).collect();
        b.iter(|| cdf.series(&breakpoints))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_span_estimation,
    bench_group_inference,
    bench_union_find,
    bench_cdf
);
criterion_main!(benches);
