//! Microbenchmarks for the crypto substrate — the per-handshake cost
//! model behind the paper's performance-vs-security tradeoff (§2: the
//! shortcuts exist to skip exactly these operations).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::time::Duration;
use ts_crypto::bignum::Ub;
use ts_crypto::dh::{DhGroup, DhKeyPair};
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::prf::prf;
use ts_crypto::rsa::RsaPrivateKey;
use ts_crypto::sha256::sha256;
use ts_crypto::x25519::X25519KeyPair;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
}

fn bench_hash_and_prf(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    quick(&mut g);
    let data = vec![0xabu8; 16 * 1024];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha256_16k", |b| b.iter(|| sha256(&data)));
    g.finish();

    c.bench_function("tls12_prf_master_secret", |b| {
        let pm = [7u8; 48];
        let seed = [9u8; 64];
        b.iter(|| prf(&pm, b"master secret", &seed, 48));
    });
}

fn bench_record_protection(c: &mut Criterion) {
    use ts_crypto::aead::{cbc_hmac_seal, chacha20poly1305_seal};
    let mut g = c.benchmark_group("record_protection");
    quick(&mut g);
    let payload = vec![0x42u8; 1400]; // a typical record
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("chacha20poly1305_seal_1400", |b| {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        b.iter(|| chacha20poly1305_seal(&key, &nonce, b"aad", &payload));
    });
    g.bench_function("aes128cbc_hmac_seal_1400", |b| {
        let ek = [1u8; 16];
        let mk = [2u8; 32];
        let iv = [3u8; 16];
        b.iter(|| cbc_hmac_seal(&ek, &mk, &iv, b"aad", &payload));
    });
    g.finish();
}

fn bench_key_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("key_exchange");
    quick(&mut g);
    g.bench_function("x25519_keygen_plus_shared", |b| {
        let mut rng = HmacDrbg::new(b"bench-x25519");
        let server = X25519KeyPair::generate(&mut rng);
        b.iter_batched(
            || X25519KeyPair::generate(&mut rng),
            |client| client.shared_secret(&server.public),
            BatchSize::SmallInput,
        );
    });
    for group in [DhGroup::Sim256, DhGroup::Sim512, DhGroup::Modp1024] {
        g.bench_function(format!("ffdhe_{group:?}_keygen_plus_shared"), |b| {
            let mut rng = HmacDrbg::new(b"bench-dhe");
            let server = DhKeyPair::generate(group, &mut rng);
            b.iter_batched(
                || DhKeyPair::generate(group, &mut rng),
                |client| client.shared_secret(&server.public).unwrap(),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut g = c.benchmark_group("rsa");
    quick(&mut g);
    let mut rng = HmacDrbg::new(b"bench-rsa");
    let key512 = RsaPrivateKey::generate(512, &mut rng).unwrap();
    let key1024 = RsaPrivateKey::generate(1024, &mut rng).unwrap();
    g.bench_function("sign_512", |b| {
        b.iter(|| key512.sign(b"server key exchange"))
    });
    g.bench_function("sign_1024", |b| {
        b.iter(|| key1024.sign(b"server key exchange"))
    });
    let sig = key512.sign(b"msg").unwrap();
    g.bench_function("verify_512", |b| {
        b.iter(|| key512.public.verify(b"msg", &sig))
    });
    g.finish();
}

fn bench_bignum(c: &mut Criterion) {
    let mut g = c.benchmark_group("bignum");
    quick(&mut g);
    let p = DhGroup::Modp1024.prime();
    let base = Ub::from_u64(2);
    let exp = Ub::from_hex("deadbeefcafebabe0123456789abcdef");
    g.bench_function("modpow_1024bit_mod_128bit_exp", |b| {
        b.iter(|| base.modpow(&exp, p))
    });
    g.bench_function("modpow_1024bit_cached_context", |b| {
        let mont = DhGroup::Modp1024.montgomery();
        b.iter(|| mont.modpow(&base, &exp))
    });
    let a = Ub::from_hex(&"f1e2d3c4".repeat(16));
    let d = Ub::from_hex(&"abcdef01".repeat(8));
    g.bench_function("divrem_512_by_256", |b| b.iter(|| a.divrem(&d)));
    g.finish();
}

criterion_group!(
    benches,
    bench_hash_and_prf,
    bench_record_protection,
    bench_key_exchange,
    bench_rsa,
    bench_bignum
);
criterion_main!(benches);
