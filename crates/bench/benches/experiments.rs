//! End-to-end experiment benchmarks: one Criterion target per paper
//! artefact, each regenerating its table/figure against a small seeded
//! population. These double as the canonical "bench target that
//! regenerates it" entries in DESIGN.md's experiment index (the `repro`
//! binary runs the same functions at full scale).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use std::time::Duration;
use ts_bench::{
    exp_campaign, exp_exposure, exp_lifetimes, exp_sharing, exp_support, exp_target, Context,
};
use ts_scanner::probe::ProbeSchedule;

/// One shared small world; experiments read it concurrently.
fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(|| {
        // Small world: criterion runs each experiment ≥10 times, so the
        // per-iteration cost must stay in seconds.
        let mut cfg = ts_population::PopulationConfig::new(2016, 300);
        cfg.flakiness = 0.002;
        cfg.study_days = 14;
        cfg.transient_frac = 0.1;
        let ctx = Context::from_config(cfg);
        // Materialize the shared campaign once, outside measurement.
        let _ = ctx.campaign();
        ctx
    })
}

fn schedule() -> ProbeSchedule {
    ProbeSchedule::coarse(4 * 3_600, 24 * 3_600)
}

fn bench_tables(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("table1_support", |b| {
        b.iter(|| exp_support::table1_support(ctx))
    });
    g.bench_function("table2_stek_reuse", |b| {
        b.iter(|| exp_campaign::table2_stek_reuse(ctx))
    });
    g.bench_function("table3_dhe_reuse", |b| {
        b.iter(|| exp_campaign::table3_dhe_reuse(ctx))
    });
    g.bench_function("table4_ecdhe_reuse", |b| {
        b.iter(|| exp_campaign::table4_ecdhe_reuse(ctx))
    });
    g.bench_function("table5_cache_groups", |b| {
        b.iter(|| exp_sharing::table5_cache_groups(ctx))
    });
    g.bench_function("table6_stek_groups", |b| {
        b.iter(|| exp_sharing::table6_stek_groups(ctx))
    });
    g.bench_function("table7_dh_groups", |b| {
        b.iter(|| exp_sharing::table7_dh_groups(ctx))
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    let sched = schedule();
    g.bench_function("fig1_session_id_lifetime", |b| {
        b.iter(|| exp_lifetimes::fig1_session_id_lifetime(ctx, &sched))
    });
    g.bench_function("fig2_ticket_lifetime", |b| {
        b.iter(|| exp_lifetimes::fig2_ticket_lifetime(ctx, &sched))
    });
    g.bench_function("fig3_stek_lifetime", |b| {
        b.iter(|| exp_campaign::fig3_stek_lifetime(ctx))
    });
    g.bench_function("fig4_stek_by_rank", |b| {
        b.iter(|| exp_campaign::fig4_stek_by_rank(ctx))
    });
    g.bench_function("fig5_kex_reuse", |b| {
        b.iter(|| exp_campaign::fig5_kex_reuse(ctx))
    });
    g.bench_function("fig6_fig7_treemaps", |b| {
        b.iter(|| exp_sharing::fig6_fig7_treemaps(ctx))
    });
    g.bench_function("fig8_exposure", |b| {
        b.iter(|| exp_exposure::fig8_exposure(ctx, &sched))
    });
    g.finish();
}

fn bench_target_analysis(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("section7");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("google_target_analysis", |b| {
        b.iter(|| exp_target::google_target_analysis(ctx))
    });
    g.bench_function("stek_theft_demo", |b| {
        b.iter(|| exp_target::stek_theft_demo(ctx))
    });
    g.finish();
}

fn bench_campaign(c: &mut Criterion) {
    // The dominant cost of the whole study: the daily scan campaign.
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("daily_campaign_100_domains_7_days", |b| {
        let mut cfg = ts_population::PopulationConfig::new(99, 100);
        cfg.flakiness = 0.0;
        cfg.study_days = 7;
        let ctx = Context::from_config(cfg);
        b.iter(|| exp_campaign::run_daily_campaign(&ctx))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_figures,
    bench_target_analysis,
    bench_campaign
);
criterion_main!(benches);
