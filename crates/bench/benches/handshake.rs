//! Handshake benchmarks — quantifying the *performance* side of the
//! paper's tradeoff: how much a full handshake actually costs versus the
//! abbreviated resumptions and the ephemeral-value-reuse shortcut.
//!
//! The paper's thesis presupposes these gaps: operators deploy the
//! shortcuts because full handshakes are expensive. These benchmarks
//! reproduce the incentive.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::rsa::RsaPrivateKey;
use ts_tls::config::{ClientConfig, ResumptionOffer, ServerConfig, ServerIdentity};
use ts_tls::ephemeral::{EphemeralCache, EphemeralPolicy};
use ts_tls::pump::pump;
use ts_tls::suites::CipherSuite;
use ts_tls::ticket::{RotationPolicy, SharedStekManager, StekManager, TicketFormat};
use ts_tls::{ClientConn, ServerConn};
use ts_x509::{Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

struct World {
    store: Arc<RootStore>,
    config: ServerConfig,
}

fn world(eph_policy: EphemeralPolicy) -> World {
    let mut rng = HmacDrbg::new(b"bench-world");
    let ca_key = RsaPrivateKey::generate(512, &mut rng).unwrap();
    let ca_name = DistinguishedName::cn("Bench CA");
    let ca = Certificate::issue(
        &CertificateParams {
            serial: 1,
            subject: ca_name.clone(),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec![],
            is_ca: true,
        },
        &ca_key.public,
        &ca_name,
        &ca_key,
    );
    let key = RsaPrivateKey::generate(512, &mut rng).unwrap();
    let leaf = Certificate::issue(
        &CertificateParams {
            serial: 2,
            subject: DistinguishedName::cn("bench.sim"),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec!["bench.sim".into()],
            is_ca: false,
        },
        &key.public,
        &ca_name,
        &ca_key,
    );
    let mut store = RootStore::new();
    store.add_root(ca);
    let identity = Arc::new(ServerIdentity {
        chain: vec![leaf],
        key,
    });
    let eph = EphemeralCache::new(
        eph_policy,
        ts_crypto::dh::DhGroup::Sim256,
        HmacDrbg::new(b"bench-eph"),
    );
    let mut config = ServerConfig::new(identity, eph);
    config.tickets = Some(SharedStekManager::new(StekManager::new(
        RotationPolicy::Static,
        TicketFormat::Rfc5077,
        HmacDrbg::new(b"bench-stek"),
        0,
    )));
    config.ticket_accept_window = 86_400;
    World {
        store: Arc::new(store),
        config,
    }
}

fn full_handshake(w: &World, suite: CipherSuite, seed: u64) -> (ClientConn, ServerConn) {
    let mut ccfg = ClientConfig::new(w.store.clone(), "bench.sim", 100);
    ccfg.suites = vec![suite];
    let mut client = ClientConn::new(ccfg, HmacDrbg::from_seed_label(seed, "c"));
    let mut server = ServerConn::new(w.config.clone(), HmacDrbg::from_seed_label(seed, "s"), 100);
    pump(&mut client, &mut server).expect("handshake");
    (client, server)
}

fn bench_full_handshakes(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_handshake");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for suite in [
        CipherSuite::EcdheRsaChaCha20Poly1305,
        CipherSuite::DheRsaAes128CbcSha256,
        CipherSuite::RsaAes128CbcSha256,
    ] {
        let w = world(EphemeralPolicy::FreshPerHandshake);
        let mut seed = 0u64;
        g.bench_function(format!("{suite:?}"), |b| {
            b.iter(|| {
                seed += 1;
                full_handshake(&w, suite, seed)
            })
        });
    }
    g.finish();
}

fn bench_resumption_speedup(c: &mut Criterion) {
    // The headline comparison: full vs ticket-resumed vs ID-resumed.
    let mut g = c.benchmark_group("resumption_vs_full");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    let w = world(EphemeralPolicy::FreshPerHandshake);
    let (client, _server) = full_handshake(&w, CipherSuite::EcdheRsaChaCha20Poly1305, 1);
    let summary = client.summary().unwrap();
    let ticket = summary.new_ticket.clone().unwrap().ticket;
    let session_id = summary.server_session_id.clone();
    let state = summary.session.clone();

    let mut seed = 1000u64;
    g.bench_function("full", |b| {
        b.iter(|| {
            seed += 1;
            full_handshake(&w, CipherSuite::EcdheRsaChaCha20Poly1305, seed)
        })
    });
    g.bench_function("ticket_resumed", |b| {
        b.iter(|| {
            seed += 1;
            let mut ccfg = ClientConfig::new(w.store.clone(), "bench.sim", 150);
            ccfg.resumption = ResumptionOffer {
                session: None,
                ticket: Some((ticket.clone(), state.clone())),
            };
            let mut client = ClientConn::new(ccfg, HmacDrbg::from_seed_label(seed, "c"));
            let mut server =
                ServerConn::new(w.config.clone(), HmacDrbg::from_seed_label(seed, "s"), 150);
            pump(&mut client, &mut server).expect("resumes");
            assert!(client.is_established());
        })
    });
    g.bench_function("session_id_resumed", |b| {
        b.iter(|| {
            seed += 1;
            let mut ccfg = ClientConfig::new(w.store.clone(), "bench.sim", 150);
            ccfg.resumption = ResumptionOffer {
                session: Some((session_id.clone(), state.clone())),
                ticket: None,
            };
            let mut client = ClientConn::new(ccfg, HmacDrbg::from_seed_label(seed, "c"));
            let mut server =
                ServerConn::new(w.config.clone(), HmacDrbg::from_seed_label(seed, "s"), 150);
            pump(&mut client, &mut server).expect("resumes");
            assert!(client.is_established());
        })
    });
    g.finish();
}

fn bench_ephemeral_reuse_shortcut(c: &mut Criterion) {
    // §2.3's incentive: reusing the server's DHE value skips a modexp.
    let mut g = c.benchmark_group("ephemeral_reuse");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for (label, policy) in [
        ("fresh_per_handshake", EphemeralPolicy::FreshPerHandshake),
        ("reuse_forever", EphemeralPolicy::ReuseForever),
    ] {
        let w = world(policy);
        let mut seed = 5000u64;
        g.bench_function(format!("dhe_{label}"), |b| {
            b.iter(|| {
                seed += 1;
                full_handshake(&w, CipherSuite::DheRsaAes128CbcSha256, seed)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_full_handshakes,
    bench_resumption_speedup,
    bench_ephemeral_reuse_shortcut
);
criterion_main!(benches);
