//! `repro --bench-smoke` — a seconds-scale performance regression probe.
//!
//! Runs a fixed batch of full handshakes per key-exchange family and
//! reports throughput as JSON with a **deterministic schema**: the key
//! set, ordering, iteration counts and telemetry counter values depend
//! only on the workload (fixed seeds, fixed batch sizes), while the
//! `*_per_sec` rates carry the wall-clock measurement. `BENCH_5.json` at
//! the repo root archives the before/after rates for the PR that rebuilt
//! the multiprecision hot path (u64 limbs, cached Montgomery contexts,
//! windowed exponentiation, RSA-CRT).

use std::sync::Arc;
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::rsa::RsaPrivateKey;
use ts_tls::config::{ClientConfig, ServerConfig, ServerIdentity};
use ts_tls::ephemeral::{EphemeralCache, EphemeralPolicy};
use ts_tls::pump::pump;
use ts_tls::suites::CipherSuite;
use ts_tls::{ClientConn, ServerConn};
use ts_x509::{Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

/// Handshakes per suite. Small enough that the whole probe finishes in a
/// couple of seconds, large enough to average out scheduler noise.
const ITERS: u64 = 24;

/// The three key-exchange families the paper's cost model distinguishes.
const SUITES: [CipherSuite; 3] = [
    CipherSuite::DheRsaAes128CbcSha256,
    CipherSuite::EcdheRsaChaCha20Poly1305,
    CipherSuite::RsaAes128CbcSha256,
];

struct SmokeWorld {
    store: Arc<RootStore>,
    config: ServerConfig,
}

/// A minimal CA + leaf + server world with per-handshake-fresh ephemerals,
/// so every iteration pays the full key-exchange cost being measured.
fn smoke_world() -> SmokeWorld {
    let mut rng = HmacDrbg::new(b"bench-smoke-world");
    let ca_key = RsaPrivateKey::generate(512, &mut rng).expect("ca key");
    let ca_name = DistinguishedName::cn("Smoke CA");
    let ca = Certificate::issue(
        &CertificateParams {
            serial: 1,
            subject: ca_name.clone(),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec![],
            is_ca: true,
        },
        &ca_key.public,
        &ca_name,
        &ca_key,
    );
    let key = RsaPrivateKey::generate(512, &mut rng).expect("leaf key");
    let leaf = Certificate::issue(
        &CertificateParams {
            serial: 2,
            subject: DistinguishedName::cn("smoke.sim"),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec!["smoke.sim".into()],
            is_ca: false,
        },
        &key.public,
        &ca_name,
        &ca_key,
    );
    let mut store = RootStore::new();
    store.add_root(ca);
    let identity = Arc::new(ServerIdentity {
        chain: vec![leaf],
        key,
    });
    let eph = EphemeralCache::new(
        EphemeralPolicy::FreshPerHandshake,
        ts_crypto::dh::DhGroup::Sim256,
        HmacDrbg::new(b"bench-smoke-eph"),
    );
    let config = ServerConfig::new(identity, eph);
    SmokeWorld {
        store: Arc::new(store),
        config,
    }
}

fn one_handshake(w: &SmokeWorld, suite: CipherSuite, seed: u64) {
    let mut ccfg = ClientConfig::new(w.store.clone(), "smoke.sim", 100);
    ccfg.suites = vec![suite];
    let mut client = ClientConn::new(ccfg, HmacDrbg::from_seed_label(seed, "smoke-c"));
    let mut server = ServerConn::new(
        w.config.clone(),
        HmacDrbg::from_seed_label(seed, "smoke-s"),
        100,
    );
    pump(&mut client, &mut server).expect("smoke handshake");
}

/// Render a rate with one decimal, avoiding float formatting surprises in
/// the degenerate zero-elapsed case.
fn rate(count: u64, secs: f64) -> String {
    if secs <= 0.0 {
        return "0.0".into();
    }
    format!("{:.1}", count as f64 / secs)
}

/// Run the smoke probe and return the JSON report.
///
/// `now_nanos` supplies monotonic elapsed nanoseconds — injected by the
/// caller (the `repro` binary passes `Instant`-based time) so this crate
/// itself stays free of wall-clock reads under the ts-lint determinism
/// rules; everything here except the two rate fields is a pure function
/// of the workload.
///
/// Schema (`bench-smoke/v1`): `suites[]` carries, per key-exchange family,
/// the deterministic work counts (`handshakes`, `modexps`,
/// `mont_cache_hits`) and the measured `handshakes_per_sec` /
/// `modexps_per_sec`; `totals` aggregates across families.
pub fn run(now_nanos: &dyn Fn() -> u64) -> String {
    let w = smoke_world();
    let mut suite_lines = Vec::new();
    let mut total_hs = 0u64;
    let mut total_modexp = 0u64;
    let mut total_secs = 0f64;
    for (si, suite) in SUITES.iter().enumerate() {
        // Warm the per-process caches (Montgomery contexts, group
        // constants) outside the timed region: steady-state throughput is
        // the regression signal, not first-hit initialisation.
        one_handshake(&w, *suite, 1_000 * si as u64);
        let before = ts_telemetry::snapshot();
        let t0 = now_nanos();
        for i in 0..ITERS {
            one_handshake(&w, *suite, 1_000 * si as u64 + 1 + i);
        }
        let secs = now_nanos().saturating_sub(t0) as f64 / 1e9;
        let after = ts_telemetry::snapshot();
        let modexps = after.counter("crypto.modexp.total") - before.counter("crypto.modexp.total");
        let mont_hits =
            after.counter("crypto.mont.cache.hit") - before.counter("crypto.mont.cache.hit");
        total_hs += ITERS;
        total_modexp += modexps;
        total_secs += secs;
        suite_lines.push(format!(
            "    {{\"suite\": \"{suite:?}\", \"handshakes\": {ITERS}, \
             \"modexps\": {modexps}, \"mont_cache_hits\": {mont_hits}, \
             \"handshakes_per_sec\": {}, \"modexps_per_sec\": {}}}",
            rate(ITERS, secs),
            rate(modexps, secs),
        ));
    }
    format!(
        "{{\n  \"schema\": \"bench-smoke/v1\",\n  \"suites\": [\n{}\n  ],\n  \
         \"totals\": {{\"handshakes\": {total_hs}, \"modexps\": {total_modexp}, \
         \"handshakes_per_sec\": {}, \"modexps_per_sec\": {}}}\n}}",
        suite_lines.join(",\n"),
        rate(total_hs, total_secs),
        rate(total_modexp, total_secs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake monotonic clock: 1ms per read. Keeps the test free of wall
    /// time and makes even the rate fields reproducible.
    fn fake_clock() -> impl Fn() -> u64 {
        let ticks = std::cell::Cell::new(0u64);
        move || {
            ticks.set(ticks.get() + 1);
            ticks.get() * 1_000_000
        }
    }

    #[test]
    fn smoke_report_has_deterministic_schema_and_counts() {
        let clock = fake_clock();
        let report = run(&clock);
        assert!(report.contains("\"schema\": \"bench-smoke/v1\""));
        for suite in SUITES {
            assert!(report.contains(&format!("\"suite\": \"{suite:?}\"")));
        }
        assert!(report.contains(&format!("\"handshakes\": {ITERS}")));
        // Counter-derived fields are pure functions of the workload: a
        // second run must report identical counts (rates may differ).
        let clock2 = fake_clock();
        let report2 = run(&clock2);
        let counts = |r: &str| -> Vec<String> {
            r.lines()
                .flat_map(|l| l.split(", "))
                .filter(|f| f.contains("\"modexps\":") || f.contains("\"mont_cache_hits\":"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(counts(&report), counts(&report2));
        assert!(!counts(&report).is_empty());
    }
}
