//! `repro --bench-smoke` — a seconds-scale performance regression probe.
//!
//! Runs a fixed batch of full handshakes per key-exchange family and
//! reports throughput as JSON with a **deterministic schema**: the key
//! set, ordering, iteration counts and telemetry counter values depend
//! only on the workload (fixed seeds, fixed batch sizes), while the
//! `*_per_sec` rates carry the wall-clock measurement. `BENCH_5.json` at
//! the repo root archives the before/after rates for the PR that rebuilt
//! the multiprecision hot path (u64 limbs, cached Montgomery contexts,
//! windowed exponentiation, RSA-CRT).

use std::sync::Arc;
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::rsa::RsaPrivateKey;
use ts_tls::config::{ClientConfig, ServerConfig, ServerIdentity};
use ts_tls::ephemeral::{EphemeralCache, EphemeralPolicy};
use ts_tls::pump::pump;
use ts_tls::suites::CipherSuite;
use ts_tls::{ClientConn, ServerConn};
use ts_x509::{Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

/// Handshakes per suite. Small enough that the whole probe finishes in a
/// couple of seconds, large enough to average out scheduler noise.
const ITERS: u64 = 24;

/// The three key-exchange families the paper's cost model distinguishes.
const SUITES: [CipherSuite; 3] = [
    CipherSuite::DheRsaAes128CbcSha256,
    CipherSuite::EcdheRsaChaCha20Poly1305,
    CipherSuite::RsaAes128CbcSha256,
];

struct SmokeWorld {
    store: Arc<RootStore>,
    config: ServerConfig,
}

/// A minimal CA + leaf + server world with per-handshake-fresh ephemerals,
/// so every iteration pays the full key-exchange cost being measured.
fn smoke_world() -> SmokeWorld {
    let mut rng = HmacDrbg::new(b"bench-smoke-world");
    let ca_key = RsaPrivateKey::generate(512, &mut rng).expect("ca key");
    let ca_name = DistinguishedName::cn("Smoke CA");
    let ca = Certificate::issue(
        &CertificateParams {
            serial: 1,
            subject: ca_name.clone(),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec![],
            is_ca: true,
        },
        &ca_key.public,
        &ca_name,
        &ca_key,
    );
    let key = RsaPrivateKey::generate(512, &mut rng).expect("leaf key");
    let leaf = Certificate::issue(
        &CertificateParams {
            serial: 2,
            subject: DistinguishedName::cn("smoke.sim"),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec!["smoke.sim".into()],
            is_ca: false,
        },
        &key.public,
        &ca_name,
        &ca_key,
    );
    let mut store = RootStore::new();
    store.add_root(ca);
    let identity = Arc::new(ServerIdentity {
        chain: vec![leaf],
        key,
    });
    let eph = EphemeralCache::new(
        EphemeralPolicy::FreshPerHandshake,
        ts_crypto::dh::DhGroup::Sim256,
        HmacDrbg::new(b"bench-smoke-eph"),
    );
    let config = ServerConfig::new(identity, eph);
    SmokeWorld {
        store: Arc::new(store),
        config,
    }
}

fn one_handshake(w: &SmokeWorld, suite: CipherSuite, seed: u64) {
    let mut ccfg = ClientConfig::new(w.store.clone(), "smoke.sim", 100);
    ccfg.suites = vec![suite];
    let mut client = ClientConn::new(ccfg, HmacDrbg::from_seed_label(seed, "smoke-c"));
    let mut server = ServerConn::new(
        w.config.clone(),
        HmacDrbg::from_seed_label(seed, "smoke-s"),
        100,
    );
    pump(&mut client, &mut server).expect("smoke handshake");
}

/// Render a rate with one decimal, avoiding float formatting surprises in
/// the degenerate zero-elapsed case.
fn rate(count: u64, secs: f64) -> String {
    if secs <= 0.0 {
        return "0.0".into();
    }
    format!("{:.1}", count as f64 / secs)
}

/// Plaintext bytes per record-layer probe iteration (a large-ish record
/// burst, past the 8-block threshold where the AVX2 ChaCha path engages).
const REC_BUF: usize = 16 * 1024;
/// Iterations per record-layer probe: 1 MiB of traffic each.
const REC_ITERS: u64 = 64;
/// Scalar-multiplication count for the X25519 probes (multiple of 4 so the
/// batched probe runs whole batches).
const KEX_OPS: u64 = 16;
/// Exponentiation pairs for the Straus multi-exponentiation probe.
const STRAUS_PAIRS: u64 = 8;

/// Time `f` processing `bytes` total and render one `record_layer` line.
/// The dispatched and `_portable` variants run the same byte volume, so
/// their ratio is the SIMD speedup on this host.
fn record_probe(
    name: &str,
    bytes: u64,
    now_nanos: &dyn Fn() -> u64,
    mut f: impl FnMut(),
) -> String {
    let t0 = now_nanos();
    f();
    let secs = now_nanos().saturating_sub(t0) as f64 / 1e9;
    format!(
        "    {{\"name\": \"{name}\", \"bytes\": {bytes}, \"bytes_per_sec\": {}}}",
        rate(bytes, secs)
    )
}

/// Same shape for the asymmetric probes, counting operations not bytes.
fn kex_probe(name: &str, ops: u64, now_nanos: &dyn Fn() -> u64, mut f: impl FnMut()) -> String {
    let t0 = now_nanos();
    f();
    let secs = now_nanos().saturating_sub(t0) as f64 / 1e9;
    format!(
        "    {{\"name\": \"{name}\", \"ops\": {ops}, \"ops_per_sec\": {}}}",
        rate(ops, secs)
    )
}

/// The SIMD-vs-scalar record-layer probes: AES-GCM seal and the ChaCha20
/// keystream, each through the CPU-dispatched path and the in-binary
/// scalar reference (`*_portable`), over identical inputs.
fn record_layer_probes(now_nanos: &dyn Fn() -> u64) -> Vec<String> {
    let key16 = [0x42u8; 16];
    let key32 = [0x24u8; 32];
    let nonce = [0x07u8; 12];
    let aad = b"bench-smoke-aad";
    let plaintext: Vec<u8> = (0..REC_BUF).map(|i| i as u8).collect();
    let bytes = REC_BUF as u64 * REC_ITERS;
    vec![
        record_probe("aes128gcm_seal", bytes, now_nanos, || {
            for _ in 0..REC_ITERS {
                std::hint::black_box(ts_crypto::gcm::seal(&key16, &nonce, aad, &plaintext));
            }
        }),
        record_probe("aes128gcm_seal_portable", bytes, now_nanos, || {
            for _ in 0..REC_ITERS {
                std::hint::black_box(ts_crypto::gcm::seal_portable(
                    &key16, &nonce, aad, &plaintext,
                ));
            }
        }),
        record_probe("chacha20_xor", bytes, now_nanos, || {
            let mut buf = plaintext.clone();
            for _ in 0..REC_ITERS {
                ts_crypto::chacha20::xor_stream(&key32, 1, &nonce, &mut buf);
            }
            std::hint::black_box(&buf);
        }),
        record_probe("chacha20_xor_portable", bytes, now_nanos, || {
            let mut buf = plaintext.clone();
            for _ in 0..REC_ITERS {
                ts_crypto::chacha20::xor_stream_portable(&key32, 1, &nonce, &mut buf);
            }
            std::hint::black_box(&buf);
        }),
    ]
}

/// Batched-vs-serial asymmetric probes: X25519 public-key derivation
/// (serial ladder vs the 4-way interleaved ladder) and DHE server-side
/// exponentiation (per-exponent `modpow` vs the shared-table
/// `modpow_batch`, plus Straus `multi_modpow` vs a serial product).
fn batch_kex_probes(now_nanos: &dyn Fn() -> u64) -> Vec<String> {
    use ts_crypto::bignum::Ub;
    let secrets: Vec<[u8; 32]> = (0..KEX_OPS)
        .map(|i| {
            let mut s = [0u8; 32];
            s[0] = 0x40 | i as u8;
            s[31] = !(i as u8);
            s
        })
        .collect();
    let group = ts_crypto::dh::DhGroup::Sim256;
    let mont = group.montgomery();
    let g = group.generator();
    let exps: Vec<Ub> = (0..KEX_OPS)
        .map(|i| Ub::from_bytes_be(&[&[0x33 + i as u8], &secrets[i as usize][..31]].concat()))
        .collect();
    let pairs: Vec<(Ub, Ub)> = (0..STRAUS_PAIRS)
        .map(|i| (Ub::from_u64(0x1_0001 + 2 * i), exps[i as usize].clone()))
        .collect();
    vec![
        kex_probe("x25519_serial", KEX_OPS, now_nanos, || {
            for s in &secrets {
                std::hint::black_box(ts_crypto::x25519::public_key(s));
            }
        }),
        kex_probe("x25519_batch4", KEX_OPS, now_nanos, || {
            for quad in secrets.chunks_exact(4) {
                let lanes: [[u8; 32]; 4] = quad.try_into().expect("chunked by 4");
                std::hint::black_box(ts_crypto::x25519::public_key_batch4(&lanes));
            }
        }),
        kex_probe("dhe_modpow_serial", KEX_OPS, now_nanos, || {
            for e in &exps {
                std::hint::black_box(mont.modpow(g, e));
            }
        }),
        kex_probe("dhe_modpow_batch", KEX_OPS, now_nanos, || {
            std::hint::black_box(mont.modpow_batch(g, &exps));
        }),
        kex_probe("straus_serial_product", STRAUS_PAIRS, now_nanos, || {
            let mut acc = Ub::one();
            for (b, e) in &pairs {
                acc = acc.mul_mod(&mont.modpow(b, e), mont.modulus());
            }
            std::hint::black_box(acc);
        }),
        kex_probe("straus_multi_modpow", STRAUS_PAIRS, now_nanos, || {
            std::hint::black_box(mont.multi_modpow(&pairs));
        }),
    ]
}

/// Run the smoke probe and return the JSON report.
///
/// `now_nanos` supplies monotonic elapsed nanoseconds — injected by the
/// caller (the `repro` binary passes `Instant`-based time) so this crate
/// itself stays free of wall-clock reads under the ts-lint determinism
/// rules; everything here except the two rate fields is a pure function
/// of the workload.
///
/// Schema (`bench-smoke/v2`): `suites[]` carries, per key-exchange family,
/// the deterministic work counts (`handshakes`, `modexps`,
/// `mont_cache_hits`) and the measured `handshakes_per_sec` /
/// `modexps_per_sec`; `record_layer[]` compares the CPU-dispatched AEAD
/// kernels against their in-binary scalar references; `batch_kex[]`
/// compares batched against serial asymmetric kernels; `totals`
/// aggregates across families.
pub fn run(now_nanos: &dyn Fn() -> u64) -> String {
    let w = smoke_world();
    let mut suite_lines = Vec::new();
    let mut total_hs = 0u64;
    let mut total_modexp = 0u64;
    let mut total_secs = 0f64;
    for (si, suite) in SUITES.iter().enumerate() {
        // Warm the per-process caches (Montgomery contexts, group
        // constants) outside the timed region: steady-state throughput is
        // the regression signal, not first-hit initialisation.
        one_handshake(&w, *suite, 1_000 * si as u64);
        let before = ts_telemetry::snapshot();
        let t0 = now_nanos();
        for i in 0..ITERS {
            one_handshake(&w, *suite, 1_000 * si as u64 + 1 + i);
        }
        let secs = now_nanos().saturating_sub(t0) as f64 / 1e9;
        let after = ts_telemetry::snapshot();
        let modexps = after.counter("crypto.modexp.total") - before.counter("crypto.modexp.total");
        let mont_hits =
            after.counter("crypto.mont.cache.hit") - before.counter("crypto.mont.cache.hit");
        total_hs += ITERS;
        total_modexp += modexps;
        total_secs += secs;
        suite_lines.push(format!(
            "    {{\"suite\": \"{suite:?}\", \"handshakes\": {ITERS}, \
             \"modexps\": {modexps}, \"mont_cache_hits\": {mont_hits}, \
             \"handshakes_per_sec\": {}, \"modexps_per_sec\": {}}}",
            rate(ITERS, secs),
            rate(modexps, secs),
        ));
    }
    // Record-layer and batched-kex probes run after the suite loop so
    // their modexp/counter traffic can't perturb the per-suite deltas
    // pinned against BENCH_5.json.
    let record_lines = record_layer_probes(now_nanos);
    let kex_lines = batch_kex_probes(now_nanos);
    format!(
        "{{\n  \"schema\": \"bench-smoke/v2\",\n  \"suites\": [\n{}\n  ],\n  \
         \"record_layer\": [\n{}\n  ],\n  \
         \"batch_kex\": [\n{}\n  ],\n  \
         \"totals\": {{\"handshakes\": {total_hs}, \"modexps\": {total_modexp}, \
         \"handshakes_per_sec\": {}, \"modexps_per_sec\": {}}}\n}}",
        suite_lines.join(",\n"),
        record_lines.join(",\n"),
        kex_lines.join(",\n"),
        rate(total_hs, total_secs),
        rate(total_modexp, total_secs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake monotonic clock: 1ms per read. Keeps the test free of wall
    /// time and makes even the rate fields reproducible.
    fn fake_clock() -> impl Fn() -> u64 {
        let ticks = std::cell::Cell::new(0u64);
        move || {
            ticks.set(ticks.get() + 1);
            ticks.get() * 1_000_000
        }
    }

    #[test]
    fn smoke_report_has_deterministic_schema_and_counts() {
        let clock = fake_clock();
        let report = run(&clock);
        assert!(report.contains("\"schema\": \"bench-smoke/v2\""));
        for name in [
            "aes128gcm_seal",
            "aes128gcm_seal_portable",
            "chacha20_xor",
            "chacha20_xor_portable",
            "x25519_serial",
            "x25519_batch4",
            "dhe_modpow_serial",
            "dhe_modpow_batch",
            "straus_serial_product",
            "straus_multi_modpow",
        ] {
            assert!(report.contains(&format!("\"name\": \"{name}\"")), "{name}");
        }
        for suite in SUITES {
            assert!(report.contains(&format!("\"suite\": \"{suite:?}\"")));
        }
        assert!(report.contains(&format!("\"handshakes\": {ITERS}")));
        // Counter-derived fields are pure functions of the workload: a
        // second run must report identical counts (rates may differ).
        let clock2 = fake_clock();
        let report2 = run(&clock2);
        let counts = |r: &str| -> Vec<String> {
            r.lines()
                .flat_map(|l| l.split(", "))
                .filter(|f| f.contains("\"modexps\":") || f.contains("\"mont_cache_hits\":"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(counts(&report), counts(&report2));
        assert!(!counts(&report).is_empty());
    }
}
