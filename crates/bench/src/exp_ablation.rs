//! Ablations over the design choices the paper's discussion (§8.2) turns
//! into recommendations, plus a methodology-sensitivity check.
//!
//! * **STEK rotation sweep** — the recommendation "rotate STEKs
//!   frequently", quantified: how much recorded traffic falls to one
//!   compromise as a function of the rotation period.
//! * **Probe-step sensitivity** — the paper probes every 5 minutes; our
//!   default harness uses coarser steps for speed. This ablation verifies
//!   that the Figure 1 headline fractions are robust to the step choice
//!   (server lifetimes cluster on config spikes, so they are).

use crate::{Context, DAY, HOUR};
use std::sync::Arc;
use ts_attacker::passive::CapturedConnection;
use ts_attacker::stek::bulk_decrypt;
use ts_core::report::{fmt_duration, pct, TextTable};
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::rsa::RsaPrivateKey;
use ts_scanner::probe::ProbeSchedule;
use ts_tls::config::{ClientConfig, ServerConfig, ServerIdentity};
use ts_tls::ephemeral::{EphemeralCache, EphemeralPolicy};
use ts_tls::pump::{pump, pump_app_data};
use ts_tls::ticket::{RotationPolicy, SharedStekManager, StekManager, TicketFormat};
use ts_tls::{ClientConn, ServerConn};
use ts_x509::{Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

fn one_site(seed: &[u8], rotation: RotationPolicy) -> (Arc<RootStore>, ServerConfig) {
    let mut rng = HmacDrbg::new(seed);
    let ca_key = RsaPrivateKey::generate(512, &mut rng).expect("keygen");
    let ca_name = DistinguishedName::cn("Ablation CA");
    let ca = Certificate::issue(
        &CertificateParams {
            serial: 1,
            subject: ca_name.clone(),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec![],
            is_ca: true,
        },
        &ca_key.public,
        &ca_name,
        &ca_key,
    );
    let key = RsaPrivateKey::generate(512, &mut rng).expect("keygen");
    let leaf = Certificate::issue(
        &CertificateParams {
            serial: 2,
            subject: DistinguishedName::cn("ablate.sim"),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec!["ablate.sim".into()],
            is_ca: false,
        },
        &key.public,
        &ca_name,
        &ca_key,
    );
    let mut store = RootStore::new();
    store.add_root(ca);
    let identity = Arc::new(ServerIdentity {
        chain: vec![leaf],
        key,
    });
    let eph = EphemeralCache::new(
        EphemeralPolicy::FreshPerHandshake,
        ts_crypto::dh::DhGroup::Sim256,
        HmacDrbg::new(&[seed, b"-e"].concat()),
    );
    let mut config = ServerConfig::new(identity, eph);
    config.tickets = Some(SharedStekManager::new(StekManager::new(
        rotation,
        TicketFormat::Rfc5077,
        HmacDrbg::new(&[seed, b"-k"].concat()),
        0,
    )));
    config.ticket_accept_window = DAY;
    config.ticket_lifetime_hint = DAY as u32;
    (Arc::new(store), config)
}

/// Sweep STEK rotation periods: record 30 days of hourly traffic, steal
/// once at day 30, report the decryptable fraction per period.
pub fn rotation_sweep(ctx: &Context) -> String {
    let seed = ctx.config.seed;
    let mut report = String::new();
    report.push_str(
        "Ablation — STEK rotation period vs. retrospective decryption\n\
         (30 days of hourly traffic; one compromise at day 30; retired keys\n\
         kept one period for ticket acceptance, so the exposed window is\n\
         two periods of issuance)\n",
    );
    let mut t = TextTable::new(&["rotation", "keys stolen", "connections fallen", "fraction"]);
    let policies: [(&str, RotationPolicy); 6] = [
        (
            "1h",
            RotationPolicy::Periodic {
                period: HOUR,
                overlap: HOUR,
            },
        ),
        (
            "6h",
            RotationPolicy::Periodic {
                period: 6 * HOUR,
                overlap: 6 * HOUR,
            },
        ),
        (
            "1d",
            RotationPolicy::Periodic {
                period: DAY,
                overlap: DAY,
            },
        ),
        (
            "7d",
            RotationPolicy::Periodic {
                period: 7 * DAY,
                overlap: 7 * DAY,
            },
        ),
        (
            "30d",
            RotationPolicy::Periodic {
                period: 30 * DAY,
                overlap: 30 * DAY,
            },
        ),
        ("never", RotationPolicy::Static),
    ];
    for (label, rotation) in policies {
        let (store, config) = one_site(format!("{seed}-rot-{label}").as_bytes(), rotation);
        let mut captures = Vec::new();
        for day in 0..30u64 {
            for conn in 0..24u64 {
                let now = day * DAY + conn * HOUR;
                let ccfg = ClientConfig::new(store.clone(), "ablate.sim", now);
                let mut client = ClientConn::new(
                    ccfg,
                    HmacDrbg::from_seed_label(seed ^ day ^ (conn << 32), "abl-c"),
                );
                let mut server = ServerConn::new(
                    config.clone(),
                    HmacDrbg::from_seed_label(seed ^ day ^ (conn << 40), "abl-s"),
                    now,
                );
                let result = pump(&mut client, &mut server).expect("handshake");
                let mut capture = result.capture;
                client.send_app_data(b"sensitive").expect("established");
                pump_app_data(&mut client, &mut server, &mut capture).expect("data");
                captures.push(CapturedConnection::parse(&capture).expect("parse"));
            }
        }
        // Advance rotation to day 30, then steal whatever is in memory.
        let manager = config.tickets.as_ref().expect("tickets");
        manager.active_key_name_at(30 * DAY);
        let stolen = manager.steal_keys();
        let fallen = bulk_decrypt(&captures, &stolen).len();
        t.row(&[
            label.to_string(),
            stolen.len().to_string(),
            format!("{fallen}/{}", captures.len()),
            pct(fallen as f64 / captures.len() as f64),
        ]);
    }
    report.push_str(&t.render());
    report.push_str(
        "\n→ §8.2 quantified: the fallen fraction scales with the rotation\n\
         period; \"never\" forfeits every recorded connection to one theft.\n",
    );
    report
}

/// Probe-step sensitivity: Figure 1's headline fractions under the
/// paper's 5-minute step vs. our coarser defaults.
pub fn probe_step_sensitivity(ctx: &Context) -> String {
    let mut report = String::new();
    report.push_str("Ablation — Fig. 1 probe-step sensitivity (same world, three steps)\n");
    let mut t = TextTable::new(&["step", "≤5min", "≤1h", "≤10h", "resuming domains"]);
    for step in [5 * 60u64, 30 * 60, 2 * HOUR] {
        let schedule = ProbeSchedule::coarse(step, 24 * HOUR);
        let fig = crate::exp_lifetimes::fig1_session_id_lifetime(ctx, &schedule);
        t.row(&[
            fmt_duration(step),
            pct(fig.cdf.fraction_le(5 * 60)),
            pct(fig.cdf.fraction_le(HOUR)),
            pct(fig.cdf.fraction_le(10 * HOUR)),
            fig.cdf.len().to_string(),
        ]);
    }
    report.push_str(&t.render());
    report.push_str(
        "\n→ lifetimes cluster on configuration spikes (3m/5m/1h/10h/18h/24h),\n\
         so coarser probing shifts mass *within* a bucket boundary but the\n\
         ≥1h and ≥10h masses — the security-relevant tails — are stable.\n",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_sweep_is_monotone() {
        let ctx = Context::from_config({
            let mut c = ts_population::PopulationConfig::new(3, 60);
            c.flakiness = 0.0;
            c.study_days = 2;
            c
        });
        let report = rotation_sweep(&ctx);
        assert!(report.contains("never"));
        // Extract fractions in order and check monotone non-decreasing.
        let fracs: Vec<f64> = report
            .lines()
            .filter(|l| l.contains('/') && l.contains('%'))
            .map(|l| {
                let p = l.rsplit_once(' ').unwrap().1.trim_end_matches('%');
                p.parse::<f64>().unwrap()
            })
            .collect();
        assert_eq!(fracs.len(), 6, "{report}");
        for w in fracs.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "monotone in rotation period: {fracs:?}"
            );
        }
        assert_eq!(
            *fracs.last().unwrap(),
            100.0,
            "never-rotate loses everything"
        );
        assert!(fracs[0] < 2.0, "hourly rotation saves almost everything");
    }

    #[test]
    fn probe_step_tails_stable() {
        let mut cfg = ts_population::PopulationConfig::new(41, 150);
        cfg.flakiness = 0.0;
        let ctx = Context::from_config(cfg);
        let report = probe_step_sensitivity(&ctx);
        // Three rows rendered.
        assert_eq!(report.matches('%').count() >= 9, true, "{report}");
    }
}
