//! The shared 63-day daily campaign and its artefacts:
//! Figure 3 (STEK lifetime CDF), Figure 4 (STEK lifetime by rank tier),
//! Figure 5 (DHE/ECDHE reuse-span CDFs), and Tables 2–4 (top domains with
//! prolonged reuse).

use crate::{parallel_map, Context, DAY};
use std::collections::BTreeMap;
use ts_core::cdf::Cdf;
use ts_core::lifetime::SpanEstimator;
use ts_core::observations::{KexKind, KexSighting, TicketSighting};
use ts_core::report::{compare_line, pct, TextTable};
use ts_core::tiers::{tier_cdfs, tiers_for_population};
use ts_scanner::daily::{run_campaign, CampaignOptions};
use ts_scanner::Scanner;

/// The campaign's collected sightings.
pub struct Campaign {
    /// Ticket sightings over the study.
    pub tickets: Vec<TicketSighting>,
    /// Key-exchange sightings (both flavours).
    pub kex: Vec<KexSighting>,
    /// Total handshake attempts.
    pub attempts: u64,
    /// Days scanned.
    pub days: u64,
}

/// Run the daily campaign over the stable core against a pristine world.
///
/// The paper scans the full churned list daily and filters to the stable
/// core for multi-day analysis; scanning only the core is observationally
/// identical for every artefact this campaign feeds and skips wasted
/// connections.
///
/// Parallelism is **day-lockstep**: workers fan out across domains within
/// one day, then barrier before the next. Virtual time inside shared STEK
/// managers only moves forward, so letting one worker race ahead to day 40
/// while another still scans day 2 would freeze rotation state for every
/// domain sharing a manager across the chunk boundary and corrupt the span
/// estimates. Within a day all grabs carry the same timestamps, making the
/// shared-state ticks idempotent and the result deterministic.
pub fn run_daily_campaign(ctx: &Context) -> Campaign {
    let pop = ctx.fresh_pop();
    let days = ctx.config.study_days;
    let domains = &ctx.core_trusted;
    let mut tickets = Vec::new();
    let mut kex = Vec::new();
    let mut attempts = 0;
    for day in 0..days {
        let day_results = parallel_map(domains, crate::default_workers(), |chunk_id, chunk| {
            let mut scanner = Scanner::new(&pop, &format!("daily-campaign-{day}-{chunk_id}"));
            let options = CampaignOptions::new().days(day..day + 1);
            let chunk_vec: Vec<String> = chunk.to_vec();
            vec![run_campaign(&mut scanner, &options, |_day| {
                chunk_vec.clone()
            })]
        });
        for data in day_results {
            tickets.extend(data.tickets);
            kex.extend(data.kex);
            attempts += data.attempts;
        }
    }
    Campaign {
        tickets,
        kex,
        attempts,
        days,
    }
}

/// Span analysis bundles for the campaign.
pub struct CampaignSpans {
    /// Per-domain STEK spans.
    pub stek: SpanEstimator,
    /// Per-domain DHE value spans.
    pub dhe: SpanEstimator,
    /// Per-domain ECDHE value spans.
    pub ecdhe: SpanEstimator,
}

/// Build the three span estimators from campaign data.
pub fn spans(campaign: &Campaign) -> CampaignSpans {
    let mut stek = SpanEstimator::new();
    stek.record_tickets(&campaign.tickets);
    let mut dhe = SpanEstimator::new();
    dhe.record_kex(&campaign.kex, KexKind::Dhe);
    let mut ecdhe = SpanEstimator::new();
    ecdhe.record_kex(&campaign.kex, KexKind::Ecdhe);
    CampaignSpans { stek, dhe, ecdhe }
}

/// Figure 3: STEK lifetime CDF.
pub struct Fig3 {
    /// CDF of per-domain maximum STEK spans (days).
    pub cdf: Cdf,
    /// Fraction of ticket issuers whose STEK never repeated across days.
    pub daily_fraction: f64,
    /// Fraction with spans ≥ 7 days.
    pub ge7_fraction: f64,
    /// Fraction with spans ≥ 30 days.
    pub ge30_fraction: f64,
    /// Rendered report.
    pub report: String,
}

/// Compute Figure 3.
pub fn fig3_stek_lifetime(ctx: &Context) -> Fig3 {
    let campaign = ctx.campaign();
    let s = spans(campaign);
    let max_spans = s.stek.max_spans();
    let cdf = Cdf::from_samples(max_spans);
    let daily_fraction = cdf.fraction_le(1);
    let ge7 = cdf.fraction_ge(7);
    let ge30 = cdf.fraction_ge(30);
    let mut report = String::new();
    report.push_str("Figure 3 — STEK Lifetime (CDF of max span per ticket-issuing domain)\n");
    let mut t = TextTable::new(&["span ≤ (days)", "CDF"]);
    for bp in [1u64, 2, 3, 7, 14, 30, 45, 63] {
        t.row(&[bp.to_string(), pct(cdf.fraction_le(bp))]);
    }
    report.push_str(&t.render());
    report.push('\n');
    report.push_str(&compare_line(
        "fresh STEK daily (of issuers)",
        "~53%",
        &pct(daily_fraction),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "STEK span ≥ 7d (of issuers)",
        "~28%",
        &pct(ge7),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "STEK span ≥ 30d (of issuers)",
        "~13%",
        &pct(ge30),
    ));
    report.push('\n');
    Fig3 {
        cdf,
        daily_fraction,
        ge7_fraction: ge7,
        ge30_fraction: ge30,
        report,
    }
}

/// Figure 4: STEK lifetime by rank tier.
pub fn fig4_stek_by_rank(ctx: &Context) -> String {
    let campaign = ctx.campaign();
    let s = spans(campaign);
    let spans_by_domain = s.stek.domain_spans();
    let samples: Vec<(usize, u64)> = spans_by_domain
        .iter()
        .filter_map(|(domain, ds)| {
            ctx.pop
                .truth
                .get(domain)
                .map(|t| (t.rank, ds.max_span_days))
        })
        .collect();
    let tiers = tiers_for_population(ctx.pop.config.size);
    let cdfs = tier_cdfs(&samples, &tiers);
    let mut report = String::new();
    report.push_str("Figure 4 — STEK Lifetime by Rank Tier (per-tier CDF)\n");
    let mut t = TextTable::new(&["tier", "issuers", "≥7d", "≥30d", "median"]);
    for tier in &tiers {
        let cdf = &cdfs[tier.label];
        t.row(&[
            tier.label.to_string(),
            cdf.len().to_string(),
            pct(cdf.fraction_ge(7)),
            pct(cdf.fraction_ge(30)),
            cdf.median()
                .map(|m| format!("{m}d"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    report.push_str(&t.render());
    report.push_str(
        "\npaper: 12 of the Alexa Top 100 persisted STEKs ≥30 days; long-lived\n\
         STEKs appear in every tier.\n",
    );
    report
}

/// Figure 5: DHE and ECDHE reuse-span CDFs.
pub struct Fig5 {
    /// DHE spans CDF (days), over DHE-connecting domains.
    pub dhe_cdf: Cdf,
    /// ECDHE spans CDF.
    pub ecdhe_cdf: Cdf,
    /// Rendered report.
    pub report: String,
}

/// Compute Figure 5.
pub fn fig5_kex_reuse(ctx: &Context) -> Fig5 {
    let campaign = ctx.campaign();
    let s = spans(campaign);
    let denominator = ctx.core_trusted.len() as f64;
    let dhe_cdf = Cdf::from_samples(s.dhe.max_spans());
    let ecdhe_cdf = Cdf::from_samples(s.ecdhe.max_spans());
    let mut report = String::new();
    report.push_str("Figure 5 — Ephemeral Exchange Value Reuse (span CDFs)\n");
    let mut t = TextTable::new(&[
        "span ≥",
        "DHE domains",
        "DHE %core",
        "ECDHE domains",
        "ECDHE %core",
    ]);
    for bp in [2u64, 7, 30] {
        let d = dhe_cdf.count_ge(bp);
        let e = ecdhe_cdf.count_ge(bp);
        t.row(&[
            format!("{bp}d"),
            d.to_string(),
            pct(d as f64 / denominator),
            e.to_string(),
            pct(e as f64 / denominator),
        ]);
    }
    report.push_str(&t.render());
    report.push('\n');
    report.push_str(&compare_line(
        "DHE ≥7d (of trusted core)",
        "1.2%",
        &pct(dhe_cdf.count_ge(7) as f64 / denominator),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "ECDHE ≥7d (of trusted core)",
        "3.0%",
        &pct(ecdhe_cdf.count_ge(7) as f64 / denominator),
    ));
    report.push('\n');
    Fig5 {
        dhe_cdf,
        ecdhe_cdf,
        report,
    }
}

/// Tables 2, 3, 4: top domains (by rank) with ≥7-day reuse.
pub fn top_reuse_table(
    ctx: &Context,
    estimator: &SpanEstimator,
    title: &str,
    paper_examples: &str,
    k: usize,
) -> String {
    let long: Vec<(String, u64)> = estimator.domains_with_span_at_least(7);
    // Order by rank (most popular first), as the paper's tables do.
    let mut ranked: Vec<(usize, String, u64)> = long
        .into_iter()
        .filter_map(|(domain, span)| ctx.pop.truth.get(&domain).map(|t| (t.rank, domain, span)))
        .collect();
    ranked.sort();
    let mut report = String::new();
    report.push_str(title);
    report.push('\n');
    let mut t = TextTable::new(&["Rank", "Domain", "# Days"]);
    for (rank, domain, span) in ranked.iter().take(k) {
        t.row(&[rank.to_string(), domain.clone(), span.to_string()]);
    }
    report.push_str(&t.render());
    report.push_str(&format!("\npaper's exemplars: {paper_examples}\n"));
    report
}

/// Table 2.
pub fn table2_stek_reuse(ctx: &Context) -> String {
    let s = spans(ctx.campaign());
    top_reuse_table(
        ctx,
        &s.stek,
        "Table 2 — Top Domains with Prolonged STEK Reuse (≥7 days)",
        "yahoo 63d, qq 56, taobao 63, pinterest 63, yandex 63, netflix 54, imgur 63, fc2 18, pornhub 29",
        12,
    )
}

/// Table 3.
pub fn table3_dhe_reuse(ctx: &Context) -> String {
    let s = spans(ctx.campaign());
    top_reuse_table(
        ctx,
        &s.dhe,
        "Table 3 — Top Domains with Prolonged DHE Reuse (≥7 days)",
        "netflix 59d, fc2 18, ebay-in 7, ebay-it 8, bleacherreport 24, kayak 13, cbssports 60, cookpad 63",
        12,
    )
}

/// Table 4.
pub fn table4_ecdhe_reuse(ctx: &Context) -> String {
    let s = spans(ctx.campaign());
    top_reuse_table(
        ctx,
        &s.ecdhe,
        "Table 4 — Top Domains with Prolonged ECDHE Reuse (≥7 days)",
        "netflix 59d, whatsapp 62, vice 26, 9gag 31, liputan6 28, paytm 27, playstation 11, woot 62",
        12,
    )
}

/// Validate the campaign estimator against ground truth: for domains with
/// a static STEK the measured span must equal the full study; for daily
/// rotators it must be 1. Returns (checked, mismatches).
pub fn validate_against_truth(ctx: &Context) -> (usize, usize) {
    let s = spans(ctx.campaign());
    let spans_by_domain = s.stek.domain_spans();
    let mut checked = 0;
    let mut mismatches = 0;
    for (domain, ds) in &spans_by_domain {
        let truth = match ctx.pop.truth.get(domain) {
            Some(t) => t,
            None => continue,
        };
        match truth.stek_period {
            Some(u64::MAX) => {
                checked += 1;
                // Allow jitter at the edges from flaky connections.
                if ds.max_span_days + 3 < ctx.campaign().days {
                    mismatches += 1;
                }
            }
            Some(p) if p < DAY => {
                checked += 1;
                if ds.max_span_days > 2 {
                    mismatches += 1;
                }
            }
            _ => {}
        }
    }
    (checked, mismatches)
}

/// Ticket lifetime *hints* observed (feeds Figure 2's hint series and the
/// fantabob-style outlier hunt).
pub fn hint_distribution(campaign: &Campaign) -> BTreeMap<u32, usize> {
    // Ordered maps end to end: the hint histogram feeds Figure 2's rendered
    // series, so its iteration order is part of the repro's output.
    let mut per_domain: BTreeMap<&str, u32> = BTreeMap::new();
    for s in &campaign.tickets {
        per_domain.insert(&s.domain, s.lifetime_hint);
    }
    let mut out: BTreeMap<u32, usize> = BTreeMap::new();
    for (_, hint) in per_domain {
        *out.entry(hint).or_default() += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ctx() -> Context {
        let mut cfg = ts_population::PopulationConfig::new(5, 250);
        cfg.study_days = 10;
        cfg.flakiness = 0.002;
        Context::from_config(cfg)
    }

    #[test]
    fn campaign_and_figures_run() {
        let ctx = small_ctx();
        let campaign = ctx.campaign();
        assert!(campaign.attempts > 0);
        assert!(!campaign.tickets.is_empty());
        let f3 = fig3_stek_lifetime(&ctx);
        assert!(!f3.cdf.is_empty());
        assert!(f3.report.contains("Figure 3"));
        // Shape: more domains rotate daily than hold ≥7d.
        assert!(f3.daily_fraction > f3.ge7_fraction);
        let f4 = fig4_stek_by_rank(&ctx);
        assert!(f4.contains("Top 100"));
        let f5 = fig5_kex_reuse(&ctx);
        assert!(f5.report.contains("Figure 5"));
        // Shape: ECDHE reuse exceeds DHE reuse in absolute domain counts.
        assert!(f5.ecdhe_cdf.count_ge(2) >= f5.dhe_cdf.count_ge(2));
    }

    #[test]
    fn tables_name_the_notables() {
        let ctx = small_ctx();
        // The rendered tables cap at the paper's ~10 rows; at this tiny
        // scale notables crowd the top ranks, so assert membership on the
        // full ≥7-day lists and rendering separately.
        let s = spans(ctx.campaign());
        let stek_long: Vec<String> = s
            .stek
            .domains_with_span_at_least(7)
            .into_iter()
            .map(|(d, _)| d)
            .collect();
        assert!(
            stek_long.contains(&"yahoo.sim".to_string()),
            "{stek_long:?}"
        );
        let dhe_long: Vec<String> = s
            .dhe
            .domains_with_span_at_least(7)
            .into_iter()
            .map(|(d, _)| d)
            .collect();
        assert!(
            dhe_long.contains(&"cookpad.sim".to_string()),
            "{dhe_long:?}"
        );
        let ecdhe_long: Vec<String> = s
            .ecdhe
            .domains_with_span_at_least(7)
            .into_iter()
            .map(|(d, _)| d)
            .collect();
        assert!(
            ecdhe_long.contains(&"whatsapp.sim".to_string()),
            "{ecdhe_long:?}"
        );
        assert!(table2_stek_reuse(&ctx).contains("Table 2"));
        assert!(table3_dhe_reuse(&ctx).contains("Table 3"));
        assert!(table4_ecdhe_reuse(&ctx).contains("Table 4"));
    }

    #[test]
    fn estimator_matches_ground_truth() {
        let ctx = small_ctx();
        let (checked, mismatches) = validate_against_truth(&ctx);
        assert!(checked > 10, "checked {checked}");
        let rate = mismatches as f64 / checked as f64;
        assert!(rate < 0.05, "estimator mismatch rate {rate}");
    }

    #[test]
    fn hints_include_90_day_outliers() {
        let ctx = small_ctx();
        let hints = hint_distribution(ctx.campaign());
        // fantabobworld/fantabobshow advertise 90 days.
        let ninety = (90 * DAY) as u32;
        assert!(hints.get(&ninety).copied().unwrap_or(0) >= 1, "{hints:?}");
    }
}
