//! The shared 63-day daily campaign and its artefacts:
//! Figure 3 (STEK lifetime CDF), Figure 4 (STEK lifetime by rank tier),
//! Figure 5 (DHE/ECDHE reuse-span CDFs), and Tables 2–4 (top domains with
//! prolonged reuse).
//!
//! The campaign runs **sharded and streaming**: the domain population is
//! partitioned into fixed, count-derived shards (the same layout
//! [`parallel_map`](ts_core::par::parallel_map) uses for chunks), each
//! shard owns its analysis accumulators, and every sighting is folded into
//! a bounded accumulator the moment the scanner produces it. Nothing ever
//! materialises the full `Vec<TicketSighting>` of a nine-week scan, so
//! peak memory is governed by the eviction horizon and the domain count —
//! not by domain-days.

use crate::{Context, DAY};
use std::collections::BTreeMap;
use ts_core::cdf::Cdf;
use ts_core::groups::ServiceGroup;
use ts_core::observations::{KexKind, KexSighting, TicketSighting};
use ts_core::par::{for_each_shard, ShardPlan};
use ts_core::report::{compare_line, pct, TextTable};
use ts_core::stream::{GroupAcc, Merge, SpanAcc, TierAcc};
use ts_core::tiers::tiers_for_population;
use ts_scanner::daily::{run_campaign_streaming, CampaignOptions, CampaignSink};
use ts_scanner::Scanner;

/// Sliding eviction horizon for campaign accumulators, in days.
///
/// A (domain, identifier) pair not re-observed for this many days is
/// retired into its domain aggregate; a shared identifier unseen for this
/// long is dropped from the group tracker. Safe because the simulated
/// servers never resurrect an identifier: STEK managers rotate forward and
/// reuse windows are contiguous, so once an id goes quiet it stays quiet.
/// The horizon comfortably exceeds the longest plausible flaky gap, and
/// final per-domain spans are exactly what the unbounded estimator yields.
pub const EVICTION_HORIZON_DAYS: u64 = 21;

/// The campaign's sealed analysis.
///
/// Earlier revisions carried every raw sighting (`Vec<TicketSighting>`,
/// `Vec<KexSighting>`) and re-derived each figure from scratch; this holds
/// only the merged streaming accumulators and the precomputed group
/// structures the figures read.
pub struct Campaign {
    /// Per-mechanism span accumulators, merged over shards in shard order.
    pub spans: CampaignSpans,
    /// STEK service groups over the whole campaign (Figure 6).
    pub stek_groups: Vec<ServiceGroup>,
    /// Diffie-Hellman service groups, both flavours (Figure 7 right).
    pub dh_groups: Vec<ServiceGroup>,
    /// Per-domain last-observed ticket lifetime hint (Figure 2's series).
    pub hints: BTreeMap<String, u32>,
    /// Total handshake attempts.
    pub attempts: u64,
    /// Days scanned.
    pub days: u64,
    /// Shard/memory accounting for the streaming run.
    pub stats: CampaignStats,
}

/// Accounting for the sharded streaming campaign: how the population was
/// split and how much live state the accumulators ever held.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Number of domain shards the population was partitioned into.
    pub shards: usize,
    /// Domains scanned daily.
    pub domains: usize,
    /// Scanned domain-days (`domains × days`) — the quantity peak memory
    /// must stay sublinear in.
    pub domain_days: u64,
    /// Peak live accumulator entries across all shards, sampled at each
    /// day boundary after eviction (span pairs + tracked group ids).
    pub peak_live_entries: usize,
    /// Shared-identifier entries the group trackers evicted at the
    /// horizon over the whole campaign.
    pub evicted_group_ids: u64,
}

/// Span analysis bundles for the campaign.
pub struct CampaignSpans {
    /// Per-domain STEK spans.
    pub stek: SpanAcc,
    /// Per-domain DHE value spans.
    pub dhe: SpanAcc,
    /// Per-domain ECDHE value spans.
    pub ecdhe: SpanAcc,
}

/// One shard's private campaign state: its slice of the population, its
/// span accumulators, its hint tracker, and the current day's sighting
/// batch awaiting the post-barrier drain into the global group trackers.
struct ShardState {
    domains: Vec<String>,
    stek: SpanAcc,
    dhe: SpanAcc,
    ecdhe: SpanAcc,
    /// domain → (last day seen, hint on that day); last observation wins,
    /// matching the old collect-then-fold hint pass.
    hints: BTreeMap<String, (u64, u32)>,
    attempts: u64,
    day_tickets: Vec<(String, String)>,
    day_kex: Vec<(String, String)>,
}

impl ShardState {
    fn new(domains: Vec<String>) -> Self {
        let horizon = Some(EVICTION_HORIZON_DAYS);
        ShardState {
            domains,
            stek: SpanAcc::with_horizon(horizon),
            dhe: SpanAcc::with_horizon(horizon),
            ecdhe: SpanAcc::with_horizon(horizon),
            hints: BTreeMap::new(),
            attempts: 0,
            day_tickets: Vec::new(),
            day_kex: Vec::new(),
        }
    }

    fn live_entries(&self) -> usize {
        self.stek.live_pairs() + self.dhe.live_pairs() + self.ecdhe.live_pairs()
    }
}

impl CampaignSink for ShardState {
    fn ticket(&mut self, s: TicketSighting) {
        self.stek.record(&s.domain, &s.stek_id, s.day);
        let e = self
            .hints
            .entry(s.domain.clone())
            .or_insert((s.day, s.lifetime_hint));
        if s.day >= e.0 {
            *e = (s.day, s.lifetime_hint);
        }
        self.day_tickets.push((s.domain, s.stek_id));
    }

    fn kex(&mut self, s: KexSighting) {
        match s.kex {
            KexKind::Dhe => self.dhe.record(&s.domain, &s.value_fp, s.day),
            KexKind::Ecdhe => self.ecdhe.record(&s.domain, &s.value_fp, s.day),
        }
        self.day_kex.push((s.domain, s.value_fp));
    }
}

/// Run the daily campaign over the stable core against a pristine world.
///
/// The paper scans the full churned list daily and filters to the stable
/// core for multi-day analysis; scanning only the core is observationally
/// identical for every artefact this campaign feeds and skips wasted
/// connections.
///
/// **Sharding.** The core is partitioned by [`ShardPlan`] — the exact
/// chunk layout `parallel_map` derives from the domain count — so shard
/// `s` on day `d` seeds its scanner `daily-campaign-{d}-{s}` exactly as
/// the chunked collector did, and output is byte-identical at any worker
/// count. Each shard folds its own sightings into [`SpanAcc`]s as they
/// are produced; cross-shard structures (the STEK and DH group trackers)
/// are global and fed after each day's barrier, draining every shard's
/// bounded day batch in fixed shard order. Sharers present a shared
/// identifier on the same day, so union edges always form before the
/// horizon can evict either endpoint.
///
/// **Parallelism** stays day-lockstep: workers fan out across shards
/// within one day, then barrier before the next. Virtual time inside
/// shared STEK managers only moves forward, so letting one worker race
/// ahead to day 40 while another still scans day 2 would freeze rotation
/// state for every domain sharing a manager across a shard boundary and
/// corrupt the span estimates. Within a day all grabs carry the same
/// timestamps, making the shared-state ticks idempotent and the result
/// deterministic.
pub fn run_daily_campaign(ctx: &Context) -> Campaign {
    let pop = ctx.fresh_pop();
    let days = ctx.config.study_days;
    let domains = &ctx.core_trusted;
    let plan = ShardPlan::for_len(domains.len());
    let mut states: Vec<ShardState> = (0..plan.shard_count())
        .map(|s| ShardState::new(domains[plan.range(s)].to_vec()))
        .collect();
    let horizon = Some(EVICTION_HORIZON_DAYS);
    let mut stek_group_acc = GroupAcc::with_horizon(horizon);
    let mut dh_group_acc = GroupAcc::with_horizon(horizon);
    let mut peak_live_entries = 0usize;
    for day in 0..days {
        for_each_shard(&mut states, crate::default_workers(), |shard_id, state| {
            let mut scanner = Scanner::new(&pop, &format!("daily-campaign-{day}-{shard_id}"));
            let options = CampaignOptions::new().days(day..day + 1);
            let shard_domains = state.domains.clone();
            let attempts = run_campaign_streaming(
                &mut scanner,
                &options,
                move |_day| shard_domains.clone(),
                state,
            );
            state.attempts += attempts;
        });
        // Barrier passed: drain each shard's day batch into the global
        // group trackers in fixed shard order (the same stream order the
        // collect-then-group path produced), then evict at the horizon.
        for state in &mut states {
            for (domain, id) in state.day_tickets.drain(..) {
                stek_group_acc.record(&domain, &id, day);
            }
            for (domain, fp) in state.day_kex.drain(..) {
                dh_group_acc.record(&domain, &fp, day);
            }
            state.stek.advance(day);
            state.dhe.advance(day);
            state.ecdhe.advance(day);
        }
        stek_group_acc.advance(day);
        dh_group_acc.advance(day);
        let live: usize = states.iter().map(ShardState::live_entries).sum::<usize>()
            + stek_group_acc.live_ids()
            + dh_group_acc.live_ids();
        peak_live_entries = peak_live_entries.max(live);
    }

    // Seal: merge shard accumulators in fixed shard order. Shards own
    // disjoint domains, so the span merge is a disjoint union and the
    // hint maps never collide.
    let mut stek = SpanAcc::with_horizon(horizon);
    let mut dhe = SpanAcc::with_horizon(horizon);
    let mut ecdhe = SpanAcc::with_horizon(horizon);
    let mut hints = BTreeMap::new();
    let mut attempts = 0u64;
    let domain_count = domains.len();
    for state in states {
        stek.merge(state.stek);
        dhe.merge(state.dhe);
        ecdhe.merge(state.ecdhe);
        for (domain, (_day, hint)) in state.hints {
            hints.insert(domain, hint);
        }
        attempts += state.attempts;
    }
    let evicted_group_ids = stek_group_acc.evicted_ids() + dh_group_acc.evicted_ids();
    Campaign {
        spans: CampaignSpans { stek, dhe, ecdhe },
        stek_groups: stek_group_acc.service_groups(),
        dh_groups: dh_group_acc.service_groups(),
        hints,
        attempts,
        days,
        stats: CampaignStats {
            shards: plan.shard_count(),
            domains: domain_count,
            domain_days: domain_count as u64 * days,
            peak_live_entries,
            evicted_group_ids,
        },
    }
}

/// The campaign's span accumulators (kept as an accessor for the figure
/// builders, which predate the sealed [`Campaign`]).
pub fn spans(campaign: &Campaign) -> &CampaignSpans {
    &campaign.spans
}

/// Figure 3: STEK lifetime CDF.
pub struct Fig3 {
    /// CDF of per-domain maximum STEK spans (days).
    pub cdf: Cdf,
    /// Fraction of ticket issuers whose STEK never repeated across days.
    pub daily_fraction: f64,
    /// Fraction with spans ≥ 7 days.
    pub ge7_fraction: f64,
    /// Fraction with spans ≥ 30 days.
    pub ge30_fraction: f64,
    /// Rendered report.
    pub report: String,
}

/// Compute Figure 3.
pub fn fig3_stek_lifetime(ctx: &Context) -> Fig3 {
    let campaign = ctx.campaign();
    let s = spans(campaign);
    let max_spans = s.stek.max_spans();
    let cdf = Cdf::from_samples(max_spans);
    let daily_fraction = cdf.fraction_le(1);
    let ge7 = cdf.fraction_ge(7);
    let ge30 = cdf.fraction_ge(30);
    let mut report = String::new();
    report.push_str("Figure 3 — STEK Lifetime (CDF of max span per ticket-issuing domain)\n");
    let mut t = TextTable::new(&["span ≤ (days)", "CDF"]);
    for bp in [1u64, 2, 3, 7, 14, 30, 45, 63] {
        t.row(&[bp.to_string(), pct(cdf.fraction_le(bp))]);
    }
    report.push_str(&t.render());
    report.push('\n');
    report.push_str(&compare_line(
        "fresh STEK daily (of issuers)",
        "~53%",
        &pct(daily_fraction),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "STEK span ≥ 7d (of issuers)",
        "~28%",
        &pct(ge7),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "STEK span ≥ 30d (of issuers)",
        "~13%",
        &pct(ge30),
    ));
    report.push('\n');
    Fig3 {
        cdf,
        daily_fraction,
        ge7_fraction: ge7,
        ge30_fraction: ge30,
        report,
    }
}

/// Figure 4: STEK lifetime by rank tier.
///
/// Streams `(rank, span)` samples through a [`TierAcc`] — count-based
/// per-tier CDFs — instead of materialising and sorting a sample vector
/// per tier.
pub fn fig4_stek_by_rank(ctx: &Context) -> String {
    let campaign = ctx.campaign();
    let s = spans(campaign);
    let tiers = tiers_for_population(ctx.pop.config.size);
    let mut acc = TierAcc::new(&tiers);
    for (domain, ds) in s.stek.domain_spans() {
        if let Some(t) = ctx.pop.truth.get(&domain) {
            acc.record(t.rank, ds.max_span_days);
        }
    }
    let cdfs = acc.cdfs();
    let mut report = String::new();
    report.push_str("Figure 4 — STEK Lifetime by Rank Tier (per-tier CDF)\n");
    let mut t = TextTable::new(&["tier", "issuers", "≥7d", "≥30d", "median"]);
    for tier in &tiers {
        let cdf = &cdfs[tier.label];
        t.row(&[
            tier.label.to_string(),
            cdf.len().to_string(),
            pct(cdf.fraction_ge(7)),
            pct(cdf.fraction_ge(30)),
            cdf.median()
                .map(|m| format!("{m}d"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    report.push_str(&t.render());
    report.push_str(
        "\npaper: 12 of the Alexa Top 100 persisted STEKs ≥30 days; long-lived\n\
         STEKs appear in every tier.\n",
    );
    report
}

/// Figure 5: DHE and ECDHE reuse-span CDFs.
pub struct Fig5 {
    /// DHE spans CDF (days), over DHE-connecting domains.
    pub dhe_cdf: Cdf,
    /// ECDHE spans CDF.
    pub ecdhe_cdf: Cdf,
    /// Rendered report.
    pub report: String,
}

/// Compute Figure 5.
pub fn fig5_kex_reuse(ctx: &Context) -> Fig5 {
    let campaign = ctx.campaign();
    let s = spans(campaign);
    let denominator = ctx.core_trusted.len() as f64;
    let dhe_cdf = Cdf::from_samples(s.dhe.max_spans());
    let ecdhe_cdf = Cdf::from_samples(s.ecdhe.max_spans());
    let mut report = String::new();
    report.push_str("Figure 5 — Ephemeral Exchange Value Reuse (span CDFs)\n");
    let mut t = TextTable::new(&[
        "span ≥",
        "DHE domains",
        "DHE %core",
        "ECDHE domains",
        "ECDHE %core",
    ]);
    for bp in [2u64, 7, 30] {
        let d = dhe_cdf.count_ge(bp);
        let e = ecdhe_cdf.count_ge(bp);
        t.row(&[
            format!("{bp}d"),
            d.to_string(),
            pct(d as f64 / denominator),
            e.to_string(),
            pct(e as f64 / denominator),
        ]);
    }
    report.push_str(&t.render());
    report.push('\n');
    report.push_str(&compare_line(
        "DHE ≥7d (of trusted core)",
        "1.2%",
        &pct(dhe_cdf.count_ge(7) as f64 / denominator),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "ECDHE ≥7d (of trusted core)",
        "3.0%",
        &pct(ecdhe_cdf.count_ge(7) as f64 / denominator),
    ));
    report.push('\n');
    Fig5 {
        dhe_cdf,
        ecdhe_cdf,
        report,
    }
}

/// Tables 2, 3, 4: top domains (by rank) with ≥7-day reuse.
pub fn top_reuse_table(
    ctx: &Context,
    acc: &SpanAcc,
    title: &str,
    paper_examples: &str,
    k: usize,
) -> String {
    let long: Vec<(String, u64)> = acc.domains_with_span_at_least(7);
    // Order by rank (most popular first), as the paper's tables do.
    let mut ranked: Vec<(usize, String, u64)> = long
        .into_iter()
        .filter_map(|(domain, span)| ctx.pop.truth.get(&domain).map(|t| (t.rank, domain, span)))
        .collect();
    ranked.sort();
    let mut report = String::new();
    report.push_str(title);
    report.push('\n');
    let mut t = TextTable::new(&["Rank", "Domain", "# Days"]);
    for (rank, domain, span) in ranked.iter().take(k) {
        t.row(&[rank.to_string(), domain.clone(), span.to_string()]);
    }
    report.push_str(&t.render());
    report.push_str(&format!("\npaper's exemplars: {paper_examples}\n"));
    report
}

/// Table 2.
pub fn table2_stek_reuse(ctx: &Context) -> String {
    let s = spans(ctx.campaign());
    top_reuse_table(
        ctx,
        &s.stek,
        "Table 2 — Top Domains with Prolonged STEK Reuse (≥7 days)",
        "yahoo 63d, qq 56, taobao 63, pinterest 63, yandex 63, netflix 54, imgur 63, fc2 18, pornhub 29",
        12,
    )
}

/// Table 3.
pub fn table3_dhe_reuse(ctx: &Context) -> String {
    let s = spans(ctx.campaign());
    top_reuse_table(
        ctx,
        &s.dhe,
        "Table 3 — Top Domains with Prolonged DHE Reuse (≥7 days)",
        "netflix 59d, fc2 18, ebay-in 7, ebay-it 8, bleacherreport 24, kayak 13, cbssports 60, cookpad 63",
        12,
    )
}

/// Table 4.
pub fn table4_ecdhe_reuse(ctx: &Context) -> String {
    let s = spans(ctx.campaign());
    top_reuse_table(
        ctx,
        &s.ecdhe,
        "Table 4 — Top Domains with Prolonged ECDHE Reuse (≥7 days)",
        "netflix 59d, whatsapp 62, vice 26, 9gag 31, liputan6 28, paytm 27, playstation 11, woot 62",
        12,
    )
}

/// Validate the campaign estimator against ground truth: for domains with
/// a static STEK the measured span must equal the full study; for daily
/// rotators it must be 1. Returns (checked, mismatches).
pub fn validate_against_truth(ctx: &Context) -> (usize, usize) {
    let s = spans(ctx.campaign());
    let spans_by_domain = s.stek.domain_spans();
    let mut checked = 0;
    let mut mismatches = 0;
    for (domain, ds) in &spans_by_domain {
        let truth = match ctx.pop.truth.get(domain) {
            Some(t) => t,
            None => continue,
        };
        match truth.stek_period {
            Some(u64::MAX) => {
                checked += 1;
                // Allow jitter at the edges from flaky connections.
                if ds.max_span_days + 3 < ctx.campaign().days {
                    mismatches += 1;
                }
            }
            Some(p) if p < DAY => {
                checked += 1;
                if ds.max_span_days > 2 {
                    mismatches += 1;
                }
            }
            _ => {}
        }
    }
    (checked, mismatches)
}

/// Ticket lifetime *hints* observed (feeds Figure 2's hint series and the
/// fantabob-style outlier hunt). The per-domain last-observed hint is
/// tracked during the streaming run; this folds it into a histogram.
pub fn hint_distribution(campaign: &Campaign) -> BTreeMap<u32, usize> {
    // Ordered maps end to end: the hint histogram feeds Figure 2's rendered
    // series, so its iteration order is part of the repro's output.
    let mut out: BTreeMap<u32, usize> = BTreeMap::new();
    for hint in campaign.hints.values() {
        *out.entry(*hint).or_default() += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ctx() -> Context {
        let mut cfg = ts_population::PopulationConfig::new(5, 250);
        cfg.study_days = 10;
        cfg.flakiness = 0.002;
        Context::from_config(cfg)
    }

    #[test]
    fn campaign_and_figures_run() {
        let ctx = small_ctx();
        let campaign = ctx.campaign();
        assert!(campaign.attempts > 0);
        assert!(campaign.spans.stek.pair_count() > 0);
        assert!(campaign.stats.shards > 0);
        assert!(campaign.stats.peak_live_entries > 0);
        let f3 = fig3_stek_lifetime(&ctx);
        assert!(!f3.cdf.is_empty());
        assert!(f3.report.contains("Figure 3"));
        // Shape: more domains rotate daily than hold ≥7d.
        assert!(f3.daily_fraction > f3.ge7_fraction);
        let f4 = fig4_stek_by_rank(&ctx);
        assert!(f4.contains("Top 100"));
        let f5 = fig5_kex_reuse(&ctx);
        assert!(f5.report.contains("Figure 5"));
        // Shape: ECDHE reuse exceeds DHE reuse in absolute domain counts.
        assert!(f5.ecdhe_cdf.count_ge(2) >= f5.dhe_cdf.count_ge(2));
    }

    #[test]
    fn tables_name_the_notables() {
        let ctx = small_ctx();
        // The rendered tables cap at the paper's ~10 rows; at this tiny
        // scale notables crowd the top ranks, so assert membership on the
        // full ≥7-day lists and rendering separately.
        let s = spans(ctx.campaign());
        let stek_long: Vec<String> = s
            .stek
            .domains_with_span_at_least(7)
            .into_iter()
            .map(|(d, _)| d)
            .collect();
        assert!(
            stek_long.contains(&"yahoo.sim".to_string()),
            "{stek_long:?}"
        );
        let dhe_long: Vec<String> = s
            .dhe
            .domains_with_span_at_least(7)
            .into_iter()
            .map(|(d, _)| d)
            .collect();
        assert!(
            dhe_long.contains(&"cookpad.sim".to_string()),
            "{dhe_long:?}"
        );
        let ecdhe_long: Vec<String> = s
            .ecdhe
            .domains_with_span_at_least(7)
            .into_iter()
            .map(|(d, _)| d)
            .collect();
        assert!(
            ecdhe_long.contains(&"whatsapp.sim".to_string()),
            "{ecdhe_long:?}"
        );
        assert!(table2_stek_reuse(&ctx).contains("Table 2"));
        assert!(table3_dhe_reuse(&ctx).contains("Table 3"));
        assert!(table4_ecdhe_reuse(&ctx).contains("Table 4"));
    }

    #[test]
    fn estimator_matches_ground_truth() {
        let ctx = small_ctx();
        let (checked, mismatches) = validate_against_truth(&ctx);
        assert!(checked > 10, "checked {checked}");
        let rate = mismatches as f64 / checked as f64;
        assert!(rate < 0.05, "estimator mismatch rate {rate}");
    }

    #[test]
    fn hints_include_90_day_outliers() {
        let ctx = small_ctx();
        let hints = hint_distribution(ctx.campaign());
        // fantabobworld/fantabobshow advertise 90 days.
        let ninety = (90 * DAY) as u32;
        assert!(hints.get(&ninety).copied().unwrap_or(0) >= 1, "{hints:?}");
    }

    #[test]
    fn eviction_bounds_live_state_past_the_horizon() {
        // A study longer than the horizon: daily rotators accumulate one
        // (domain, id) pair per day, so without eviction live state grows
        // linearly in days. With it, pairs retire and group ids drop out
        // while the final spans still match ground truth.
        let mut cfg = ts_population::PopulationConfig::new(41, 150);
        cfg.flakiness = 0.0;
        cfg.study_days = EVICTION_HORIZON_DAYS + 9;
        let ctx = Context::from_config(cfg);
        let campaign = ctx.campaign();
        assert!(campaign.days > EVICTION_HORIZON_DAYS);
        assert!(
            campaign.spans.stek.live_pairs() < campaign.spans.stek.pair_count(),
            "daily rotators must have retired pairs: live {} of {}",
            campaign.spans.stek.live_pairs(),
            campaign.spans.stek.pair_count()
        );
        assert!(
            campaign.stats.evicted_group_ids > 0,
            "group trackers never evicted"
        );
        // Peak live state is bounded by domains × horizon, not by
        // domain-days: the whole point of the streaming rewrite.
        assert!(
            (campaign.stats.peak_live_entries as u64) < campaign.stats.domain_days * 3,
            "peak {} vs domain-days {}",
            campaign.stats.peak_live_entries,
            campaign.stats.domain_days
        );
        let (checked, mismatches) = validate_against_truth(&ctx);
        assert!(checked > 5, "checked {checked}");
        assert_eq!(mismatches, 0, "eviction must not distort final spans");
    }
}
