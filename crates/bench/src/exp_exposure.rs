//! Figure 8 — overall vulnerability windows (§6.4).
//!
//! Combines the three mechanisms per domain: the STEK span (from the daily
//! campaign), the session-cache window (from lifetime probes), and the DH
//! reuse span. A domain's exposure is the maximum.

use crate::{Context, DAY, HOUR};
use ts_core::exposure::{ExposureKind, ExposureTable};
use ts_core::report::{compare_line, fmt_duration, pct, TextTable};
use ts_scanner::probe::ProbeSchedule;

/// Figure 8 output.
pub struct Fig8 {
    /// The combined exposure table.
    pub table: ExposureTable,
    /// (>24 h, >7 d, >30 d) fractions.
    pub headline: (f64, f64, f64),
    /// Rendered report.
    pub report: String,
}

/// Compute Figure 8. `probe_schedule` bounds the session-cache window
/// measurement (coarse steps are fine: windows cluster on config spikes).
pub fn fig8_exposure(ctx: &Context, probe_schedule: &ProbeSchedule) -> Fig8 {
    let campaign = ctx.campaign();
    let spans = crate::exp_campaign::spans(campaign);
    let mut table = ExposureTable::new();

    // Session tickets: the STEK's observed lifetime.
    for (domain, ds) in spans.stek.domain_spans() {
        table.record(&domain, ExposureKind::Ticket, ds.max_span_days * DAY);
    }
    // Diffie-Hellman reuse: value lifetime (either flavour).
    for (domain, ds) in spans.dhe.domain_spans() {
        if ds.max_span_days > 1 || ds.distinct_ids < ds.days_seen {
            table.record(&domain, ExposureKind::DhReuse, ds.max_span_days * DAY);
        }
    }
    for (domain, ds) in spans.ecdhe.domain_spans() {
        if ds.max_span_days > 1 || ds.distinct_ids < ds.days_seen {
            table.record(&domain, ExposureKind::DhReuse, ds.max_span_days * DAY);
        }
    }
    // Session caches: measured acceptance lifetime.
    let fig1 = crate::exp_lifetimes::fig1_session_id_lifetime(ctx, probe_schedule);
    for probe in &fig1.probes {
        if let Some(delay) = probe.max_delay {
            table.record(&probe.domain, ExposureKind::SessionCache, delay);
        }
    }

    let headline = table.headline_fractions();
    let cdf = table.combined_cdf();
    let mut report = String::new();
    report.push_str("Figure 8 — Overall Vulnerability Windows (combined CDF)\n");
    let mut t = TextTable::new(&["window ≤", "CDF"]);
    for bp in [
        5 * 60,
        HOUR,
        10 * HOUR,
        24 * HOUR,
        7 * DAY,
        30 * DAY,
        63 * DAY,
    ] {
        t.row(&[fmt_duration(bp), pct(cdf.fraction_le(bp))]);
    }
    report.push_str(&t.render());
    report.push('\n');
    report.push_str(&compare_line("window >24h", "38%", &pct(headline.0)));
    report.push('\n');
    report.push_str(&compare_line("window >7d", "22%", &pct(headline.1)));
    report.push('\n');
    report.push_str(&compare_line("window >30d", "10%", &pct(headline.2)));
    report.push('\n');
    let counts = table.dominant_counts();
    report.push_str(&format!(
        "dominant mechanism: tickets {} / caches {} / DH {} (paper: tickets dominate)\n",
        counts.get(&ExposureKind::Ticket).copied().unwrap_or(0),
        counts
            .get(&ExposureKind::SessionCache)
            .copied()
            .unwrap_or(0),
        counts.get(&ExposureKind::DhReuse).copied().unwrap_or(0),
    ));
    Fig8 {
        table,
        headline,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_headline_shape() {
        let mut cfg = ts_population::PopulationConfig::new(19, 400);
        cfg.flakiness = 0.0;
        cfg.study_days = 35;
        let ctx = Context::from_config(cfg);
        let fig = fig8_exposure(&ctx, &ProbeSchedule::coarse(2 * HOUR, 24 * HOUR));
        let (d1, d7, d30) = fig.headline;
        // The paper's ordering and rough magnitudes: a large >24h mass,
        // smaller >7d, smaller still >30d — all strictly positive.
        assert!(d1 > d7 && d7 > d30, "monotone: {d1} {d7} {d30}");
        assert!(d1 > 0.2 && d1 < 0.7, ">24h fraction {d1}");
        assert!(d30 > 0.02 && d30 < 0.35, ">30d fraction {d30}");
        // Tickets dominate the exposure (paper §6.1: "most worrisome").
        let counts = fig.table.dominant_counts();
        let tickets = counts.get(&ExposureKind::Ticket).copied().unwrap_or(0);
        let dh = counts.get(&ExposureKind::DhReuse).copied().unwrap_or(0);
        assert!(tickets > dh, "tickets {tickets} vs dh {dh}");
        assert!(fig.report.contains("Figure 8"));
    }
}
