//! Figures 1 and 2 — session-ID and session-ticket resumption lifetimes.
//!
//! Probe methodology per §4.1/§4.2: resume at 1 s, then on a fixed step
//! until failure or the 24-hour horizon. The step is configurable (the
//! paper used 5 minutes; coarser steps trade resolution for speed and
//! leave every discrete spike intact because server lifetimes cluster at
//! 3 m / 5 m / 1 h / 10 h / 18 h / 24 h).
//!
//! The experiment probes all domains in **delay-lockstep**: every domain
//! is probed at delay d before any domain is probed at the next delay.
//! Shared STEK managers advance monotonically in virtual time, so letting
//! one domain's probe sequence race 18 hours ahead of a sibling's would
//! prune retired keys out from under it nondeterministically.

use crate::{parallel_map, Context, HOUR};
use ts_core::cdf::Cdf;
use ts_core::observations::{ResumptionMechanism, ResumptionProbe};
use ts_core::report::{compare_line, fmt_duration, pct, TextTable};
use ts_population::Population;
use ts_scanner::probe::ProbeSchedule;
use ts_scanner::{GrabOptions, Scanner};
use ts_tls::server::ResumeKind;
use ts_tls::session::SessionState;

/// Results for one mechanism.
pub struct LifetimeFigure {
    /// All probes (supported or not).
    pub probes: Vec<ResumptionProbe>,
    /// CDF of max successful delays (resuming domains only), seconds.
    pub cdf: Cdf,
    /// Fraction of probed domains that indicated support.
    pub support_fraction: f64,
    /// Fraction that resumed at 1 s.
    pub resumed_1s_fraction: f64,
    /// Rendered report.
    pub report: String,
}

struct ProbeState {
    domain: String,
    // The ID and (encrypted) ticket blob are cleartext wire artifacts;
    // only `state` below carries the master secret.
    // ctlint: public
    session_id: Vec<u8>,
    // ctlint: public
    ticket: Option<Vec<u8>>,
    state: SessionState,
    hint: Option<u32>,
    supported: bool,
    resumed_1s: bool,
    max_delay: Option<u64>,
    alive: bool,
}

/// Run the lockstep probe experiment for one mechanism.
fn lockstep_probes(
    pop: &Population,
    domains: &[String],
    mechanism: ResumptionMechanism,
    t0: u64,
    schedule: &ProbeSchedule,
    label: &str,
) -> Vec<ResumptionProbe> {
    // Step 0: establish sessions everywhere at t0.
    let established: Vec<Option<ProbeState>> =
        parallel_map(domains, crate::default_workers(), |chunk_id, chunk| {
            let mut scanner = Scanner::new(pop, &format!("{label}-est-{chunk_id}"));
            chunk
                .iter()
                .map(|domain| {
                    let g = scanner.grab(domain, t0, &GrabOptions::new());
                    g.ok().map(|obs| {
                        let supported = match mechanism {
                            ResumptionMechanism::SessionId => !obs.session_id.is_empty(),
                            ResumptionMechanism::Ticket => obs.ticket.is_some(),
                        };
                        ProbeState {
                            domain: domain.clone(),
                            session_id: obs.session_id.clone(),
                            ticket: obs.ticket.as_ref().map(|n| n.ticket.clone()),
                            state: obs.session.clone(),
                            hint: obs.ticket.as_ref().map(|n| n.lifetime_hint),
                            supported,
                            resumed_1s: false,
                            max_delay: None,
                            alive: supported,
                        }
                    })
                })
                .collect()
        });
    let mut states: Vec<ProbeState> = established.into_iter().flatten().collect();

    // Probe every still-alive domain at each delay, in lockstep.
    for (step, delay) in schedule.delays().enumerate() {
        let alive_idx: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| i)
            .collect();
        if alive_idx.is_empty() {
            break;
        }
        let results: Vec<(usize, bool)> =
            parallel_map(&alive_idx, crate::default_workers(), |chunk_id, chunk| {
                let mut scanner = Scanner::new(pop, &format!("{label}-d{step}-{chunk_id}"));
                chunk
                    .iter()
                    .map(|&i| {
                        let s = &states[i];
                        let opts = match mechanism {
                            ResumptionMechanism::SessionId => GrabOptions::new()
                                .resume_session(s.session_id.clone(), s.state.clone()),
                            // Always the ORIGINAL ticket (§4.2).
                            ResumptionMechanism::Ticket => GrabOptions::new().resume_ticket(
                                s.ticket.clone().expect("alive implies ticket"),
                                s.state.clone(),
                            ),
                        };
                        let g = scanner.grab(&s.domain, t0 + delay, &opts);
                        let want = match mechanism {
                            ResumptionMechanism::SessionId => ResumeKind::SessionId,
                            ResumptionMechanism::Ticket => ResumeKind::Ticket,
                        };
                        let resumed = g.ok().map(|o| o.resumed == Some(want)).unwrap_or(false);
                        (i, resumed)
                    })
                    .collect()
            });
        for (i, resumed) in results {
            if resumed {
                if delay == schedule.first_delay() {
                    states[i].resumed_1s = true;
                }
                states[i].max_delay = Some(delay);
            } else {
                states[i].alive = false;
            }
        }
    }

    states
        .into_iter()
        .map(|s| ResumptionProbe {
            domain: s.domain,
            mechanism,
            supported: s.supported,
            resumed_at_1s: s.resumed_1s,
            max_delay: s.max_delay,
            lifetime_hint: match mechanism {
                ResumptionMechanism::Ticket => s.hint,
                ResumptionMechanism::SessionId => None,
            },
        })
        .collect()
}

fn render(
    title: &str,
    probes: &[ResumptionProbe],
    paper_rows: &[(&str, &str, u64)],
) -> LifetimeFigure {
    let total = probes.len().max(1);
    let supported = probes.iter().filter(|p| p.supported).count();
    let resumed = probes.iter().filter(|p| p.resumed_at_1s).count();
    let delays: Vec<u64> = probes.iter().filter_map(|p| p.max_delay).collect();
    let cdf = Cdf::from_samples(delays);
    let mut report = String::new();
    report.push_str(title);
    report.push('\n');
    let mut t = TextTable::new(&["resumption honoured ≤", "CDF (of resuming domains)"]);
    for bp in [
        60u64,
        5 * 60,
        30 * 60,
        HOUR,
        4 * HOUR,
        10 * HOUR,
        18 * HOUR,
        24 * HOUR,
    ] {
        t.row(&[fmt_duration(bp), pct(cdf.fraction_le(bp))]);
    }
    report.push_str(&t.render());
    report.push('\n');
    for (metric, paper, bp) in paper_rows {
        report.push_str(&compare_line(metric, paper, &pct(cdf.fraction_le(*bp))));
        report.push('\n');
    }
    report.push_str(&compare_line(
        "support (of probed)",
        "97% IDs / 79% tickets",
        &pct(supported as f64 / total as f64),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "resumed at 1s (of probed)",
        "83% IDs / 76% tickets",
        &pct(resumed as f64 / total as f64),
    ));
    report.push('\n');
    LifetimeFigure {
        probes: probes.to_vec(),
        cdf,
        support_fraction: supported as f64 / total as f64,
        resumed_1s_fraction: resumed as f64 / total as f64,
        report,
    }
}

/// Figure 1: session-ID lifetimes over the trusted core.
pub fn fig1_session_id_lifetime(ctx: &Context, schedule: &ProbeSchedule) -> LifetimeFigure {
    let pop = ctx.fresh_pop();
    let t0 = 86_400; // day 1 of the pristine world (the paper: April 27)
    let probes = lockstep_probes(
        &pop,
        &ctx.core_trusted,
        ResumptionMechanism::SessionId,
        t0,
        schedule,
        "fig1",
    );
    render(
        "Figure 1 — Session ID Lifetime",
        &probes,
        &[
            ("honoured ≤5min", "61%", 5 * 60),
            ("honoured ≤1h", "82%", HOUR),
        ],
    )
}

/// Figure 2: ticket lifetimes (original ticket retained across reissues).
pub fn fig2_ticket_lifetime(ctx: &Context, schedule: &ProbeSchedule) -> LifetimeFigure {
    let pop = ctx.fresh_pop();
    let t0 = 86_400;
    let probes = lockstep_probes(
        &pop,
        &ctx.core_trusted,
        ResumptionMechanism::Ticket,
        t0,
        schedule,
        "fig2",
    );
    let mut fig = render(
        "Figure 2 — Session Ticket Lifetime",
        &probes,
        &[
            ("honoured ≤5min", "67%", 5 * 60),
            ("honoured ≤1h", "76%", HOUR),
        ],
    );
    // The advertised-hint series the figure overlays.
    let hints: Vec<u64> = probes
        .iter()
        .filter_map(|p| p.lifetime_hint)
        .filter(|&h| h > 0)
        .map(|h| h as u64)
        .collect();
    let unspecified = probes.iter().filter(|p| p.lifetime_hint == Some(0)).count();
    let hint_cdf = Cdf::from_samples(hints);
    fig.report.push_str(&format!(
        "advertised hint: median {}, unspecified hints: {} domains (paper: 14,663 unspecified; \
         two domains hinted 90 days)\n",
        hint_cdf
            .median()
            .map(fmt_duration)
            .unwrap_or_else(|| "-".into()),
        unspecified,
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        let mut cfg = ts_population::PopulationConfig::new(13, 220);
        cfg.flakiness = 0.0;
        Context::from_config(cfg)
    }

    #[test]
    fn fig1_shape() {
        let ctx = ctx();
        // Coarse schedule keeps the test fast; spikes at 5m and 10h remain.
        let fig = fig1_session_id_lifetime(&ctx, &ProbeSchedule::coarse(30 * 60, 24 * HOUR));
        assert!(
            fig.support_fraction > 0.9,
            "support {}",
            fig.support_fraction
        );
        assert!(
            fig.resumed_1s_fraction > 0.6,
            "resumed {}",
            fig.resumed_1s_fraction
        );
        // The bulk of resuming domains honour ≤1h (Fig 1's left mass);
        // with a 30-minute step the 5-minute spike lands in the first bin.
        assert!(fig.cdf.fraction_le(HOUR) > 0.6);
        // A visible 10h (IIS) step: some domains survive past 4h.
        assert!(fig.cdf.fraction_ge(4 * HOUR) > 0.02);
        assert!(fig.report.contains("Figure 1"));
    }

    #[test]
    fn fig2_shape() {
        let ctx = ctx();
        let fig = fig2_ticket_lifetime(&ctx, &ProbeSchedule::coarse(30 * 60, 24 * HOUR));
        assert!(fig.support_fraction > 0.5);
        assert!(fig.cdf.fraction_le(HOUR) > 0.5, "left mass");
        assert!(fig.report.contains("advertised hint"));
        // The 18h cirrusflare step: mass between 10h and 19h.
        let step = fig.cdf.fraction_le(19 * HOUR) - fig.cdf.fraction_le(10 * HOUR);
        assert!(step > 0.0, "18h step visible");
    }

    #[test]
    fn lockstep_matches_sequential_probe() {
        // The lockstep driver must agree with the single-domain sequential
        // prober on an isolated world.
        let ctx = ctx();
        let schedule = ProbeSchedule::coarse(2 * HOUR, 12 * HOUR);
        let fig = fig1_session_id_lifetime(&ctx, &schedule);
        let lock: std::collections::HashMap<&str, Option<u64>> = fig
            .probes
            .iter()
            .map(|p| (p.domain.as_str(), p.max_delay))
            .collect();
        let pop = ctx.fresh_pop();
        let mut scanner = Scanner::new(&pop, "seq-check");
        for domain in ctx.core_trusted.iter().take(12) {
            let seq = ts_scanner::probe::probe_session_id(&mut scanner, domain, 86_400, &schedule);
            assert_eq!(
                lock.get(domain.as_str()).copied().flatten(),
                seq.max_delay,
                "{domain}"
            );
        }
    }
}
