//! Tables 5–7 and Figures 6–7 — cross-domain secret sharing.

use crate::{parallel_map, Context};
use std::collections::BTreeMap;
use ts_core::groups::{stats, top_groups, ServiceGroup};
use ts_core::report::{compare_line, fmt_duration, pct, TextTable};
use ts_core::treemap::{build_cells, red_cells, LongevityBucket};
use ts_scanner::crossdomain::{
    build_targets, dh_sharing_scan_streaming, session_cache_scan_streaming,
    stek_sharing_scan_streaming,
};
use ts_scanner::Scanner;

/// Output of one sharing experiment.
pub struct SharingResult {
    /// The inferred service groups (largest first).
    pub groups: Vec<ServiceGroup>,
    /// Rendered report.
    pub report: String,
}

fn render_groups(title: &str, groups: &[ServiceGroup], paper_note: &str) -> String {
    let s = stats(groups);
    let mut report = String::new();
    report.push_str(title);
    report.push('\n');
    let mut t = TextTable::new(&["Operator (inferred)", "# domains"]);
    for (label, size) in top_groups(groups, 10) {
        t.row(&[label, size.to_string()]);
    }
    report.push_str(&t.render());
    report.push('\n');
    report.push_str(&format!(
        "groups: {}  singletons: {} ({})  domains in shared groups: {}\n",
        s.group_count,
        s.singleton_count,
        pct(s.singleton_count as f64 / s.group_count.max(1) as f64),
        s.shared_domain_count,
    ));
    report.push_str(&format!("paper: {paper_note}\n"));
    report
}

/// Table 5 — largest session-cache service groups.
pub fn table5_cache_groups(ctx: &Context) -> SharingResult {
    let pop = ctx.fresh_pop();
    let scanner = Scanner::new(&pop, "t5-targets");
    let targets = build_targets(&scanner, &ctx.core_trusted);
    // Parallel over target chunks. Sibling sampling is chunk-local: the
    // builder lays operator domains out contiguously, so AS/IP siblings
    // overwhelmingly land in the same chunk — and the paper's method also
    // samples (≤5+5 per domain) rather than exhausting, so chunk-local
    // sampling tightens the same lower bound.
    // Each chunk folds its own edges straight into a chunk-local
    // union-find (edges are chunk-local by construction, see above); the
    // shard structures then merge in fixed chunk order, which interns
    // names and replays edges exactly as the old single global pass did.
    let shard_sets = parallel_map(&targets, crate::default_workers(), |chunk_id, chunk| {
        let mut scanner = Scanner::new(&pop, &format!("t5-{chunk_id}"));
        let mut ds = ts_core::unionfind::DisjointSets::new();
        for t in chunk {
            ds.add(&t.domain);
        }
        session_cache_scan_streaming(
            &mut scanner,
            chunk,
            86_400,
            5,
            |_| {},
            |e| ds.union(&e.a, &e.b),
        );
        vec![ds]
    });
    let mut ds = ts_core::unionfind::DisjointSets::new();
    for shard in shard_sets {
        ds.merge(shard);
    }
    let groups = ts_core::groups::finalize_groups(ds.groups());
    let report = render_groups(
        "Table 5 — Largest Session Cache Service Groups",
        &groups,
        "CloudFlare #1 30,163; CloudFlare #2 15,241; Automattic 2,247/1,552; Blogspot ~560-850 × 5; 86% singletons",
    );
    SharingResult { groups, report }
}

/// Table 6 — largest STEK service groups.
pub fn table6_stek_groups(ctx: &Context) -> SharingResult {
    // Connection-lockstep: all domains get connection k before any domain
    // gets connection k+1, so shared STEK managers advance uniformly.
    let pop = ctx.fresh_pop();
    let scanner = Scanner::new(&pop, "t6-targets");
    let targets = build_targets(&scanner, &ctx.core_trusted);
    let t0 = 86_400;
    let window = 6 * 3_600;
    let connections = 10u64;
    // Stream each connection round into an incremental group accumulator
    // instead of holding all eleven rounds of sightings at once: peak
    // memory is one round plus the live identifier index.
    let mut acc = ts_core::stream::GroupAcc::exact();
    for k in 0..=connections {
        // Connections 0..10 across the 6-hour window, plus the 30-minute
        // snapshot scan joined at the end (§5.2).
        let at = if k < connections {
            t0 + window * k / connections
        } else {
            t0 + window + 30 * 60
        };
        let step: Vec<ts_core::observations::TicketSighting> =
            parallel_map(&targets, crate::default_workers(), |chunk_id, chunk| {
                let mut scanner = Scanner::new(&pop, &format!("t6-{k}-{chunk_id}"));
                let mut s = Vec::new();
                stek_sharing_scan_streaming(&mut scanner, chunk, at, 0, 1, 0, |x| s.push(x));
                s
            });
        for s in step {
            acc.record(&s.domain, &s.stek_id, s.day);
        }
    }
    let groups = acc.service_groups();
    let report = render_groups(
        "Table 6 — Largest STEK Service Groups",
        &groups,
        "CloudFlare 62,176; Google 8,973; Automattic 4,182; TMall 3,305; Shopify 3,247; 83% singletons",
    );
    SharingResult { groups, report }
}

/// Table 7 — largest Diffie-Hellman service groups.
pub fn table7_dh_groups(ctx: &Context) -> SharingResult {
    let pop = ctx.fresh_pop();
    let scanner = Scanner::new(&pop, "t7-targets");
    let targets = build_targets(&scanner, &ctx.core_trusted);
    let t0 = 86_400;
    let window = 5 * 3_600;
    let connections = 10u64;
    // Same per-round streaming as Table 6: rounds drain into the
    // accumulator as they complete.
    let mut acc = ts_core::stream::GroupAcc::exact();
    for k in 0..connections {
        let at = t0 + window * k / connections;
        let step: Vec<ts_core::observations::KexSighting> =
            parallel_map(&targets, crate::default_workers(), |chunk_id, chunk| {
                let mut scanner = Scanner::new(&pop, &format!("t7-{k}-{chunk_id}"));
                let mut s = Vec::new();
                dh_sharing_scan_streaming(&mut scanner, chunk, at, 0, 1, |x| s.push(x));
                s
            });
        for s in step {
            acc.record(&s.domain, &s.value_fp, s.day);
        }
    }
    let groups = acc.service_groups();
    let report = render_groups(
        "Table 7 — Largest Diffie-Hellman Service Groups",
        &groups,
        "SquareSpace 1,627; LiveJournal 1,330; Jimdo 179/178; Hostway's DHE value on 137 domains; 99% singletons",
    );
    SharingResult { groups, report }
}

/// Figures 6 and 7 — group size × secret longevity.
pub fn fig6_fig7_treemaps(ctx: &Context) -> String {
    let campaign = ctx.campaign();
    let spans = crate::exp_campaign::spans(campaign);

    // STEK treemap (Figure 6): groups tracked incrementally during the
    // streaming campaign, coloured by per-domain max STEK span.
    let stek_groups = &campaign.stek_groups;
    let stek_longevity: BTreeMap<String, u64> = spans
        .stek
        .domain_spans()
        .into_iter()
        .map(|(d, s)| (d, s.max_span_days * 86_400))
        .collect();
    let stek_cells = build_cells(stek_groups, &stek_longevity, 2);

    // DH treemap (Figure 7 right).
    let dh_groups = &campaign.dh_groups;
    let mut dh_longevity: BTreeMap<String, u64> = BTreeMap::new();
    for (d, s) in spans.dhe.domain_spans() {
        dh_longevity.insert(d, s.max_span_days * 86_400);
    }
    for (d, s) in spans.ecdhe.domain_spans() {
        let secs = s.max_span_days * 86_400;
        dh_longevity
            .entry(d)
            .and_modify(|v| *v = (*v).max(secs))
            .or_insert(secs);
    }
    let dh_cells = build_cells(dh_groups, &dh_longevity, 2);

    let mut report = String::new();
    report.push_str("Figure 6 — STEK Sharing and Longevity (size × colour cells)\n");
    let mut t = TextTable::new(&["group", "size", "median span", "bucket"]);
    for cell in stek_cells.iter().take(12) {
        t.row(&[
            cell.label.clone(),
            cell.size.to_string(),
            fmt_duration(cell.median_longevity),
            cell.bucket.label().to_string(),
        ]);
    }
    report.push_str(&t.render());
    let red = red_cells(&stek_cells, 2);
    report.push_str(&format!(
        "\nsolid-red cells (≥30d shared STEKs): {} groups covering {} domains\n",
        red.len(),
        red.iter().map(|c| c.size).sum::<usize>(),
    ));
    report.push_str(
        "paper: the two largest groups (CloudFlare, Google) rotate daily; TMall and \
         Fastly are the big red blocks; a 79-domain bank cluster shares one 59-day STEK.\n\n",
    );

    report.push_str("Figure 7 — Session Caches (left) and Diffie-Hellman Reuse (right)\n");
    let mut t = TextTable::new(&["DH group", "size", "median span", "bucket"]);
    for cell in dh_cells.iter().take(10) {
        t.row(&[
            cell.label.clone(),
            cell.size.to_string(),
            fmt_duration(cell.median_longevity),
            cell.bucket.label().to_string(),
        ]);
    }
    report.push_str(&t.render());
    let red = red_cells(&dh_cells, 2);
    report.push_str(&format!(
        "\nred DH cells: {} (paper: Affinity Internet's 91-domain 62-day value; Jimdo's 19/17-day values)\n",
        red.len(),
    ));
    // Largest-bucket sanity note.
    let reds_exist = stek_cells
        .iter()
        .any(|c| c.bucket == LongevityBucket::Red30Plus);
    report.push_str(&compare_line(
        "≥30d shared-STEK groups exist",
        "yes (TMall, Fastly, banks)",
        if reds_exist { "yes" } else { "no" },
    ));
    report.push('\n');
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        let mut cfg = ts_population::PopulationConfig::new(17, 1200);
        cfg.flakiness = 0.002;
        cfg.study_days = 8;
        cfg.transient_frac = 0.1;
        Context::from_config(cfg)
    }

    #[test]
    fn sharing_experiments_shape() {
        let ctx = ctx();
        let t6 = table6_stek_groups(&ctx);
        // Largest STEK group is the CDN analogue and dwarfs the rest.
        assert!(
            t6.groups[0].label.contains("cirrusflare"),
            "{}",
            t6.groups[0].label
        );
        let cdn = t6.groups[0].size();
        assert!(cdn >= 40, "cdn group size {cdn}");
        let s6 = stats(&t6.groups);
        assert!(
            s6.singleton_count as f64 / s6.group_count as f64 > 0.5,
            "most groups singleton"
        );

        let t7 = table7_dh_groups(&ctx);
        // DH groups far smaller and fewer than STEK groups.
        assert!(
            t7.groups[0].size() < cdn,
            "DH sharing smaller than STEK sharing"
        );
        let s7 = stats(&t7.groups);
        assert!(
            s7.singleton_count as f64 / s7.group_count as f64
                > s6.singleton_count as f64 / s6.group_count as f64,
            "DH singleton rate exceeds STEK singleton rate"
        );

        let t5 = table5_cache_groups(&ctx);
        assert!(t5.groups[0].size() > 1, "some cache sharing found");
        assert!(t5.report.contains("Table 5"));

        let treemaps = fig6_fig7_treemaps(&ctx);
        assert!(treemaps.contains("Figure 6"));
        assert!(treemaps.contains("Figure 7"));
    }
}
