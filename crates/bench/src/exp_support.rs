//! Table 1 — Support for Forward Secrecy and Resumption.
//!
//! Three burst scans (DHE-only, ECDHE-only, browser-like for tickets) of
//! ten connections each, producing the paper's funnels: listed →
//! non-blacklisted → browser-trusted → supports offer → ≥2× same value →
//! all same value.

use crate::{parallel_map, Context};
use ts_core::report::{compare_line, pct, TextTable};
use ts_scanner::burst::{burst_scan_streaming, BurstFunnel, BurstMetric};
use ts_scanner::{Scanner, SuiteOffer};

/// The three funnels of Table 1.
pub struct Table1 {
    /// DHE funnel.
    pub dhe: BurstFunnel,
    /// ECDHE funnel.
    pub ecdhe: BurstFunnel,
    /// Session-ticket funnel.
    pub tickets: BurstFunnel,
    /// Rendered report.
    pub report: String,
}

fn merge(funnels: Vec<BurstFunnel>) -> BurstFunnel {
    let mut out = BurstFunnel::default();
    for f in funnels {
        out.listed += f.listed;
        out.non_blacklisted += f.non_blacklisted;
        out.trusted_tls += f.trusted_tls;
        out.supported += f.supported;
        out.repeat_twice += f.repeat_twice;
        out.all_same += f.all_same;
    }
    out
}

fn scan(
    pop: &ts_population::Population,
    label: &str,
    offer: SuiteOffer,
    metric: BurstMetric,
    day: u64,
) -> BurstFunnel {
    // Table 1 scans a single day's full list; we scan the stable core plus
    // that day's transients — the same composition.
    let domains = pop.churn.list_for_day(day);
    let now = day * 86_400 + 4 * 3_600;
    let funnels = parallel_map(&domains, crate::default_workers(), |chunk_id, chunk| {
        let mut scanner = Scanner::new(pop, &format!("{label}-{chunk_id}"));
        let chunk_vec: Vec<String> = chunk.to_vec();
        // Table 1 only needs the funnel: drop each per-domain summary at
        // the source instead of collecting a vector per chunk.
        let funnel = burst_scan_streaming(&mut scanner, &chunk_vec, now, offer, metric, 10, |_| {});
        vec![funnel]
    });
    merge(funnels)
}

/// Run the full Table 1 experiment (three scan days, like the paper's
/// April 14/15/17 scans — ascending days against a pristine world, since
/// virtual time in shared STEK managers only moves forward).
pub fn table1_support(ctx: &Context) -> Table1 {
    let pop = ctx.fresh_pop();
    let dhe = scan(
        &pop,
        "t1-dhe",
        SuiteOffer::DheOnly,
        BurstMetric::KexValues,
        1,
    );
    let ecdhe = scan(
        &pop,
        "t1-ecdhe",
        SuiteOffer::EcdheOnly,
        BurstMetric::KexValues,
        2,
    );
    let tickets = scan(&pop, "t1-tickets", SuiteOffer::All, BurstMetric::StekIds, 4);

    let mut report = String::new();
    report
        .push_str("Table 1 — Support for Forward Secrecy and Resumption (10-connection bursts)\n");
    let mut t = TextTable::new(&["funnel row", "DHE", "ECDHE", "Tickets"]);
    let rows: [(&str, fn(&BurstFunnel) -> usize); 6] = [
        ("domains listed", |f| f.listed),
        ("non-blacklisted", |f| f.non_blacklisted),
        ("browser-trusted TLS", |f| f.trusted_tls),
        ("support offer / issue tickets", |f| f.supported),
        ("≥2x same value / STEK id", |f| f.repeat_twice),
        ("all same value / STEK id", |f| f.all_same),
    ];
    for (label, get) in rows {
        t.row(&[
            label.to_string(),
            get(&dhe).to_string(),
            get(&ecdhe).to_string(),
            get(&tickets).to_string(),
        ]);
    }
    report.push_str(&t.render());
    report.push('\n');
    let frac = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    report.push_str(&compare_line(
        "DHE support (of trusted)",
        "59%",
        &pct(frac(dhe.supported, dhe.trusted_tls)),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "ECDHE support (of trusted)",
        "89%",
        &pct(frac(ecdhe.supported, ecdhe.trusted_tls)),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "issue tickets (of trusted)",
        "81.5%",
        &pct(frac(tickets.supported, tickets.trusted_tls)),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "DHE burst reuse (of supporters)",
        "7.2%",
        &pct(frac(dhe.repeat_twice, dhe.supported)),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "ECDHE burst reuse (of supporters)",
        "15.5%",
        &pct(frac(ecdhe.repeat_twice, ecdhe.supported)),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "same STEK id within burst (of issuers)",
        "99.6%",
        &pct(frac(tickets.repeat_twice, tickets.supported)),
    ));
    report.push('\n');
    Table1 {
        dhe,
        ecdhe,
        tickets,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_hold() {
        // Large enough that the long tail dominates the notables (their
        // per-domain reuse policies would otherwise skew the rates).
        let mut cfg = ts_population::PopulationConfig::new(8, 1500);
        cfg.flakiness = 0.002;
        cfg.transient_frac = 0.1;
        let ctx = Context::from_config(cfg);
        let t1 = table1_support(&ctx);
        // Funnels decrease.
        for f in [&t1.dhe, &t1.ecdhe, &t1.tickets] {
            assert!(f.listed >= f.non_blacklisted);
            assert!(f.non_blacklisted >= f.trusted_tls);
            assert!(f.trusted_tls >= f.supported);
            assert!(f.supported >= f.repeat_twice);
            assert!(f.repeat_twice >= f.all_same);
        }
        // Orderings the paper reports.
        assert!(t1.ecdhe.supported > t1.dhe.supported, "ECDHE support > DHE");
        assert!(
            t1.tickets.supported > t1.dhe.supported,
            "tickets widespread"
        );
        // Within-burst STEK repetition near-universal; KEX reuse rare.
        let stek_rate = t1.tickets.repeat_twice as f64 / t1.tickets.supported.max(1) as f64;
        let dhe_rate = t1.dhe.repeat_twice as f64 / t1.dhe.supported.max(1) as f64;
        assert!(stek_rate > 0.85, "stek burst repetition {stek_rate}");
        assert!(dhe_rate < 0.30, "dhe burst reuse {dhe_rate}");
        assert!(t1.report.contains("Table 1"));
    }
}
