//! §7.2 — the nation-state target analysis, plus the §6.1 end-to-end
//! decryption demonstration on live captures.

use crate::Context;
use ts_attacker::passive::CapturedConnection;
use ts_attacker::stek::{bulk_decrypt, decrypt_with_stolen_steks};
use ts_attacker::target::analyze_goggle;
use ts_core::report::{compare_line, TextTable};
use ts_crypto::drbg::HmacDrbg;
use ts_scanner::Scanner;
use ts_tls::config::ClientConfig;
use ts_tls::pump::pump_app_data;
use ts_tls::{ClientConn, ServerConn};

/// Run the Google-analogue target analysis.
pub fn google_target_analysis(ctx: &Context) -> String {
    // The STEK service group for goggle, from ground truth membership
    // (the live scan version is exp_sharing::table6).
    let members: Vec<String> = {
        let mut v: Vec<String> = ctx
            .pop
            .truth
            .iter()
            .filter(|t| t.operator.as_deref() == Some("goggle"))
            .map(|t| t.name.clone())
            .collect();
        v.sort();
        v
    };
    let group = ts_core::groups::ServiceGroup {
        label: "goggle".into(),
        members,
    };
    let analysis = analyze_goggle(&ctx.pop, &group);
    let mut report = String::new();
    report.push_str("§7.2 — Target Analysis: the Google analogue\n");
    let mut t = TextTable::new(&["metric", "value"]);
    t.row(&[
        "rotation period".into(),
        ts_core::report::fmt_duration(analysis.rotation_period),
    ]);
    t.row(&[
        "acceptance window (rotation + overlap)".into(),
        ts_core::report::fmt_duration(analysis.rotation_period + analysis.acceptance_window),
    ]);
    t.row(&[
        "keys to steal per day".into(),
        format!("{:.2}", analysis.keys_per_day),
    ]);
    t.row(&[
        "web domains behind one STEK".into(),
        analysis.stek_domains.to_string(),
    ]);
    t.row(&[
        "hosted-mail domains (MX census)".into(),
        analysis.mx_domains.to_string(),
    ]);
    report.push_str(&t.render());
    report.push('\n');
    let per_28h = analysis.keys_per_day * 28.0 / 24.0;
    report.push_str(&compare_line(
        "keys per 28 hours",
        "2 (two 16-byte keys)",
        &format!("{per_28h:.2}"),
    ));
    report.push('\n');
    let mx_rate = analysis.mx_domains as f64 / ctx.pop.churn.unique_domains() as f64;
    report.push_str(&compare_line(
        "domains with provider MX",
        "9.1%",
        &ts_core::report::pct(mx_rate),
    ));
    report.push('\n');
    report.push_str(&analysis.summary());
    report.push('\n');
    report
}

/// The §6.1 demonstration: capture "forward-secret" connections to a
/// never-rotating operator, steal its one STEK, decrypt everything.
/// Returns the report; panics only on simulation bugs.
pub fn stek_theft_demo(ctx: &Context) -> String {
    // A pristine world: the demo owns its timeline (capture days 0-7,
    // compromise at day 30).
    let pop = ctx.fresh_pop();
    // Victim: the Fastly analogue (static STEK across the whole study).
    let victim = pop
        .truth
        .iter()
        .find(|t| t.operator.as_deref() == Some("fastlane"))
        .expect("fastlane domains exist")
        .name
        .clone();
    let ip = {
        let mut rng = HmacDrbg::from_seed_label(pop.config.seed, "demo-dns");
        pop.dns.resolve(&victim, &mut rng).expect("resolves")
    };

    // Passively record a week of connections (one per day).
    let mut captures = Vec::new();
    let mut rng = HmacDrbg::from_seed_label(pop.config.seed, "demo-traffic");
    for day in 0..7u64 {
        let now = day * 86_400 + 9 * 3_600;
        let cfg = ClientConfig::new(pop.root_store.clone(), &victim, now);
        let conn = match pop.net.connect(ip, cfg, now, &mut rng) {
            Ok(c) => c,
            Err(_) => continue, // flaky day
        };
        let mut client: ClientConn = conn.client;
        let mut server: ServerConn = conn.server;
        let mut capture = conn.capture;
        client
            .send_app_data(format!("GET /secrets?day={day}").as_bytes())
            .expect("established");
        pump_app_data(&mut client, &mut server, &mut capture).expect("data");
        server
            .send_app_data(format!("top secret payload {day}").as_bytes())
            .expect("established");
        pump_app_data(&mut client, &mut server, &mut capture).expect("data");
        captures.push(CapturedConnection::parse(&capture).expect("parse"));
    }

    // Day 30: compromise the terminator once; steal the STEK.
    let scanner = Scanner::new(&pop, "demo-locate");
    let _ = scanner; // (a real attacker would locate the pod by STEK id)
    let pod = pop
        .terminators
        .iter()
        .find(|t| t.domains().contains(&victim))
        .expect("victim pod");
    let stolen = pod.stek.as_ref().expect("tickets enabled").steal_keys();

    let recovered = bulk_decrypt(&captures, &stolen);
    let mut report = String::new();
    report.push_str("§6.1 — STEK Theft Demonstration (Fastly analogue, static STEK)\n");
    report.push_str(&format!(
        "captured connections: {}  stolen keys: {}  decrypted: {}\n",
        captures.len(),
        stolen.len(),
        recovered.len(),
    ));
    for (i, r) in recovered.iter().take(3) {
        report.push_str(&format!(
            "  conn {}: client sent {:?}, server sent {:?}\n",
            i,
            String::from_utf8_lossy(&r.client_to_server),
            String::from_utf8_lossy(&r.server_to_client),
        ));
    }
    report.push_str(&compare_line(
        "week-old PFS traffic decrypted with one 16-byte key",
        "yes (§6.1)",
        if recovered.len() == captures.len() {
            "yes — all of it"
        } else {
            "partially"
        },
    ));
    report.push('\n');

    // Contrast: a daily-rotating operator's old traffic survives.
    let rotator = pop
        .truth
        .iter()
        .find(|t| t.operator.as_deref() == Some("cirrusflare"))
        .expect("cdn domains")
        .name
        .clone();
    let rot_ip = {
        let mut rng = HmacDrbg::from_seed_label(pop.config.seed, "demo-dns2");
        pop.dns.resolve(&rotator, &mut rng).expect("resolves")
    };
    let mut rot_capture = None;
    for attempt in 0..5 {
        let now = 9 * 3_600 + attempt;
        let cfg = ClientConfig::new(pop.root_store.clone(), &rotator, now);
        if let Ok(conn) = pop.net.connect(rot_ip, cfg, now, &mut rng) {
            rot_capture = Some(CapturedConnection::parse(&conn.capture).expect("parse"));
            break;
        }
    }
    if let Some(cap) = rot_capture {
        // Compromise 30 days later: the issuing key is long gone.
        let rot_pod = pop
            .terminators
            .iter()
            .find(|t| t.domains().contains(&rotator))
            .expect("pod");
        rot_pod
            .stek
            .as_ref()
            .expect("tickets")
            .active_key_name_at(30 * 86_400); // advance rotation to day 30
        let stolen_late = rot_pod.stek.as_ref().expect("tickets").steal_keys();
        let outcome = decrypt_with_stolen_steks(&cap, &stolen_late);
        report.push_str(&compare_line(
            "daily-rotating CDN, key stolen 30 days later",
            "traffic safe",
            if outcome.is_err() {
                "traffic safe — no key matches"
            } else {
                "DECRYPTED (bug!)"
            },
        ));
        report.push('\n');
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        let mut cfg = ts_population::PopulationConfig::new(29, 900);
        cfg.flakiness = 0.002;
        Context::from_config(cfg)
    }

    #[test]
    fn google_analysis_report() {
        let ctx = ctx();
        let report = google_target_analysis(&ctx);
        assert!(report.contains("keys per 28 hours"));
        // 14h rotation → 2 keys per 28h.
        assert!(report.contains("2.00"), "{report}");
        assert!(report.contains("MX"));
    }

    #[test]
    fn stek_theft_demo_decrypts_and_contrast_holds() {
        let ctx = ctx();
        let report = stek_theft_demo(&ctx);
        assert!(report.contains("yes — all of it"), "{report}");
        assert!(report.contains("traffic safe — no key matches"), "{report}");
    }
}
