//! §2.4 / §8.1 — the TLS 1.3 outlook, made quantitative.
//!
//! Draft-15 TLS 1.3 (current during the study) folds both resumption
//! mechanisms into pre-shared keys and caps PSK lifetime at 7 days —
//! "without discussion", as §8.1 notes. This experiment asks the paper's
//! question of the *new* protocol: if every domain kept its measured STEK
//! behaviour but spoke TLS 1.3, what would a stolen resumption secret (or
//! the STEK protecting self-contained PSKs) still decrypt?
//!
//! Modelled outcome per §2.4's mechanisms:
//! * `psk_ke` resumptions — application data falls with the PSK;
//! * `psk_dhe_ke` resumptions — application data survives (fresh DHE),
//!   but 0-RTT early data still falls;
//! * the 7-day cap bounds the window that tickets stretched to months.

use crate::{Context, DAY};
use ts_core::report::{compare_line, fmt_duration, pct, TextTable};
use ts_crypto::drbg::HmacDrbg;
use ts_tls::tls13::{
    attacker_recoverable, derive_resumption_secret, resume, PskIdentityKind, PskMode,
    MAX_PSK_LIFETIME,
};

/// Run the TLS 1.3 what-if analysis over the measured STEK spans.
pub fn tls13_outlook(ctx: &Context) -> String {
    let campaign = ctx.campaign();
    let spans = crate::exp_campaign::spans(campaign);
    let stek_spans = spans.stek.domain_spans();

    // For each ticket-issuing domain: its TLS 1.2 window (measured STEK
    // span) vs its TLS 1.3 window (capped at 7 days), and what a PSK thief
    // gets under each key-establishment mode.
    let mut rng = HmacDrbg::from_seed_label(ctx.config.seed, "tls13-outlook");
    let mut tls12_windows = Vec::new();
    let mut tls13_windows = Vec::new();
    let mut psk_ke_falls = 0usize;
    let mut psk_dhe_traffic_falls = 0usize;
    let mut early_data_falls = 0usize;
    let mut total = 0usize;
    for (domain, ds) in &stek_spans {
        let tls12_window = ds.max_span_days * DAY;
        let tls13_window = tls12_window.min(MAX_PSK_LIFETIME);
        tls12_windows.push(tls12_window);
        tls13_windows.push(tls13_window);

        // Model one recorded resumption per domain under each mode, with
        // 0-RTT on (the latency-driven default the paper worries about).
        let mut master = [0u8; 48];
        rng.fill_bytes(&mut master);
        let mut th = [0u8; 32];
        rng.fill_bytes(&mut th);
        let psk = derive_resumption_secret(
            &master,
            &th,
            0,
            tls13_window,
            PskIdentityKind::SelfContained,
        );
        let at = tls13_window.min(DAY); // resumption within the window
        if let Ok(r) = resume(&psk, PskMode::PskKe, true, at, &mut rng) {
            let rec = attacker_recoverable(&psk, &r);
            if rec.traffic_decryptable {
                psk_ke_falls += 1;
            }
            if rec.early_data_decryptable {
                early_data_falls += 1;
            }
        }
        if let Ok(r) = resume(&psk, PskMode::PskDheKe, true, at, &mut rng) {
            let rec = attacker_recoverable(&psk, &r);
            if rec.traffic_decryptable {
                psk_dhe_traffic_falls += 1;
            }
        }
        total += 1;
        let _ = domain;
    }

    let cdf12 = ts_core::cdf::Cdf::from_samples(tls12_windows);
    let cdf13 = ts_core::cdf::Cdf::from_samples(tls13_windows);
    let mut report = String::new();
    report
        .push_str("§8.1 — TLS 1.3 PSK Outlook (measured STEK behaviour replayed under draft-15)\n");
    let mut t = TextTable::new(&["metric", "TLS 1.2 (measured)", "TLS 1.3 (7-day PSK cap)"]);
    t.row(&[
        "ticket window > 24h".into(),
        pct(cdf12.fraction_ge(DAY + 1)),
        pct(cdf13.fraction_ge(DAY + 1)),
    ]);
    t.row(&[
        "ticket window > 7d".into(),
        pct(cdf12.fraction_ge(7 * DAY + 1)),
        pct(cdf13.fraction_ge(7 * DAY + 1)),
    ]);
    t.row(&[
        "ticket window > 30d".into(),
        pct(cdf12.fraction_ge(30 * DAY + 1)),
        pct(cdf13.fraction_ge(30 * DAY + 1)),
    ]);
    t.row(&[
        "median window".into(),
        cdf12.median().map(fmt_duration).unwrap_or_default(),
        cdf13.median().map(fmt_duration).unwrap_or_default(),
    ]);
    report.push_str(&t.render());
    report.push('\n');
    report.push_str(&compare_line(
        "psk_ke traffic falls to a stolen PSK",
        "by construction",
        &pct(psk_ke_falls as f64 / total.max(1) as f64),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "psk_dhe_ke traffic falls to a stolen PSK",
        "0% (fresh DHE)",
        &pct(psk_dhe_traffic_falls as f64 / total.max(1) as f64),
    ));
    report.push('\n');
    report.push_str(&compare_line(
        "0-RTT early data falls (either mode)",
        "100%",
        &pct(early_data_falls as f64 / total.max(1) as f64),
    ));
    report.push('\n');
    report.push_str(
        "→ the 7-day cap removes the months-long tail but still leaves every\n\
         psk_ke resumption and all 0-RTT data exposed for up to a week —\n\
         §8.1's warning that 7-day PSKs \"may be a significant risk for\n\
         high-value domains\", quantified.\n",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlook_caps_windows_and_separates_modes() {
        let mut cfg = ts_population::PopulationConfig::new(37, 250);
        cfg.flakiness = 0.0;
        cfg.study_days = 12;
        let ctx = Context::from_config(cfg);
        let report = tls13_outlook(&ctx);
        assert!(report.contains("TLS 1.3"));
        // The mode split is absolute.
        assert!(report.contains("psk_ke traffic falls"));
        assert!(
            report.contains("psk_dhe_ke traffic falls to a stolen PSK          paper: 0% (fresh DHE)  measured: 0.0%")
                || report.contains("measured: 0.0%"),
            "{report}"
        );
        assert!(report.contains("100.0%"), "psk_ke and 0-RTT fall: {report}");
    }
}
