//! # ts-bench — the experiment harness
//!
//! One function per paper artefact (Tables 1–7, Figures 1–8, the §7.2
//! target analysis), shared between the `repro` binary and the Criterion
//! benches. Every experiment runs against a seeded [`Context`] and returns
//! both structured results and a rendered report with paper-vs-measured
//! columns.
//!
//! The heavyweight scans (daily campaign, burst scans, probes) fan out
//! across threads with crossbeam; results are deterministic for a fixed
//! (seed, size, worker-partitioning) triple because every worker derives
//! its DRBG from its chunk index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_smoke;
pub mod exp_ablation;
pub mod exp_campaign;
pub mod exp_exposure;
pub mod exp_lifetimes;
pub mod exp_sharing;
pub mod exp_support;
pub mod exp_target;
pub mod exp_tls13;

use std::sync::OnceLock;
use ts_population::{Population, PopulationConfig};

/// Seconds per day.
pub const DAY: u64 = 86_400;
/// Seconds per hour.
pub const HOUR: u64 = 3_600;

/// A built world plus lazily computed shared artefacts.
///
/// Simulated virtual time only moves forward inside a `Population` (STEK
/// managers rotate monotonically), so experiments that scan *different*
/// virtual time windows must not share one mutable world: each experiment
/// builds its own via [`Context::fresh_pop`] — byte-identical, since the
/// build is a pure function of the config.
pub struct Context {
    /// The population config every experiment world is built from.
    pub config: PopulationConfig,
    /// A read-mostly reference world (ground truth, DNS, ranks).
    pub pop: Population,
    /// Browser-trusted stable-core domains (the paper's 291,643 analogue).
    pub core_trusted: Vec<String>,
    campaign: OnceLock<exp_campaign::Campaign>,
}

impl Context {
    /// Build a context at the given scale.
    pub fn new(seed: u64, size: usize) -> Self {
        Self::from_config(PopulationConfig::new(seed, size))
    }

    /// Build with a custom population config.
    pub fn from_config(cfg: PopulationConfig) -> Self {
        let pop = Population::build(cfg.clone());
        let core_trusted = pop.core_trusted();
        Context {
            config: cfg,
            pop,
            core_trusted,
            campaign: OnceLock::new(),
        }
    }

    /// A pristine, byte-identical world for one experiment's exclusive use.
    pub fn fresh_pop(&self) -> Population {
        Population::build(self.config.clone())
    }

    /// The shared 63-day campaign (run once, reused by Figures 3–5 and
    /// Tables 2–4).
    pub fn campaign(&self) -> &exp_campaign::Campaign {
        self.campaign
            .get_or_init(|| exp_campaign::run_daily_campaign(self))
    }
}

// The fan-out primitives moved to ts-core so every crate (and the
// telemetry determinism tests) can share them; re-exported here for
// source compatibility with existing callers.
pub use ts_core::par::{default_workers, parallel_map};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_caches_campaign() {
        let ctx = Context::new(3, 200);
        assert!(!ctx.core_trusted.is_empty());
        let c1 = ctx.campaign() as *const _;
        let c2 = ctx.campaign() as *const _;
        assert_eq!(c1, c2, "campaign computed once");
    }
}
