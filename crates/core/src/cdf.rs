//! Empirical CDFs for the paper's figures.

/// An empirical cumulative distribution over `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<u64>,
}

impl Cdf {
    /// Build from samples (any order).
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` (the CDF value). 0.0 for empty.
    pub fn fraction_le(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples ≥ `x` (the survival function at x).
    pub fn fraction_ge(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let below = self.sorted.partition_point(|&v| v < x);
        (self.sorted.len() - below) as f64 / self.sorted.len() as f64
    }

    /// Count of samples ≥ `x`.
    pub fn count_ge(&self, x: u64) -> usize {
        let below = self.sorted.partition_point(|&v| v < x);
        self.sorted.len() - below
    }

    /// Quantile (0.0..=1.0) by nearest-rank. None if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Median by nearest rank.
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// The CDF evaluated at each breakpoint: `(x, fraction ≤ x)` rows —
    /// the series a figure plots.
    pub fn series(&self, breakpoints: &[u64]) -> Vec<(u64, f64)> {
        breakpoints
            .iter()
            .map(|&x| (x, self.fraction_le(x)))
            .collect()
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<u64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<u64> {
        self.sorted.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_on_small_set() {
        let c = Cdf::from_samples(vec![1, 2, 2, 3, 10]);
        assert_eq!(c.len(), 5);
        assert!((c.fraction_le(0) - 0.0).abs() < 1e-12);
        assert!((c.fraction_le(1) - 0.2).abs() < 1e-12);
        assert!((c.fraction_le(2) - 0.6).abs() < 1e-12);
        assert!((c.fraction_le(100) - 1.0).abs() < 1e-12);
        assert!((c.fraction_ge(2) - 0.8).abs() < 1e-12);
        assert!((c.fraction_ge(11) - 0.0).abs() < 1e-12);
        assert_eq!(c.count_ge(3), 2);
    }

    #[test]
    fn quantiles_and_median() {
        let c = Cdf::from_samples(vec![10, 20, 30, 40, 50]);
        assert_eq!(c.median(), Some(30));
        assert_eq!(c.quantile(0.0), Some(10));
        assert_eq!(c.quantile(1.0), Some(50));
        assert_eq!(c.quantile(0.2), Some(10));
        assert_eq!(c.quantile(0.21), Some(20));
        let even = Cdf::from_samples(vec![1, 2, 3, 4]);
        assert_eq!(even.median(), Some(2), "nearest rank");
    }

    #[test]
    fn empty_cdf_behaviour() {
        let c = Cdf::from_samples(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_le(5), 0.0);
        assert_eq!(c.fraction_ge(5), 0.0);
        assert_eq!(c.median(), None);
        assert_eq!(c.min(), None);
        assert_eq!(c.series(&[1, 2]), vec![(1, 0.0), (2, 0.0)]);
    }

    #[test]
    fn monotone_nondecreasing_series() {
        let c = Cdf::from_samples(vec![5, 1, 9, 2, 2, 7, 100, 0]);
        let series = c.series(&[0, 1, 2, 3, 5, 7, 9, 50, 100, 1000]);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone: {series:?}");
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn le_and_ge_partition() {
        let c = Cdf::from_samples(vec![1, 3, 3, 8]);
        for x in 0..10 {
            let le = c.fraction_le(x);
            let gt = 1.0 - le;
            let ge_next = c.fraction_ge(x + 1);
            assert!((gt - ge_next).abs() < 1e-12, "x={x}");
        }
    }
}
