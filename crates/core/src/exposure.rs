//! Vulnerability windows and combined exposure (§6, Figure 8).
//!
//! A domain's *vulnerability window* is the span of time during which an
//! attacker who obtains the server's stored secrets can decrypt an
//! observed, nominally forward-secret connection. Each shortcut
//! contributes its own window; the domain's overall exposure is the
//! maximum (§6.4).

use crate::cdf::Cdf;
use std::collections::BTreeMap;

/// Which shortcut created a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExposureKind {
    /// Session tickets: the STEK's observed lifetime.
    Ticket,
    /// Session caches: the measured resumption-acceptance lifetime.
    SessionCache,
    /// Ephemeral value reuse: the value's observed lifetime.
    DhReuse,
}

/// One domain's windows (seconds) per mechanism.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DomainExposure {
    /// STEK window, seconds.
    pub ticket_window: Option<u64>,
    /// Session-cache window, seconds.
    pub cache_window: Option<u64>,
    /// DH-reuse window, seconds.
    pub dh_window: Option<u64>,
}

impl DomainExposure {
    /// The combined (maximum) window, if any mechanism is present.
    pub fn max_window(&self) -> Option<u64> {
        [self.ticket_window, self.cache_window, self.dh_window]
            .into_iter()
            .flatten()
            .max()
    }

    /// Which mechanism dominates.
    pub fn dominant(&self) -> Option<ExposureKind> {
        let max = self.max_window()?;
        if self.ticket_window == Some(max) {
            Some(ExposureKind::Ticket)
        } else if self.cache_window == Some(max) {
            Some(ExposureKind::SessionCache)
        } else {
            Some(ExposureKind::DhReuse)
        }
    }
}

/// Accumulates per-domain windows from the separate analyses.
#[derive(Debug, Default)]
pub struct ExposureTable {
    // Ordered: `combined_cdf` and `dominant_counts` iterate this map and
    // feed Figure 8 directly, so visit order must be seed-independent.
    domains: BTreeMap<String, DomainExposure>,
}

impl ExposureTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a window (keeps the max per mechanism).
    pub fn record(&mut self, domain: &str, kind: ExposureKind, window_secs: u64) {
        let e = self.domains.entry(domain.to_string()).or_default();
        let slot = match kind {
            ExposureKind::Ticket => &mut e.ticket_window,
            ExposureKind::SessionCache => &mut e.cache_window,
            ExposureKind::DhReuse => &mut e.dh_window,
        };
        *slot = Some(slot.map_or(window_secs, |cur| cur.max(window_secs)));
    }

    /// Fold another table into this one — the shard-merge law for
    /// exposure windows: per domain and mechanism, keep the maximum.
    /// Associative and commutative, so shard merge order cannot matter.
    pub fn merge(&mut self, other: ExposureTable) {
        for (domain, e) in other.domains {
            let mine = self.domains.entry(domain).or_default();
            for (slot, theirs) in [
                (&mut mine.ticket_window, e.ticket_window),
                (&mut mine.cache_window, e.cache_window),
                (&mut mine.dh_window, e.dh_window),
            ] {
                if let Some(w) = theirs {
                    *slot = Some(slot.map_or(w, |cur| cur.max(w)));
                }
            }
        }
    }

    /// Look up one domain.
    pub fn get(&self, domain: &str) -> Option<&DomainExposure> {
        self.domains.get(domain)
    }

    /// Number of domains with any recorded window.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// The combined-exposure CDF over all recorded domains (Figure 8).
    pub fn combined_cdf(&self) -> Cdf {
        Cdf::from_samples(
            self.domains
                .values()
                .filter_map(|e| e.max_window())
                .collect(),
        )
    }

    /// Fractions exceeding the paper's headline thresholds:
    /// (>24 h, >7 d, >30 d).
    pub fn headline_fractions(&self) -> (f64, f64, f64) {
        let cdf = self.combined_cdf();
        if cdf.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let day = 86_400;
        (
            cdf.fraction_ge(24 * 3_600 + 1),
            cdf.fraction_ge(7 * day + 1),
            cdf.fraction_ge(30 * day + 1),
        )
    }

    /// Count of domains whose dominant mechanism is `kind`.
    pub fn dominant_counts(&self) -> BTreeMap<ExposureKind, usize> {
        let mut out = BTreeMap::new();
        for e in self.domains.values() {
            if let Some(k) = e.dominant() {
                *out.entry(k).or_insert(0) += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400;

    #[test]
    fn max_window_combines_mechanisms() {
        let mut t = ExposureTable::new();
        t.record("a.sim", ExposureKind::Ticket, 10 * DAY);
        t.record("a.sim", ExposureKind::SessionCache, 300);
        t.record("a.sim", ExposureKind::DhReuse, 2 * DAY);
        let e = t.get("a.sim").unwrap();
        assert_eq!(e.max_window(), Some(10 * DAY));
        assert_eq!(e.dominant(), Some(ExposureKind::Ticket));
    }

    #[test]
    fn record_keeps_maximum() {
        let mut t = ExposureTable::new();
        t.record("a.sim", ExposureKind::Ticket, 100);
        t.record("a.sim", ExposureKind::Ticket, 50);
        assert_eq!(t.get("a.sim").unwrap().ticket_window, Some(100));
        t.record("a.sim", ExposureKind::Ticket, 200);
        assert_eq!(t.get("a.sim").unwrap().ticket_window, Some(200));
    }

    #[test]
    fn empty_domain_exposure() {
        let e = DomainExposure::default();
        assert_eq!(e.max_window(), None);
        assert_eq!(e.dominant(), None);
    }

    #[test]
    fn headline_fractions_shape() {
        let mut t = ExposureTable::new();
        // 10 domains: 4 short, 3 at 2 days, 2 at 10 days, 1 at 40 days.
        for i in 0..4 {
            t.record(&format!("s{i}.sim"), ExposureKind::SessionCache, 300);
        }
        for i in 0..3 {
            t.record(&format!("m{i}.sim"), ExposureKind::Ticket, 2 * DAY);
        }
        for i in 0..2 {
            t.record(&format!("l{i}.sim"), ExposureKind::Ticket, 10 * DAY);
        }
        t.record("x.sim", ExposureKind::DhReuse, 40 * DAY);
        let (d1, d7, d30) = t.headline_fractions();
        assert!((d1 - 0.6).abs() < 1e-9, ">24h = 6/10, got {d1}");
        assert!((d7 - 0.3).abs() < 1e-9, ">7d = 3/10, got {d7}");
        assert!((d30 - 0.1).abs() < 1e-9, ">30d = 1/10, got {d30}");
    }

    #[test]
    fn boundary_is_strictly_greater() {
        let mut t = ExposureTable::new();
        t.record("exact.sim", ExposureKind::Ticket, DAY); // exactly 24h
        let (d1, _, _) = t.headline_fractions();
        assert_eq!(d1, 0.0, "exactly 24h is not >24h");
    }

    #[test]
    fn dominant_counts() {
        let mut t = ExposureTable::new();
        t.record("a.sim", ExposureKind::Ticket, 100);
        t.record("b.sim", ExposureKind::SessionCache, 100);
        t.record("c.sim", ExposureKind::SessionCache, 100);
        let counts = t.dominant_counts();
        assert_eq!(counts.get(&ExposureKind::Ticket), Some(&1));
        assert_eq!(counts.get(&ExposureKind::SessionCache), Some(&2));
        assert_eq!(counts.get(&ExposureKind::DhReuse), None);
    }

    #[test]
    fn combined_cdf_over_table() {
        let mut t = ExposureTable::new();
        t.record("a.sim", ExposureKind::Ticket, 10);
        t.record("b.sim", ExposureKind::Ticket, 20);
        let cdf = t.combined_cdf();
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.median(), Some(10));
    }
}
