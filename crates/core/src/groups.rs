//! Service-group construction (§5, Tables 5–7).
//!
//! Three evidence sources, one output shape:
//! * **shared STEK identifiers** — domains presenting the same key_name;
//! * **shared key-exchange values** — domains presenting the same DH/ECDH
//!   public value;
//! * **cross-domain resumption** — session IDs from one domain accepted by
//!   another, closed transitively.
//!
//! Groups are labelled by the longest common domain-name prefix of their
//! members (standing in for the paper's manual operator identification).

use crate::observations::{KexSighting, SharingEdge, TicketSighting};
use crate::unionfind::DisjointSets;
use std::collections::HashMap;

/// A service group: domains sharing server-side TLS secret state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceGroup {
    /// Inferred operator label.
    pub label: String,
    /// Sorted member domains.
    pub members: Vec<String>,
}

impl ServiceGroup {
    /// Member count.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// Summary statistics over a set of service groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupStats {
    /// Total number of groups.
    pub group_count: usize,
    /// Groups with exactly one member.
    pub singleton_count: usize,
    /// Domains covered by any group.
    pub domain_count: usize,
    /// Domains in groups of size ≥ 2.
    pub shared_domain_count: usize,
}

/// Build groups from sharing edges (e.g. the cross-domain resumption
/// experiment), transitively closed. `universe` seeds singletons for
/// domains with no edges.
pub fn groups_from_edges<'a>(
    universe: impl IntoIterator<Item = &'a str>,
    edges: &[SharingEdge],
) -> Vec<ServiceGroup> {
    let mut ds = DisjointSets::new();
    for d in universe {
        ds.add(d);
    }
    for e in edges {
        ds.union(&e.a, &e.b);
    }
    finalize_groups(ds.groups())
}

/// Build groups from shared identifiers: any two domains that ever
/// presented the same id belong together (the STEK experiment, §5.2).
pub fn groups_from_shared_ids<'a>(
    pairs: impl IntoIterator<Item = (&'a str, &'a str)>, // (domain, id)
) -> Vec<ServiceGroup> {
    let mut ds = DisjointSets::new();
    // Lookup-only hash map (get/insert, never iterated): group membership
    // comes out of `ds.groups()`, which sorts, so hash order never escapes.
    let mut first_holder: HashMap<String, String> = HashMap::new();
    for (domain, id) in pairs {
        ds.add(domain);
        match first_holder.get(id) {
            Some(holder) => {
                let holder = holder.clone();
                ds.union(&holder, domain);
            }
            None => {
                first_holder.insert(id.to_string(), domain.to_string());
            }
        }
    }
    finalize_groups(ds.groups())
}

/// STEK service groups from ticket sightings.
pub fn stek_groups(sightings: &[TicketSighting]) -> Vec<ServiceGroup> {
    groups_from_shared_ids(
        sightings
            .iter()
            .map(|s| (s.domain.as_str(), s.stek_id.as_str())),
    )
}

/// Diffie-Hellman service groups from key-exchange sightings (both
/// flavours; the paper groups them together in Table 7).
pub fn dh_groups(sightings: &[KexSighting]) -> Vec<ServiceGroup> {
    groups_from_shared_ids(
        sightings
            .iter()
            .map(|s| (s.domain.as_str(), s.value_fp.as_str())),
    )
}

/// Label and order raw member sets into [`ServiceGroup`]s. Input sets
/// must already be (size desc, first member) ordered, as
/// [`DisjointSets::groups`] and
/// [`GroupAcc::groups`](crate::stream::GroupAcc::groups) produce them:
/// the stable sort below only reorders across label ties, so the source
/// order is the final tiebreak.
pub fn finalize_groups(groups: Vec<Vec<String>>) -> Vec<ServiceGroup> {
    let mut out: Vec<ServiceGroup> = groups
        .into_iter()
        .map(|members| ServiceGroup {
            label: infer_label(&members),
            members,
        })
        .collect();
    out.sort_by(|a, b| b.size().cmp(&a.size()).then(a.label.cmp(&b.label)));
    out
}

/// Aggregate statistics.
pub fn stats(groups: &[ServiceGroup]) -> GroupStats {
    let group_count = groups.len();
    let singleton_count = groups.iter().filter(|g| g.size() == 1).count();
    let domain_count = groups.iter().map(|g| g.size()).sum();
    let shared_domain_count = groups
        .iter()
        .filter(|g| g.size() >= 2)
        .map(|g| g.size())
        .sum();
    GroupStats {
        group_count,
        singleton_count,
        domain_count,
        shared_domain_count,
    }
}

/// Label a group by its members' longest common name prefix (trimmed at a
/// word boundary), falling back to the first member.
pub fn infer_label(members: &[String]) -> String {
    match members {
        [] => String::new(),
        [only] => only.clone(),
        _ => {
            let first = &members[0];
            let mut len = first.len();
            for m in &members[1..] {
                len = len.min(common_prefix_len(first, m));
            }
            let prefix = &first[..len];
            let trimmed =
                prefix.trim_end_matches(|c: char| c == '-' || c == '.' || c.is_ascii_digit());
            if trimmed.len() >= 3 {
                trimmed.to_string()
            } else {
                members[0].clone()
            }
        }
    }
}

fn common_prefix_len(a: &str, b: &str) -> usize {
    a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count()
}

/// The top-`k` groups by size — the shape of Tables 5, 6 and 7.
pub fn top_groups(groups: &[ServiceGroup], k: usize) -> Vec<(String, usize)> {
    groups
        .iter()
        .take(k)
        .map(|g| (g.label.clone(), g.size()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observations::{KexKind, SharingKind};

    fn sighting(domain: &str, id: &str) -> TicketSighting {
        TicketSighting {
            domain: domain.into(),
            day: 0,
            stek_id: id.into(),
            lifetime_hint: 0,
        }
    }

    #[test]
    fn shared_id_grouping() {
        let sightings = vec![
            sighting("cdn-a.sim", "key1"),
            sighting("cdn-b.sim", "key1"),
            sighting("cdn-c.sim", "key2"),
            sighting("cdn-b.sim", "key2"), // b bridges key1 and key2
            sighting("lonely.sim", "key9"),
        ];
        let groups = stek_groups(&sightings);
        assert_eq!(groups[0].size(), 3, "transitive closure via b");
        assert_eq!(groups[1].size(), 1);
        let s = stats(&groups);
        assert_eq!(s.group_count, 2);
        assert_eq!(s.singleton_count, 1);
        assert_eq!(s.domain_count, 4);
        assert_eq!(s.shared_domain_count, 3);
    }

    #[test]
    fn same_domain_many_ids_stays_one_group() {
        let sightings = vec![
            sighting("rotator.sim", "k1"),
            sighting("rotator.sim", "k2"),
            sighting("rotator.sim", "k3"),
        ];
        let groups = stek_groups(&sightings);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].size(), 1);
    }

    #[test]
    fn edges_grouping_with_universe() {
        let edges = vec![
            SharingEdge {
                a: "a.sim".into(),
                b: "b.sim".into(),
                kind: SharingKind::SessionCache,
            },
            SharingEdge {
                a: "b.sim".into(),
                b: "c.sim".into(),
                kind: SharingKind::SessionCache,
            },
        ];
        let groups = groups_from_edges(["a.sim", "b.sim", "c.sim", "d.sim"], &edges);
        assert_eq!(groups[0].members, vec!["a.sim", "b.sim", "c.sim"]);
        assert_eq!(groups[1].members, vec!["d.sim"]);
    }

    #[test]
    fn dh_grouping_mixes_flavours() {
        let sightings = vec![
            KexSighting {
                domain: "x.sim".into(),
                day: 0,
                kex: KexKind::Dhe,
                value_fp: "v".into(),
            },
            KexSighting {
                domain: "y.sim".into(),
                day: 1,
                kex: KexKind::Ecdhe,
                value_fp: "v".into(),
            },
        ];
        let groups = dh_groups(&sightings);
        assert_eq!(groups[0].size(), 2);
    }

    #[test]
    fn label_inference() {
        assert_eq!(
            infer_label(&vec![
                "cirrusflare-c00001.sim".into(),
                "cirrusflare-c00002.sim".into()
            ]),
            "cirrusflare-c"
        );
        assert_eq!(infer_label(&vec!["solo.sim".into()]), "solo.sim");
        // No meaningful common prefix → first member.
        assert_eq!(
            infer_label(&vec!["alpha.sim".into(), "zeta.sim".into()]),
            "alpha.sim"
        );
        assert_eq!(infer_label(&[]), "");
    }

    #[test]
    fn top_groups_shape() {
        let sightings = vec![
            sighting("big-1.sim", "k"),
            sighting("big-2.sim", "k"),
            sighting("big-3.sim", "k"),
            sighting("duo-1.sim", "j"),
            sighting("duo-2.sim", "j"),
            sighting("solo.sim", "z"),
        ];
        let groups = stek_groups(&sightings);
        let top = top_groups(&groups, 2);
        assert_eq!(top[0].1, 3);
        assert_eq!(top[1].1, 2);
    }
}
