//! Exhaustive interleaving exploration for small concurrent scenarios —
//! a hand-rolled, dependency-free loom: the offline build cannot vendor
//! the real one, and the scenarios this workspace needs (STEK refresh vs.
//! pinned accept, two-shard cache cross-fallback) are small enough to
//! enumerate completely.
//!
//! A [`Scenario`] is a fixed set of logical threads, each a sequence of
//! *steps* — closures over a shared model state `S`, delimited at the
//! yield points the author injects (one step per atomic action: a lock
//! acquire, an atomic load, a field write). The explorer enumerates every
//! interleaving of the threads' steps, replays each schedule against a
//! fresh state from `init`, and hands the final state to a visitor or
//! invariant check. Coverage is exact, not sampled: for thread step
//! counts n₁..n_k there are (Σnᵢ)! / Πnᵢ! schedules and every one runs.
//!
//! Blocking is modelled, not real: a step may return
//! [`StepOutcome::Blocked`] (after changing *nothing*), and the explorer
//! prunes that branch — the blocked thread simply isn't scheduled until
//! another thread's step unblocks it. If every unfinished thread is
//! blocked the scenario has deadlocked, and the explorer panics with the
//! schedule that got there — so a lock-order violation modelled with
//! `lock`/`unlock` steps is *found*, not hidden.
//!
//! Granularity is the author's honest obligation: the model only checks
//! interleavings at the yield points you give it. Steps model
//! sequentially consistent atomics — relaxed-memory reorderings are out
//! of scope (that is what the `atomic-ordering` lint rule and the TSan CI
//! leg are for).
//!
//! ```
//! use ts_core::interleave::{step, Scenario};
//!
//! // Two threads, each a non-atomic increment (read, then write back).
//! #[derive(Default)]
//! struct S { counter: u64, tmp: [u64; 2] }
//! let lost_update = Scenario::new()
//!     .thread(vec![
//!         step(|s: &mut S| s.tmp[0] = s.counter),
//!         step(|s: &mut S| s.counter = s.tmp[0] + 1),
//!     ])
//!     .thread(vec![
//!         step(|s: &mut S| s.tmp[1] = s.counter),
//!         step(|s: &mut S| s.counter = s.tmp[1] + 1),
//!     ]);
//! let mut finals = std::collections::BTreeSet::new();
//! let schedules = lost_update.explore(S::default, |_, s| {
//!     finals.insert(s.counter);
//! });
//! assert_eq!(schedules, 6); // 4! / (2! 2!)
//! assert!(finals.contains(&1), "exhaustiveness finds the lost update");
//! ```

/// What a step did when scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step ran; the thread advances to its next step.
    Progressed,
    /// The step could not run (e.g. a modelled lock is held) and changed
    /// nothing; the thread stays put and the explorer tries it again
    /// only on schedules where another thread ran first.
    Blocked,
}

/// One yield-point-delimited action of a logical thread.
pub type Step<S> = Box<dyn Fn(&mut S) -> StepOutcome>;

/// Wrap an infallible action as a [`Step`].
pub fn step<S, F: Fn(&mut S) + 'static>(f: F) -> Step<S> {
    Box::new(move |s| {
        f(s);
        StepOutcome::Progressed
    })
}

/// Wrap an action that may block as a [`Step`]. The closure must leave
/// the state untouched when it returns [`StepOutcome::Blocked`].
pub fn try_step<S, F: Fn(&mut S) -> StepOutcome + 'static>(f: F) -> Step<S> {
    Box::new(f)
}

/// A fixed set of logical threads over a shared model state `S`.
#[derive(Default)]
pub struct Scenario<S> {
    threads: Vec<Vec<Step<S>>>,
}

impl<S> Scenario<S> {
    /// An empty scenario.
    pub fn new() -> Scenario<S> {
        Scenario {
            threads: Vec::new(),
        }
    }

    /// Add a thread as its ordered step sequence.
    pub fn thread(mut self, steps: Vec<Step<S>>) -> Scenario<S> {
        self.threads.push(steps);
        self
    }

    /// How many complete schedules exist (multinomial coefficient) —
    /// useful to sanity-check a scenario's size before exploring it.
    pub fn schedule_count(&self) -> u128 {
        let mut total: u128 = 0;
        let mut count: u128 = 1;
        for t in &self.threads {
            for i in 1..=t.len() as u128 {
                total += 1;
                // count *= C(total, i) incrementally: multiply then divide
                // keeps everything integral.
                count = count * total / i;
            }
        }
        count
    }

    /// Enumerate every interleaving, replaying each against a fresh state
    /// from `init` and calling `visit(schedule, final_state)` on each
    /// completed one. Returns the number of completed schedules.
    ///
    /// Panics on deadlock: a reachable point where every unfinished
    /// thread's next step reports [`StepOutcome::Blocked`].
    pub fn explore<I, V>(&self, init: I, mut visit: V) -> usize
    where
        I: Fn() -> S,
        V: FnMut(&[usize], &S),
    {
        let mut sched = Vec::new();
        let mut count = 0usize;
        self.dfs(&mut sched, &init, &mut visit, &mut count);
        count
    }

    /// [`explore`](Scenario::explore) with an invariant instead of a
    /// visitor: panics (naming the schedule) on the first `Err`.
    pub fn check<I, C>(&self, init: I, check: C) -> usize
    where
        I: Fn() -> S,
        C: Fn(&S) -> Result<(), String>,
    {
        self.explore(init, |sched, s| {
            if let Err(msg) = check(s) {
                panic!("invariant violated under schedule {sched:?}: {msg}");
            }
        })
    }

    /// Replay `sched` from a fresh state. `None` if the final step of the
    /// schedule blocked (prefixes are only ever extended by one step, so
    /// earlier steps are already known to progress).
    fn replay<I: Fn() -> S>(&self, init: &I, sched: &[usize]) -> Option<S> {
        let mut state = init();
        let mut at = vec![0usize; self.threads.len()];
        for &t in sched {
            match self.threads[t][at[t]](&mut state) {
                StepOutcome::Progressed => at[t] += 1,
                StepOutcome::Blocked => return None,
            }
        }
        Some(state)
    }

    fn dfs<I, V>(&self, sched: &mut Vec<usize>, init: &I, visit: &mut V, count: &mut usize)
    where
        I: Fn() -> S,
        V: FnMut(&[usize], &S),
    {
        let total: usize = self.threads.iter().map(Vec::len).sum();
        if sched.len() == total {
            let state = self
                .replay(init, sched)
                .expect("a completed schedule replays without blocking");
            visit(sched, &state);
            *count += 1;
            return;
        }
        let mut taken = vec![0usize; self.threads.len()];
        for &t in sched.iter() {
            taken[t] += 1;
        }
        let mut progressed_any = false;
        for t in 0..self.threads.len() {
            if taken[t] == self.threads[t].len() {
                continue;
            }
            sched.push(t);
            if self.replay(init, sched).is_some() {
                progressed_any = true;
                self.dfs(sched, init, visit, count);
            }
            sched.pop();
        }
        if !progressed_any {
            panic!("deadlock: every unfinished thread is blocked after schedule {sched:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[derive(Default)]
    struct Counter {
        value: u64,
        tmp: [u64; 2],
    }

    fn unlocked_increments() -> Scenario<Counter> {
        Scenario::new()
            .thread(vec![
                step(|s: &mut Counter| s.tmp[0] = s.value),
                step(|s: &mut Counter| s.value = s.tmp[0] + 1),
            ])
            .thread(vec![
                step(|s: &mut Counter| s.tmp[1] = s.value),
                step(|s: &mut Counter| s.value = s.tmp[1] + 1),
            ])
    }

    #[test]
    fn enumerates_the_full_multinomial() {
        let sc = unlocked_increments();
        assert_eq!(sc.schedule_count(), 6);
        let ran = sc.explore(Counter::default, |_, _| {});
        assert_eq!(ran, 6);
    }

    #[test]
    fn exhaustiveness_finds_the_lost_update() {
        let mut finals = BTreeSet::new();
        unlocked_increments().explore(Counter::default, |_, s| {
            finals.insert(s.value);
        });
        // Serial schedules give 2; the four racy ones lose an update.
        assert_eq!(finals, BTreeSet::from([1, 2]));
    }

    #[derive(Default)]
    struct Locked {
        lock: bool,
        value: u64,
        tmp: [u64; 2],
    }

    fn acquire(i: usize) -> Step<Locked> {
        let _ = i;
        try_step(move |s: &mut Locked| {
            if s.lock {
                return StepOutcome::Blocked;
            }
            s.lock = true;
            StepOutcome::Progressed
        })
    }

    #[test]
    fn modelled_mutex_serialises_the_increments() {
        let thread = |i: usize| {
            vec![
                acquire(i),
                step(move |s: &mut Locked| s.tmp[i] = s.value),
                step(move |s: &mut Locked| {
                    s.value = s.tmp[i] + 1;
                    s.lock = false;
                }),
            ]
        };
        let sc = Scenario::new().thread(thread(0)).thread(thread(1));
        let ran = sc.check(Locked::default, |s| {
            if s.value == 2 {
                Ok(())
            } else {
                Err(format!("lost update: value = {}", s.value))
            }
        });
        // Blocked branches pruned: only the two serialised orders remain.
        assert_eq!(ran, 2);
    }

    #[derive(Default)]
    struct TwoLocks {
        a: bool,
        b: bool,
    }

    fn take(which: fn(&mut TwoLocks) -> &mut bool) -> Step<TwoLocks> {
        try_step(move |s: &mut TwoLocks| {
            let slot = which(s);
            if *slot {
                return StepOutcome::Blocked;
            }
            *slot = true;
            StepOutcome::Progressed
        })
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn opposite_lock_order_is_reported_as_deadlock() {
        Scenario::new()
            .thread(vec![
                take(|s| &mut s.a),
                take(|s| &mut s.b),
                step(|s: &mut TwoLocks| {
                    s.b = false;
                    s.a = false;
                }),
            ])
            .thread(vec![
                take(|s| &mut s.b),
                take(|s| &mut s.a),
                step(|s: &mut TwoLocks| {
                    s.a = false;
                    s.b = false;
                }),
            ])
            .explore(TwoLocks::default, |_, _| {});
    }

    #[test]
    fn consistent_lock_order_explores_clean() {
        let sc = Scenario::new()
            .thread(vec![
                take(|s| &mut s.a),
                take(|s| &mut s.b),
                step(|s: &mut TwoLocks| {
                    s.b = false;
                    s.a = false;
                }),
            ])
            .thread(vec![
                take(|s| &mut s.a),
                take(|s| &mut s.b),
                step(|s: &mut TwoLocks| {
                    s.b = false;
                    s.a = false;
                }),
            ]);
        let ran = sc.explore(TwoLocks::default, |_, s| {
            assert!(!s.a && !s.b, "all locks released at quiescence");
        });
        assert_eq!(ran, 2);
    }
}
