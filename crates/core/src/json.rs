//! Minimal JSON tree, serializer, and parser.
//!
//! The offline build environment rules out serde, but campaign archives
//! still need a stable interchange format (the paper publishes its scan
//! data; ours round-trips through this module). The subset is exactly
//! RFC 8259 JSON with integers kept exact up to `i128` range; floats use
//! Rust's shortest-roundtrip formatting.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part, kept exact.
    Int(i128),
    /// A fractional or exponent-form number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Object(Vec<(String, Json)>),
}

/// Error from [`Json::parse`] or typed accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an unsigned integer value.
    pub fn uint(v: u64) -> Json {
        Json::Int(v as i128)
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field lookup, as an error rather than an Option.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field {key:?}")))
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {other:?}")),
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {other:?}")),
        }
    }

    /// The value as a u64 (must be an exact non-negative integer).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Int(i) if *i >= 0 && *i <= u64::MAX as i128 => Ok(*i as u64),
            other => err(format!("expected u64, got {other:?}")),
        }
    }

    /// The value as a u32.
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        let v = self.as_u64()?;
        u32::try_from(v).map_err(|_| JsonError(format!("{v} out of u32 range")))
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(items) => Ok(items),
            other => err(format!("expected array, got {other:?}")),
        }
    }

    /// `Some(v)` ↔ `v`, `None` ↔ `null` helper for optional fields.
    pub fn opt<T>(
        &self,
        convert: impl FnOnce(&Json) -> Result<T, JsonError>,
    ) -> Result<Option<T>, JsonError> {
        match self {
            Json::Null => Ok(None),
            other => convert(other).map(Some),
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs: Vec<(String, Json)> = Vec::new();
            let mut seen: BTreeMap<String, ()> = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                if seen.insert(key.clone(), ()).is_some() {
                    return err(format!("duplicate key {key:?}"));
                }
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(pairs));
                    }
                    _ => return err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pair?
                        if (0xd800..0xdc00).contains(&code)
                            && bytes.get(*pos + 1) == Some(&b'\\')
                            && bytes.get(*pos + 2) == Some(&b'u')
                        {
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if (0xdc00..0xe000).contains(&low) {
                                code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                *pos += 6;
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return err("bad escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a str, so this is safe
                // to do by finding the next char boundary).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError("invalid utf-8".into()))?;
                let c = rest.chars().next().unwrap();
                if (c as u32) < 0x20 {
                    return err("unescaped control character in string");
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    if at + 4 > bytes.len() {
        return err("truncated \\u escape");
    }
    let s = std::str::from_utf8(&bytes[at..at + 4]).map_err(|_| JsonError("bad hex".into()))?;
    u32::from_str_radix(s, 16).map_err(|_| JsonError(format!("bad \\u escape {s:?}")))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return err(format!("expected value at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError(format!("bad number {text:?}")))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| JsonError(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for doc in [
            "null", "true", "false", "0", "-17", "3.5", "\"hi\"", "[]", "{}",
        ] {
            let v = Json::parse(doc).unwrap();
            assert_eq!(Json::parse(&v.to_json_string()).unwrap(), v, "{doc}");
        }
    }

    #[test]
    fn object_roundtrip_preserves_values() {
        let v = Json::obj(vec![
            ("name", Json::str("a.sim")),
            ("day", Json::uint(12)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("list", Json::Array(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = v.to_json_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.field("day").unwrap().as_u64().unwrap(), 12);
        assert_eq!(back.field("name").unwrap().as_str().unwrap(), "a.sim");
        assert!(back.field("missing").is_err());
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\té\u{1}".into());
        let text = v.to_json_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            Json::parse("\"\\u00e9 \\ud83d\\ude00\"").unwrap(),
            Json::Str("é 😀".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,\"a\":2}",
            "01x",
            "\"\\q\"",
            "nulls",
        ] {
            assert!(Json::parse(doc).is_err(), "{doc:?} should fail");
        }
    }

    #[test]
    fn big_integers_stay_exact() {
        let v = Json::Int(u64::MAX as i128);
        let back = Json::parse(&v.to_json_string()).unwrap();
        assert_eq!(back.as_u64().unwrap(), u64::MAX);
    }
}
