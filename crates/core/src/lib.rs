//! # ts-core — the measurement analysis of *TLS crypto shortcuts*
//!
//! This crate is the paper's primary contribution in library form: given
//! scan observations (produced by `ts-scanner`, but any source works), it
//! computes everything the paper's evaluation reports —
//!
//! * [`observations`] — the scan record types (sightings, probes, edges)
//! * [`json`] — dependency-free JSON tree for archiving observations
//! * [`par`] — deterministic chunked fan-out (`parallel_map`)
//! * [`unionfind`] — disjoint sets for transitive service-group closure
//! * [`lifetime`] — first/last-seen span estimation for STEKs and
//!   key-exchange values (§4.3's jitter-tolerant estimator)
//! * [`cdf`] — empirical CDFs for Figures 1, 2, 3, 5, 8
//! * [`groups`] — service groups from shared STEK ids, shared DH values,
//!   and cross-domain resumption edges (§5, Tables 5–7)
//! * [`exposure`] — per-domain *vulnerability windows* and the combined
//!   maximum-exposure distribution (§6, Figure 8)
//! * [`stream`] — streaming, mergeable accumulators for sharded
//!   campaigns (spans, CDFs, groups, top-k) with an explicit merge law
//! * [`tiers`] — rank-tier breakdowns (Figure 4)
//! * [`treemap`] — size × longevity summaries standing in for the paper's
//!   treemap visualizations (Figures 6, 7)
//! * [`report`] — text tables with paper-vs-measured columns
//!
//! The crate is pure analysis: no networking, no crypto, no simulation —
//! so it can equally post-process real zgrab output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod exposure;
pub mod groups;
pub mod interleave;
pub mod json;
pub mod lifetime;
pub mod observations;
pub mod par;
pub mod report;
pub mod stream;
pub mod tiers;
pub mod treemap;
pub mod unionfind;

pub use cdf::Cdf;
pub use exposure::{DomainExposure, ExposureKind};
pub use lifetime::SpanEstimator;
pub use observations::{KexKind, KexSighting, ResumptionProbe, TicketSighting};
pub use stream::{CountCdf, GroupAcc, Merge, SpanAcc, TierAcc, TopK};
pub use unionfind::DisjointSets;
