//! First/last-seen span estimation (§4.3, §4.4).
//!
//! The paper's estimator: a (domain, identifier) pair's lifetime is the
//! span between the first and last day the pair was sighted, *inclusive*.
//! Intermediate days with a different identifier are attributed to scan
//! jitter (A-record selection, load-balancer affinity, missed
//! connections), because static keys don't flip back and forth and random
//! identifiers don't collide.

use crate::observations::{KexKind, KexSighting, TicketSighting};
use std::collections::BTreeMap;

/// Span statistics for one domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSpans {
    /// Longest identifier span, in days (first-to-last inclusive).
    pub max_span_days: u64,
    /// Number of distinct identifiers sighted.
    pub distinct_ids: usize,
    /// Number of days with at least one sighting.
    pub days_seen: usize,
}

/// Accumulates sightings and computes per-domain spans.
#[derive(Debug, Default)]
pub struct SpanEstimator {
    // (domain, id) -> (first_day, last_day). Ordered maps: the spans feed
    // report output directly, so iteration order must not depend on the
    // process's hash seed.
    ranges: BTreeMap<(String, String), (u64, u64)>,
    // domain -> set of days sighted (small sorted vec)
    days: BTreeMap<String, Vec<u64>>,
}

impl SpanEstimator {
    /// Empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sighting of `id` at `domain` on `day`.
    pub fn record(&mut self, domain: &str, id: &str, day: u64) {
        let entry = self
            .ranges
            .entry((domain.to_string(), id.to_string()))
            .or_insert((day, day));
        entry.0 = entry.0.min(day);
        entry.1 = entry.1.max(day);
        let days = self.days.entry(domain.to_string()).or_default();
        if let Err(pos) = days.binary_search(&day) {
            days.insert(pos, day);
        }
    }

    /// Ingest ticket sightings.
    pub fn record_tickets<'a>(&mut self, sightings: impl IntoIterator<Item = &'a TicketSighting>) {
        for s in sightings {
            self.record(&s.domain, &s.stek_id, s.day);
        }
    }

    /// Ingest key-exchange sightings of one flavour.
    pub fn record_kex<'a>(
        &mut self,
        sightings: impl IntoIterator<Item = &'a KexSighting>,
        kex: KexKind,
    ) {
        for s in sightings {
            if s.kex == kex {
                self.record(&s.domain, &s.value_fp, s.day);
            }
        }
    }

    /// Per-domain span statistics, keyed in domain order.
    pub fn domain_spans(&self) -> BTreeMap<String, DomainSpans> {
        let mut per_domain: BTreeMap<String, (u64, usize)> = BTreeMap::new();
        for ((domain, _id), &(first, last)) in &self.ranges {
            let span = last - first + 1;
            let entry = per_domain.entry(domain.clone()).or_insert((0, 0));
            entry.0 = entry.0.max(span);
            entry.1 += 1;
        }
        per_domain
            .into_iter()
            .map(|(domain, (max_span_days, distinct_ids))| {
                let days_seen = self.days.get(&domain).map(|d| d.len()).unwrap_or(0);
                (
                    domain,
                    DomainSpans {
                        max_span_days,
                        distinct_ids,
                        days_seen,
                    },
                )
            })
            .collect()
    }

    /// Span of one specific (domain, id) pair.
    pub fn span_of(&self, domain: &str, id: &str) -> Option<u64> {
        self.ranges
            .get(&(domain.to_string(), id.to_string()))
            .map(|&(first, last)| last - first + 1)
    }

    /// Domains whose longest span is at least `days`, sorted by span
    /// descending then name.
    pub fn domains_with_span_at_least(&self, days: u64) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .domain_spans()
            .into_iter()
            .filter(|(_, s)| s.max_span_days >= days)
            .map(|(d, s)| (d, s.max_span_days))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// All per-domain max spans (for CDF building).
    pub fn max_spans(&self) -> Vec<u64> {
        self.domain_spans()
            .values()
            .map(|s| s.max_span_days)
            .collect()
    }

    /// Number of (domain, id) pairs tracked.
    pub fn pair_count(&self) -> usize {
        self.ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_day_span_is_one() {
        let mut e = SpanEstimator::new();
        e.record("a.sim", "k1", 5);
        assert_eq!(e.span_of("a.sim", "k1"), Some(1));
        let spans = e.domain_spans();
        assert_eq!(spans["a.sim"].max_span_days, 1);
        assert_eq!(spans["a.sim"].distinct_ids, 1);
    }

    #[test]
    fn first_to_last_inclusive() {
        let mut e = SpanEstimator::new();
        e.record("a.sim", "k1", 0);
        e.record("a.sim", "k1", 62);
        assert_eq!(e.span_of("a.sim", "k1"), Some(63), "whole study");
    }

    #[test]
    fn jitter_days_bridged() {
        // The paper's key property: an intermediate sighting of a
        // different id (load-balancer jitter) does not split the span.
        let mut e = SpanEstimator::new();
        e.record("a.sim", "k1", 0);
        e.record("a.sim", "other", 5);
        e.record("a.sim", "k1", 10);
        assert_eq!(e.span_of("a.sim", "k1"), Some(11));
        let spans = e.domain_spans();
        assert_eq!(spans["a.sim"].max_span_days, 11);
        assert_eq!(spans["a.sim"].distinct_ids, 2);
        assert_eq!(spans["a.sim"].days_seen, 3);
    }

    #[test]
    fn missed_scan_days_bridged() {
        let mut e = SpanEstimator::new();
        e.record("a.sim", "k1", 0);
        // days 1-6 missed entirely (server unresponsive)
        e.record("a.sim", "k1", 7);
        assert_eq!(e.span_of("a.sim", "k1"), Some(8));
    }

    #[test]
    fn per_domain_max_over_multiple_ids() {
        let mut e = SpanEstimator::new();
        // Rotating daily: spans of 1 each.
        for day in 0..10 {
            e.record("daily.sim", &format!("key{day}"), day);
        }
        // One long key.
        e.record("static.sim", "k", 0);
        e.record("static.sim", "k", 29);
        let spans = e.domain_spans();
        assert_eq!(spans["daily.sim"].max_span_days, 1);
        assert_eq!(spans["daily.sim"].distinct_ids, 10);
        assert_eq!(spans["static.sim"].max_span_days, 30);
    }

    #[test]
    fn domains_with_span_at_least_sorted() {
        let mut e = SpanEstimator::new();
        e.record("long.sim", "k", 0);
        e.record("long.sim", "k", 62);
        e.record("mid.sim", "k", 0);
        e.record("mid.sim", "k", 9);
        e.record("short.sim", "k", 0);
        let v = e.domains_with_span_at_least(7);
        assert_eq!(
            v,
            vec![("long.sim".to_string(), 63), ("mid.sim".to_string(), 10)]
        );
        assert_eq!(e.domains_with_span_at_least(64), vec![]);
    }

    #[test]
    fn same_id_different_domains_tracked_separately() {
        let mut e = SpanEstimator::new();
        e.record("a.sim", "shared", 0);
        e.record("a.sim", "shared", 5);
        e.record("b.sim", "shared", 3);
        assert_eq!(e.span_of("a.sim", "shared"), Some(6));
        assert_eq!(e.span_of("b.sim", "shared"), Some(1));
        assert_eq!(e.pair_count(), 2);
    }

    #[test]
    fn ingest_helpers() {
        use crate::observations::{KexKind, KexSighting, TicketSighting};
        let tickets = vec![
            TicketSighting {
                domain: "t.sim".into(),
                day: 0,
                stek_id: "aa".into(),
                lifetime_hint: 0,
            },
            TicketSighting {
                domain: "t.sim".into(),
                day: 4,
                stek_id: "aa".into(),
                lifetime_hint: 0,
            },
        ];
        let kex = vec![
            KexSighting {
                domain: "k.sim".into(),
                day: 0,
                kex: KexKind::Dhe,
                value_fp: "ff".into(),
            },
            KexSighting {
                domain: "k.sim".into(),
                day: 2,
                kex: KexKind::Ecdhe,
                value_fp: "ff".into(),
            },
        ];
        let mut e = SpanEstimator::new();
        e.record_tickets(&tickets);
        assert_eq!(e.span_of("t.sim", "aa"), Some(5));
        let mut e = SpanEstimator::new();
        e.record_kex(&kex, KexKind::Dhe);
        assert_eq!(e.span_of("k.sim", "ff"), Some(1), "only DHE ingested");
    }
}
