//! Scan observation records.
//!
//! These are the crate's input language: everything the analysis computes
//! is derived from these types. `ts-scanner` produces them from live
//! (simulated) handshakes; they serialize with serde so campaigns can be
//! archived and re-analyzed (the paper publishes its data on scans.io).

use serde::{Deserialize, Serialize};

/// Which ephemeral key exchange a sighting belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KexKind {
    /// Finite-field DHE.
    Dhe,
    /// Elliptic-curve (X25519) ECDHE.
    Ecdhe,
}

/// One day's sighting of a (domain, STEK identifier) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TicketSighting {
    /// Domain probed.
    pub domain: String,
    /// Day index of the scan.
    pub day: u64,
    /// STEK identifier (key_name / SChannel GUID) from the ticket, hex.
    pub stek_id: String,
    /// Lifetime hint advertised with the ticket.
    pub lifetime_hint: u32,
}

/// One day's sighting of a (domain, server key-exchange value) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KexSighting {
    /// Domain probed.
    pub domain: String,
    /// Day index.
    pub day: u64,
    /// Key exchange flavour.
    pub kex: KexKind,
    /// Fingerprint (hex) of the server's public key-exchange value.
    pub value_fp: String,
}

/// Result of a resumption-lifetime probe (Figures 1 and 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResumptionProbe {
    /// Domain probed.
    pub domain: String,
    /// Session-ID or ticket probe?
    pub mechanism: ResumptionMechanism,
    /// The server indicated support (issued an ID / a ticket).
    pub supported: bool,
    /// Resumption succeeded one second after establishment.
    pub resumed_at_1s: bool,
    /// Longest delay (seconds) at which resumption still succeeded
    /// (None = never resumed).
    pub max_delay: Option<u64>,
    /// Ticket lifetime hint, when applicable (None for session IDs or no
    /// ticket).
    pub lifetime_hint: Option<u32>,
}

/// Which resumption mechanism a probe exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResumptionMechanism {
    /// RFC 5246 session-ID resumption.
    SessionId,
    /// RFC 5077 session tickets.
    Ticket,
}

/// Evidence that two domains share server-side state (§5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharingEdge {
    /// First domain.
    pub a: String,
    /// Second domain.
    pub b: String,
    /// What kind of sharing was observed.
    pub kind: SharingKind,
}

/// The kinds of cross-domain secret sharing the study measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingKind {
    /// A session ID from `a` resumed on `b` (shared session cache).
    SessionCache,
    /// The same STEK identifier appeared on both (shared STEK).
    Stek,
    /// The same key-exchange value appeared on both (shared DH value).
    DhValue,
}

/// Per-domain summary of a 10-connection burst scan (Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstSummary {
    /// Domain probed.
    pub domain: String,
    /// Connections attempted.
    pub attempts: u32,
    /// Connections that completed a handshake with the restricted offer.
    pub successes: u32,
    /// Presented a browser-trusted chain.
    pub trusted: bool,
    /// Distinct server key-exchange values seen (None if no PFS suite ran).
    pub distinct_kex_values: Option<u32>,
    /// Distinct STEK identifiers seen (None if no tickets issued).
    pub distinct_stek_ids: Option<u32>,
    /// Number of connections that yielded a ticket.
    pub tickets_issued: u32,
}

impl BurstSummary {
    /// Did the domain ever repeat a key-exchange value in the burst?
    pub fn repeats_kex(&self) -> bool {
        matches!(self.distinct_kex_values, Some(d) if d < self.successes && self.successes > 1)
    }

    /// Did every connection present the same key-exchange value?
    pub fn all_same_kex(&self) -> bool {
        self.successes > 1 && self.distinct_kex_values == Some(1)
    }

    /// Did the domain repeat a STEK id within the burst?
    pub fn repeats_stek(&self) -> bool {
        matches!(self.distinct_stek_ids, Some(d) if d < self.tickets_issued && self.tickets_issued > 1)
    }

    /// Did every issued ticket carry the same STEK id?
    pub fn all_same_stek(&self) -> bool {
        self.tickets_issued > 1 && self.distinct_stek_ids == Some(1)
    }
}

/// Hex-encode helper shared by observation producers.
pub fn fingerprint_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_summary_classifications() {
        let base = BurstSummary {
            domain: "x.sim".into(),
            attempts: 10,
            successes: 10,
            trusted: true,
            distinct_kex_values: Some(10),
            distinct_stek_ids: Some(1),
            tickets_issued: 10,
        };
        assert!(!base.repeats_kex());
        assert!(!base.all_same_kex());
        assert!(base.repeats_stek());
        assert!(base.all_same_stek());

        let reuser = BurstSummary { distinct_kex_values: Some(3), ..base.clone() };
        assert!(reuser.repeats_kex());
        assert!(!reuser.all_same_kex());

        let always = BurstSummary { distinct_kex_values: Some(1), ..base.clone() };
        assert!(always.all_same_kex());

        let single = BurstSummary {
            successes: 1,
            tickets_issued: 1,
            distinct_kex_values: Some(1),
            distinct_stek_ids: Some(1),
            ..base.clone()
        };
        assert!(!single.repeats_kex(), "one success can't show reuse");
        assert!(!single.all_same_stek());
    }

    #[test]
    fn serde_roundtrip() {
        let s = TicketSighting {
            domain: "a.sim".into(),
            day: 5,
            stek_id: "aabb".into(),
            lifetime_hint: 300,
        };
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<TicketSighting>(&json).unwrap(), s);
        let p = ResumptionProbe {
            domain: "a.sim".into(),
            mechanism: ResumptionMechanism::Ticket,
            supported: true,
            resumed_at_1s: true,
            max_delay: Some(300),
            lifetime_hint: Some(300),
        };
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<ResumptionProbe>(&json).unwrap(), p);
    }

    #[test]
    fn fingerprints_hex() {
        assert_eq!(fingerprint_hex(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(fingerprint_hex(&[]), "");
    }
}
