//! Scan observation records.
//!
//! These are the crate's input language: everything the analysis computes
//! is derived from these types. `ts-scanner` produces them from live
//! (simulated) handshakes; they serialize to JSON (via [`crate::json`],
//! the workspace has no serde) so campaigns can be archived and
//! re-analyzed (the paper publishes its data on scans.io).

use crate::json::{Json, JsonError};

/// Which ephemeral key exchange a sighting belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KexKind {
    /// Finite-field DHE.
    Dhe,
    /// Elliptic-curve (X25519) ECDHE.
    Ecdhe,
}

/// One day's sighting of a (domain, STEK identifier) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TicketSighting {
    /// Domain probed.
    pub domain: String,
    /// Day index of the scan.
    pub day: u64,
    /// STEK identifier (key_name / SChannel GUID) from the ticket, hex.
    pub stek_id: String,
    /// Lifetime hint advertised with the ticket.
    pub lifetime_hint: u32,
}

/// One day's sighting of a (domain, server key-exchange value) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KexSighting {
    /// Domain probed.
    pub domain: String,
    /// Day index.
    pub day: u64,
    /// Key exchange flavour.
    pub kex: KexKind,
    /// Fingerprint (hex) of the server's public key-exchange value.
    pub value_fp: String,
}

/// Result of a resumption-lifetime probe (Figures 1 and 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumptionProbe {
    /// Domain probed.
    pub domain: String,
    /// Session-ID or ticket probe?
    pub mechanism: ResumptionMechanism,
    /// The server indicated support (issued an ID / a ticket).
    pub supported: bool,
    /// Resumption succeeded one second after establishment.
    pub resumed_at_1s: bool,
    /// Longest delay (seconds) at which resumption still succeeded
    /// (None = never resumed).
    pub max_delay: Option<u64>,
    /// Ticket lifetime hint, when applicable (None for session IDs or no
    /// ticket).
    pub lifetime_hint: Option<u32>,
}

/// Which resumption mechanism a probe exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResumptionMechanism {
    /// RFC 5246 session-ID resumption.
    SessionId,
    /// RFC 5077 session tickets.
    Ticket,
}

/// Evidence that two domains share server-side state (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharingEdge {
    /// First domain.
    pub a: String,
    /// Second domain.
    pub b: String,
    /// What kind of sharing was observed.
    pub kind: SharingKind,
}

/// The kinds of cross-domain secret sharing the study measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingKind {
    /// A session ID from `a` resumed on `b` (shared session cache).
    SessionCache,
    /// The same STEK identifier appeared on both (shared STEK).
    Stek,
    /// The same key-exchange value appeared on both (shared DH value).
    DhValue,
}

/// Per-domain summary of a 10-connection burst scan (Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurstSummary {
    /// Domain probed.
    pub domain: String,
    /// Connections attempted.
    pub attempts: u32,
    /// Connections that completed a handshake with the restricted offer.
    pub successes: u32,
    /// Presented a browser-trusted chain.
    pub trusted: bool,
    /// Distinct server key-exchange values seen (None if no PFS suite ran).
    pub distinct_kex_values: Option<u32>,
    /// Distinct STEK identifiers seen (None if no tickets issued).
    pub distinct_stek_ids: Option<u32>,
    /// Number of connections that yielded a ticket.
    pub tickets_issued: u32,
}

impl BurstSummary {
    /// Did the domain ever repeat a key-exchange value in the burst?
    pub fn repeats_kex(&self) -> bool {
        matches!(self.distinct_kex_values, Some(d) if d < self.successes && self.successes > 1)
    }

    /// Did every connection present the same key-exchange value?
    pub fn all_same_kex(&self) -> bool {
        self.successes > 1 && self.distinct_kex_values == Some(1)
    }

    /// Did the domain repeat a STEK id within the burst?
    pub fn repeats_stek(&self) -> bool {
        matches!(self.distinct_stek_ids, Some(d) if d < self.tickets_issued && self.tickets_issued > 1)
    }

    /// Did every issued ticket carry the same STEK id?
    pub fn all_same_stek(&self) -> bool {
        self.tickets_issued > 1 && self.distinct_stek_ids == Some(1)
    }
}

// --- JSON archiving ------------------------------------------------------
//
// One `to_json`/`from_json` pair per record type. Field names are the
// snake-case struct field names, so archives written before the serde
// removal still parse.

impl KexKind {
    /// Archive form.
    pub fn to_json(self) -> Json {
        Json::str(match self {
            KexKind::Dhe => "Dhe",
            KexKind::Ecdhe => "Ecdhe",
        })
    }

    /// Parse the archive form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "Dhe" => Ok(KexKind::Dhe),
            "Ecdhe" => Ok(KexKind::Ecdhe),
            other => Err(JsonError(format!("unknown KexKind {other:?}"))),
        }
    }
}

impl ResumptionMechanism {
    /// Archive form.
    pub fn to_json(self) -> Json {
        Json::str(match self {
            ResumptionMechanism::SessionId => "SessionId",
            ResumptionMechanism::Ticket => "Ticket",
        })
    }

    /// Parse the archive form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "SessionId" => Ok(ResumptionMechanism::SessionId),
            "Ticket" => Ok(ResumptionMechanism::Ticket),
            other => Err(JsonError(format!("unknown ResumptionMechanism {other:?}"))),
        }
    }
}

impl SharingKind {
    /// Archive form.
    pub fn to_json(self) -> Json {
        Json::str(match self {
            SharingKind::SessionCache => "SessionCache",
            SharingKind::Stek => "Stek",
            SharingKind::DhValue => "DhValue",
        })
    }

    /// Parse the archive form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "SessionCache" => Ok(SharingKind::SessionCache),
            "Stek" => Ok(SharingKind::Stek),
            "DhValue" => Ok(SharingKind::DhValue),
            other => Err(JsonError(format!("unknown SharingKind {other:?}"))),
        }
    }
}

impl TicketSighting {
    /// Archive form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("domain", Json::str(&self.domain)),
            ("day", Json::uint(self.day)),
            ("stek_id", Json::str(&self.stek_id)),
            ("lifetime_hint", Json::uint(self.lifetime_hint as u64)),
        ])
    }

    /// Parse the archive form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TicketSighting {
            domain: v.field("domain")?.as_str()?.to_string(),
            day: v.field("day")?.as_u64()?,
            stek_id: v.field("stek_id")?.as_str()?.to_string(),
            lifetime_hint: v.field("lifetime_hint")?.as_u32()?,
        })
    }
}

impl KexSighting {
    /// Archive form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("domain", Json::str(&self.domain)),
            ("day", Json::uint(self.day)),
            ("kex", self.kex.to_json()),
            ("value_fp", Json::str(&self.value_fp)),
        ])
    }

    /// Parse the archive form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(KexSighting {
            domain: v.field("domain")?.as_str()?.to_string(),
            day: v.field("day")?.as_u64()?,
            kex: KexKind::from_json(v.field("kex")?)?,
            value_fp: v.field("value_fp")?.as_str()?.to_string(),
        })
    }
}

impl ResumptionProbe {
    /// Archive form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("domain", Json::str(&self.domain)),
            ("mechanism", self.mechanism.to_json()),
            ("supported", Json::Bool(self.supported)),
            ("resumed_at_1s", Json::Bool(self.resumed_at_1s)),
            ("max_delay", self.max_delay.map_or(Json::Null, Json::uint)),
            (
                "lifetime_hint",
                self.lifetime_hint
                    .map_or(Json::Null, |h| Json::uint(h as u64)),
            ),
        ])
    }

    /// Parse the archive form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ResumptionProbe {
            domain: v.field("domain")?.as_str()?.to_string(),
            mechanism: ResumptionMechanism::from_json(v.field("mechanism")?)?,
            supported: v.field("supported")?.as_bool()?,
            resumed_at_1s: v.field("resumed_at_1s")?.as_bool()?,
            max_delay: v.field("max_delay")?.opt(|j| j.as_u64())?,
            lifetime_hint: v.field("lifetime_hint")?.opt(|j| j.as_u32())?,
        })
    }
}

impl SharingEdge {
    /// Archive form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("a", Json::str(&self.a)),
            ("b", Json::str(&self.b)),
            ("kind", self.kind.to_json()),
        ])
    }

    /// Parse the archive form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SharingEdge {
            a: v.field("a")?.as_str()?.to_string(),
            b: v.field("b")?.as_str()?.to_string(),
            kind: SharingKind::from_json(v.field("kind")?)?,
        })
    }
}

impl BurstSummary {
    /// Archive form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("domain", Json::str(&self.domain)),
            ("attempts", Json::uint(self.attempts as u64)),
            ("successes", Json::uint(self.successes as u64)),
            ("trusted", Json::Bool(self.trusted)),
            (
                "distinct_kex_values",
                self.distinct_kex_values
                    .map_or(Json::Null, |d| Json::uint(d as u64)),
            ),
            (
                "distinct_stek_ids",
                self.distinct_stek_ids
                    .map_or(Json::Null, |d| Json::uint(d as u64)),
            ),
            ("tickets_issued", Json::uint(self.tickets_issued as u64)),
        ])
    }

    /// Parse the archive form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(BurstSummary {
            domain: v.field("domain")?.as_str()?.to_string(),
            attempts: v.field("attempts")?.as_u32()?,
            successes: v.field("successes")?.as_u32()?,
            trusted: v.field("trusted")?.as_bool()?,
            distinct_kex_values: v.field("distinct_kex_values")?.opt(|j| j.as_u32())?,
            distinct_stek_ids: v.field("distinct_stek_ids")?.opt(|j| j.as_u32())?,
            tickets_issued: v.field("tickets_issued")?.as_u32()?,
        })
    }
}

/// Hex-encode helper shared by observation producers.
pub fn fingerprint_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_summary_classifications() {
        let base = BurstSummary {
            domain: "x.sim".into(),
            attempts: 10,
            successes: 10,
            trusted: true,
            distinct_kex_values: Some(10),
            distinct_stek_ids: Some(1),
            tickets_issued: 10,
        };
        assert!(!base.repeats_kex());
        assert!(!base.all_same_kex());
        assert!(base.repeats_stek());
        assert!(base.all_same_stek());

        let reuser = BurstSummary {
            distinct_kex_values: Some(3),
            ..base.clone()
        };
        assert!(reuser.repeats_kex());
        assert!(!reuser.all_same_kex());

        let always = BurstSummary {
            distinct_kex_values: Some(1),
            ..base.clone()
        };
        assert!(always.all_same_kex());

        let single = BurstSummary {
            successes: 1,
            tickets_issued: 1,
            distinct_kex_values: Some(1),
            distinct_stek_ids: Some(1),
            ..base.clone()
        };
        assert!(!single.repeats_kex(), "one success can't show reuse");
        assert!(!single.all_same_stek());
    }

    #[test]
    fn json_roundtrip() {
        let s = TicketSighting {
            domain: "a.sim".into(),
            day: 5,
            stek_id: "aabb".into(),
            lifetime_hint: 300,
        };
        let json = s.to_json().to_json_string();
        assert_eq!(
            TicketSighting::from_json(&Json::parse(&json).unwrap()).unwrap(),
            s
        );
        let p = ResumptionProbe {
            domain: "a.sim".into(),
            mechanism: ResumptionMechanism::Ticket,
            supported: true,
            resumed_at_1s: true,
            max_delay: Some(300),
            lifetime_hint: Some(300),
        };
        let json = p.to_json().to_json_string();
        assert_eq!(
            ResumptionProbe::from_json(&Json::parse(&json).unwrap()).unwrap(),
            p
        );

        let none_probe = ResumptionProbe {
            max_delay: None,
            lifetime_hint: None,
            ..p
        };
        let json = none_probe.to_json().to_json_string();
        assert_eq!(
            ResumptionProbe::from_json(&Json::parse(&json).unwrap()).unwrap(),
            none_probe
        );

        let k = KexSighting {
            domain: "b.sim".into(),
            day: 2,
            kex: KexKind::Ecdhe,
            value_fp: "0011".into(),
        };
        let json = k.to_json().to_json_string();
        assert_eq!(
            KexSighting::from_json(&Json::parse(&json).unwrap()).unwrap(),
            k
        );

        let e = SharingEdge {
            a: "a.sim".into(),
            b: "b.sim".into(),
            kind: SharingKind::Stek,
        };
        let json = e.to_json().to_json_string();
        assert_eq!(
            SharingEdge::from_json(&Json::parse(&json).unwrap()).unwrap(),
            e
        );
    }

    #[test]
    fn fingerprints_hex() {
        assert_eq!(fingerprint_hex(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(fingerprint_hex(&[]), "");
    }
}
