//! Deterministic fan-out shared by the scan and bench layers.
//!
//! Moved here from `ts-bench` so `ts-scanner` and future subsystems can
//! share one implementation (`ts-bench` re-exports these for
//! compatibility). The contract is stronger than "concatenate in chunk
//! order": the *chunk layout itself* is a pure function of the item count.
//! Callers derive DRBG seeds from chunk ids (`daily-campaign-{day}-{id}`),
//! so if the layout followed the worker count, a 4-core laptop and a
//! 64-core server would seed different scanners and print different
//! tables. Instead the input is always split into [`DETERMINISTIC_CHUNKS`]
//! slices and worker threads pull chunk indices from a shared queue —
//! workers only change wall-clock time, never results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fixed chunk count: every input is split into at most this many chunks,
/// regardless of how many worker threads execute them.
pub const DETERMINISTIC_CHUNKS: usize = 64;

/// Worker-count override (0 = use [`available_parallelism`]), settable once
/// by the binary's `--workers` flag.
///
/// [`available_parallelism`]: std::thread::available_parallelism
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Deterministic parallel map: split `items` into [`DETERMINISTIC_CHUNKS`]
/// chunks, run `f(chunk_id, chunk)` on `workers` threads, concatenate in
/// chunk order. Both the chunk boundaries and the ids passed to `f` depend
/// only on `items.len()`, so the result is a pure function of
/// `(items, f)` — `workers` affects only how fast it finishes.
pub fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(usize, &[T]) -> Vec<R> + Sync,
) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let chunk_size = items.len().div_ceil(DETERMINISTIC_CHUNKS).max(1);
    let chunks: Vec<(usize, &[T])> = items.chunks(chunk_size).enumerate().collect();
    let workers = workers.max(1).min(chunks.len());
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunks.len()));
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let next = &next;
            let done = &done;
            let chunks = &chunks;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(id, chunk)) = chunks.get(i) else {
                    break;
                };
                let result = f(id, chunk);
                done.lock().expect("result sink").push((id, result));
            });
        }
    })
    .expect("scope");
    let mut out = done.into_inner().expect("result sink");
    out.sort_by_key(|(id, _)| *id);
    out.into_iter().flat_map(|(_, v)| v).collect()
}

/// Default worker count: the `--workers` override when set, otherwise the
/// machine's available parallelism.
pub fn default_workers() -> usize {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        n => n,
    }
}

/// Pin [`default_workers`] to `n` (0 restores the hardware default). Used
/// by `repro --workers N`, and by the determinism harness to prove that
/// worker count cannot reach the output.
pub fn set_default_workers(n: usize) {
    WORKER_OVERRIDE.store(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let doubled = parallel_map(&items, 7, |_id, chunk| {
            chunk.iter().map(|x| x * 2).collect()
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |_, c| c.to_vec()).is_empty());
        let one = vec![9u32];
        assert_eq!(parallel_map(&one, 16, |_, c| c.to_vec()), vec![9]);
    }

    #[test]
    fn chunk_layout_ignores_worker_count() {
        // The determinism contract: chunk ids and boundaries are a pure
        // function of the item count, so chunk-id-derived seeds match
        // across machines with different core counts.
        let items: Vec<u32> = (0..997).collect();
        let layout = |workers| {
            parallel_map(&items, workers, |id, chunk| {
                vec![(id, chunk.first().copied(), chunk.len())]
            })
        };
        let one = layout(1);
        assert_eq!(one, layout(3));
        assert_eq!(one, layout(8));
        assert_eq!(one, layout(61));
    }

    #[test]
    fn large_inputs_use_all_chunks() {
        let items: Vec<u32> = (0..1024).collect();
        let ids = parallel_map(&items, 4, |id, chunk| vec![id; chunk.len()]);
        let distinct: std::collections::BTreeSet<usize> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), DETERMINISTIC_CHUNKS);
    }

    #[test]
    fn worker_override_round_trips() {
        set_default_workers(3);
        assert_eq!(default_workers(), 3);
        set_default_workers(0);
        assert!(default_workers() >= 1);
    }
}
