//! Deterministic fan-out shared by the scan and bench layers.
//!
//! Moved here from `ts-bench` so `ts-scanner` and future subsystems can
//! share one implementation (`ts-bench` re-exports these for
//! compatibility). The contract is the one the experiment harness relies
//! on: results are concatenated in *chunk order*, so a run is a pure
//! function of `(items, workers, f)` no matter how the OS schedules the
//! worker threads.

/// Deterministic parallel map: split `items` into chunks, run `f(chunk_id,
/// chunk)` on worker threads, concatenate in chunk order.
pub fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(usize, &[T]) -> Vec<R> + Sync,
) -> Vec<R> {
    let workers = workers.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    let chunk_size = items.len().div_ceil(workers);
    let chunks: Vec<(usize, &[T])> = items.chunks(chunk_size).enumerate().collect();
    let mut out: Vec<(usize, Vec<R>)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|(id, chunk)| {
                let f = &f;
                let id = *id;
                let chunk = *chunk;
                scope.spawn(move |_| (id, f(id, chunk)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    })
    .expect("scope");
    out.sort_by_key(|(id, _)| *id);
    out.into_iter().flat_map(|(_, v)| v).collect()
}

/// Default worker count.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let doubled = parallel_map(&items, 7, |_id, chunk| {
            chunk.iter().map(|x| x * 2).collect()
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |_, c| c.to_vec()).is_empty());
        let one = vec![9u32];
        assert_eq!(parallel_map(&one, 16, |_, c| c.to_vec()), vec![9]);
    }

    #[test]
    fn chunk_ids_cover_all_workers() {
        let items: Vec<u32> = (0..64).collect();
        let ids = parallel_map(&items, 4, |id, chunk| vec![id; chunk.len()]);
        let distinct: std::collections::BTreeSet<usize> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }
}
