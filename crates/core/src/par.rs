//! Deterministic fan-out shared by the scan and bench layers.
//!
//! Moved here from `ts-bench` so `ts-scanner` and future subsystems can
//! share one implementation (`ts-bench` re-exports these for
//! compatibility). The contract is stronger than "concatenate in chunk
//! order": the *chunk layout itself* is a pure function of the item count.
//! Callers derive DRBG seeds from chunk ids (`daily-campaign-{day}-{id}`),
//! so if the layout followed the worker count, a 4-core laptop and a
//! 64-core server would seed different scanners and print different
//! tables. Instead the input is always split into [`DETERMINISTIC_CHUNKS`]
//! slices and worker threads pull chunk indices from a shared queue —
//! workers only change wall-clock time, never results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fixed chunk count: every input is split into at most this many chunks,
/// regardless of how many worker threads execute them.
pub const DETERMINISTIC_CHUNKS: usize = 64;

/// The fixed, count-derived shard layout behind [`parallel_map`], exposed
/// so callers can partition *state* (per-shard accumulators, scanner
/// seeds) along exactly the same boundaries as the work items. Two values
/// of `for_len(n)` are interchangeable: the layout is a pure function of
/// the item count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    len: usize,
    chunk_size: usize,
}

impl ShardPlan {
    /// The layout [`parallel_map`] uses for `len` items.
    pub fn for_len(len: usize) -> Self {
        ShardPlan {
            len,
            chunk_size: len.div_ceil(DETERMINISTIC_CHUNKS).max(1),
        }
    }

    /// Number of shards (0 for an empty input, otherwise 1..=64).
    pub fn shard_count(&self) -> usize {
        self.len.div_ceil(self.chunk_size)
    }

    /// Item count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for the empty layout.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index range of shard `shard` (matches `items.chunks(chunk_size)`).
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        let start = shard * self.chunk_size;
        start..((start + self.chunk_size).min(self.len))
    }

    /// Which shard item `index` belongs to.
    pub fn shard_of(&self, index: usize) -> usize {
        index / self.chunk_size
    }
}

/// Run `f(shard_id, &mut states[shard_id])` for every shard on `workers`
/// threads. The mutable-state sibling of [`parallel_map`]: each shard's
/// state is visited exactly once, shards are pulled from a shared queue,
/// and because every shard owns disjoint state the result is a pure
/// function of `(states, f)` — worker count only changes wall time.
pub fn for_each_shard<S: Send>(states: &mut [S], workers: usize, f: impl Fn(usize, &mut S) + Sync) {
    if states.is_empty() {
        return;
    }
    let workers = workers.max(1).min(states.len());
    let cells: Vec<Mutex<&mut S>> = states.iter_mut().map(Mutex::new).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let next = &next;
            let cells = &cells;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else {
                    break;
                };
                let mut state = cell.lock().expect("shard state");
                f(i, &mut state);
            });
        }
    })
    .expect("scope");
}

/// Worker-count override (0 = use [`available_parallelism`]), settable once
/// by the binary's `--workers` flag.
///
/// [`available_parallelism`]: std::thread::available_parallelism
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Deterministic parallel map: split `items` into [`DETERMINISTIC_CHUNKS`]
/// chunks, run `f(chunk_id, chunk)` on `workers` threads, concatenate in
/// chunk order. Both the chunk boundaries and the ids passed to `f` depend
/// only on `items.len()`, so the result is a pure function of
/// `(items, f)` — `workers` affects only how fast it finishes.
pub fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(usize, &[T]) -> Vec<R> + Sync,
) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let chunk_size = items.len().div_ceil(DETERMINISTIC_CHUNKS).max(1);
    let chunks: Vec<(usize, &[T])> = items.chunks(chunk_size).enumerate().collect();
    let workers = workers.max(1).min(chunks.len());
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunks.len()));
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let next = &next;
            let done = &done;
            let chunks = &chunks;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(id, chunk)) = chunks.get(i) else {
                    break;
                };
                let result = f(id, chunk);
                done.lock().expect("result sink").push((id, result));
            });
        }
    })
    .expect("scope");
    let mut out = done.into_inner().expect("result sink");
    out.sort_by_key(|(id, _)| *id);
    out.into_iter().flat_map(|(_, v)| v).collect()
}

/// Default worker count: the `--workers` override when set, otherwise the
/// machine's available parallelism.
pub fn default_workers() -> usize {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        n => n,
    }
}

/// Pin [`default_workers`] to `n` (0 restores the hardware default). Used
/// by `repro --workers N`, and by the determinism harness to prove that
/// worker count cannot reach the output.
pub fn set_default_workers(n: usize) {
    WORKER_OVERRIDE.store(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let doubled = parallel_map(&items, 7, |_id, chunk| {
            chunk.iter().map(|x| x * 2).collect()
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |_, c| c.to_vec()).is_empty());
        let one = vec![9u32];
        assert_eq!(parallel_map(&one, 16, |_, c| c.to_vec()), vec![9]);
    }

    #[test]
    fn chunk_layout_ignores_worker_count() {
        // The determinism contract: chunk ids and boundaries are a pure
        // function of the item count, so chunk-id-derived seeds match
        // across machines with different core counts.
        let items: Vec<u32> = (0..997).collect();
        let layout = |workers| {
            parallel_map(&items, workers, |id, chunk| {
                vec![(id, chunk.first().copied(), chunk.len())]
            })
        };
        let one = layout(1);
        assert_eq!(one, layout(3));
        assert_eq!(one, layout(8));
        assert_eq!(one, layout(61));
    }

    #[test]
    fn large_inputs_use_all_chunks() {
        let items: Vec<u32> = (0..1024).collect();
        let ids = parallel_map(&items, 4, |id, chunk| vec![id; chunk.len()]);
        let distinct: std::collections::BTreeSet<usize> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), DETERMINISTIC_CHUNKS);
    }

    #[test]
    fn shard_plan_matches_parallel_map_layout() {
        // ShardPlan is advertised as *the* parallel_map layout; keep the
        // two in lockstep for a spread of sizes including the edge cases
        // (empty, single, exactly 64, one over a chunk boundary).
        for n in [0usize, 1, 5, 63, 64, 65, 128, 997, 1024, 100_000] {
            let items: Vec<usize> = (0..n).collect();
            let plan = ShardPlan::for_len(n);
            let observed = parallel_map(&items, 4, |id, chunk| vec![(id, chunk[0], chunk.len())]);
            assert_eq!(plan.shard_count(), observed.len(), "n={n}");
            for (id, first, len) in observed {
                let range = plan.range(id);
                assert_eq!(range.start, first, "n={n} shard={id}");
                assert_eq!(range.len(), len, "n={n} shard={id}");
            }
            for i in 0..n {
                assert!(plan.range(plan.shard_of(i)).contains(&i));
            }
        }
    }

    #[test]
    fn for_each_shard_is_worker_independent() {
        let run = |workers| {
            let mut states: Vec<Vec<usize>> = vec![Vec::new(); 37];
            for_each_shard(&mut states, workers, |shard, state| {
                state.push(shard * 3);
                state.push(shard * 3 + 1);
            });
            states
        };
        let one = run(1);
        assert_eq!(one, run(4));
        assert_eq!(one, run(16));
        assert_eq!(one[36], vec![108, 109]);
        let mut empty: Vec<u8> = Vec::new();
        for_each_shard(&mut empty, 4, |_, _| unreachable!());
    }

    #[test]
    fn worker_override_round_trips() {
        set_default_workers(3);
        assert_eq!(default_workers(), 3);
        set_default_workers(0);
        assert!(default_workers() >= 1);
    }
}
