//! Text rendering for experiment reports.
//!
//! Every table/figure reproduction prints through these helpers so the
//! `repro` binary's output is uniform: aligned columns, an optional
//! "paper" column for side-by-side comparison, and duration formatting in
//! the paper's units.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience for &str cells.
    pub fn row_str(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a duration in the paper's units (minutes / hours / days).
pub fn fmt_duration(secs: u64) -> String {
    const MINUTE: u64 = 60;
    const HOUR: u64 = 3_600;
    const DAY: u64 = 86_400;
    if secs == u64::MAX {
        return "forever".into();
    }
    if secs >= DAY {
        let d = secs as f64 / DAY as f64;
        if (d - d.round()).abs() < 0.01 {
            format!("{}d", d.round() as u64)
        } else {
            format!("{d:.1}d")
        }
    } else if secs >= HOUR {
        let h = secs as f64 / HOUR as f64;
        if (h - h.round()).abs() < 0.01 {
            format!("{}h", h.round() as u64)
        } else {
            format!("{h:.1}h")
        }
    } else if secs >= MINUTE {
        format!("{}m", secs / MINUTE)
    } else {
        format!("{secs}s")
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// A paper-vs-measured comparison line for EXPERIMENTS.md-style output.
pub fn compare_line(metric: &str, paper: &str, measured: &str) -> String {
    format!("{metric:<46} paper: {paper:<12} measured: {measured}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["Domain", "Days"]);
        t.row_str(&["yahoo.sim", "63"]);
        t.row_str(&["x.sim", "5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Domain"));
        assert!(lines[2].starts_with("yahoo.sim"));
        // Columns aligned: "Days"/"63" start at the same offset.
        let col = lines[0].find("Days").unwrap();
        assert_eq!(lines[2].find("63").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn durations_match_paper_units() {
        assert_eq!(fmt_duration(0), "0s");
        assert_eq!(fmt_duration(59), "59s");
        assert_eq!(fmt_duration(300), "5m");
        assert_eq!(fmt_duration(3_600), "1h");
        assert_eq!(fmt_duration(18 * 3_600), "18h");
        assert_eq!(fmt_duration(86_400), "1d");
        assert_eq!(fmt_duration(63 * 86_400), "63d");
        assert_eq!(fmt_duration(u64::MAX), "forever");
        assert_eq!(fmt_duration(129_600), "1.5d");
    }

    #[test]
    fn pct_and_compare() {
        assert_eq!(pct(0.3811), "38.1%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
        let line = compare_line("domains >24h", "38%", "37.2%");
        assert!(line.contains("paper: 38%"));
        assert!(line.contains("measured: 37.2%"));
    }
}
