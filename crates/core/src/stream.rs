//! Streaming, mergeable accumulators for sharded campaigns.
//!
//! The collect-then-sort pipeline (`Vec<TicketSighting>` → sort → group)
//! holds every observation of a nine-week campaign in memory at once —
//! O(domain-days), which is what caps `repro` near `--size 20000`. The
//! types here replace it with bounded state:
//!
//! * [`SpanAcc`] — the streaming [`SpanEstimator`]: live (domain, id)
//!   ranges plus per-domain closed aggregates, with an optional eviction
//!   horizon that retires pairs not sighted for `h` days;
//! * [`CountCdf`] — an exact CDF over value→count entries instead of a
//!   sorted sample vector (campaign values repeat heavily: day counts,
//!   window seconds);
//! * [`TierAcc`] — the streaming tier-CDF builder behind Figure 4;
//! * [`GroupAcc`] — incremental union-find over (domain, shared-id)
//!   sightings, storing no edge list;
//! * [`TopK`] — bounded top-k selection for the notable-reuser tables.
//!
//! Every accumulator implements [`Merge`] with the law that drives the
//! sharded campaign: feeding a stream through one accumulator, or
//! splitting it across several and merging them (in any order, any
//! grouping), yields the same analysis results. Eviction keeps the law on
//! *domain-partitioned* splits — per-domain state never straddles two
//! accumulators, so retiring a pair locally is the same as retiring it
//! globally.
//!
//! [`SpanEstimator`]: crate::lifetime::SpanEstimator

use crate::cdf::Cdf;
use crate::lifetime::DomainSpans;
use crate::tiers::Tier;
use std::collections::{BTreeMap, HashMap};

/// The shard-merge law: `a.merge(b)` folds `b`'s stream into `a`.
///
/// Implementations guarantee that merging is associative and — up to
/// internal bookkeeping that never reaches query results — commutative,
/// so a fixed merge order (shard 0, 1, 2, …) gives the same answers as
/// one accumulator fed the concatenated stream.
pub trait Merge {
    /// Fold `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// 128-bit FNV-1a over a string — the shard-stable identifier
/// fingerprint.
///
/// Streams hand accumulators identifier *strings* (STEK key names, DH
/// value fingerprints); storing each one per live pair would dominate
/// peak memory. A 128-bit fingerprint keeps collision probability
/// negligible at a billion ids (~10⁻²⁰) and is a pure function of the
/// bytes, so every shard and process agrees on it.
pub fn fp128(s: &str) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in s.as_bytes() {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Set of study days, packed 64 per word so merge is a bitwise OR.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct DaySet {
    words: Vec<u64>,
}

impl DaySet {
    fn insert(&mut self, day: u64) {
        let word = (day / 64) as usize;
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (day % 64);
    }

    fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn union(&mut self, other: &DaySet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }
}

/// Per-domain aggregate of pairs already retired by the horizon.
#[derive(Debug, Clone, Default)]
struct DomainAgg {
    max_closed_span: u64,
    closed_ids: u64,
    days: DaySet,
}

/// Streaming first/last-seen span estimation — the mergeable form of
/// [`SpanEstimator`](crate::lifetime::SpanEstimator).
///
/// With `horizon_days = None` the accumulator is exact and its queries
/// match `SpanEstimator` on the same stream. With `Some(h)`, a live
/// (domain, id) pair whose last sighting is more than `h` days behind the
/// watermark is folded into a per-domain aggregate (its span is final);
/// peak live state is then O(domains + pairs inside the horizon) instead
/// of O(all pairs ever). The horizon contract: an identifier that has
/// been absent for `h` days never reappears — true of the simulation
/// (STEK managers do not resurrect retired keys; reuse windows are
/// contiguous) and of any reasonable server implementation.
#[derive(Debug, Clone)]
pub struct SpanAcc {
    horizon_days: Option<u64>,
    watermark: u64,
    // (domain, id fingerprint) -> (first_day, last_day). Ordered so
    // domain_spans() can group by domain in one keyed pass.
    live: BTreeMap<(String, u128), (u64, u64)>,
    domains: BTreeMap<String, DomainAgg>,
    closed_pairs: u64,
    live_high_water: usize,
}

impl SpanAcc {
    /// Exact accumulator (never evicts) — query-equivalent to
    /// `SpanEstimator`.
    pub fn exact() -> Self {
        Self::with_horizon(None)
    }

    /// Accumulator that retires pairs unsighted for `horizon_days`.
    pub fn with_horizon(horizon_days: Option<u64>) -> Self {
        SpanAcc {
            horizon_days,
            watermark: 0,
            live: BTreeMap::new(),
            domains: BTreeMap::new(),
            closed_pairs: 0,
            live_high_water: 0,
        }
    }

    /// Record one sighting of `id` at `domain` on `day`.
    pub fn record(&mut self, domain: &str, id: &str, day: u64) {
        self.watermark = self.watermark.max(day);
        let entry = self
            .live
            .entry((domain.to_string(), fp128(id)))
            .or_insert((day, day));
        entry.0 = entry.0.min(day);
        entry.1 = entry.1.max(day);
        self.domains
            .entry(domain.to_string())
            .or_default()
            .days
            .insert(day);
        self.live_high_water = self.live_high_water.max(self.live.len());
    }

    /// Advance the watermark to `day` and retire pairs past the horizon.
    /// Call once per completed campaign day; a no-op in exact mode.
    pub fn advance(&mut self, day: u64) {
        self.watermark = self.watermark.max(day);
        let Some(h) = self.horizon_days else {
            return;
        };
        let cutoff = match self.watermark.checked_sub(h) {
            Some(c) => c,
            None => return,
        };
        let mut retired: Vec<(String, u64)> = Vec::new();
        self.live.retain(|(domain, _), &mut (first, last)| {
            if last < cutoff {
                retired.push((domain.clone(), last - first + 1));
                false
            } else {
                true
            }
        });
        for (domain, span) in retired {
            let agg = self.domains.entry(domain).or_default();
            agg.max_closed_span = agg.max_closed_span.max(span);
            agg.closed_ids += 1;
            self.closed_pairs += 1;
        }
    }

    /// Per-domain span statistics, keyed in domain order — the
    /// [`SpanEstimator::domain_spans`](crate::lifetime::SpanEstimator::domain_spans)
    /// shape.
    pub fn domain_spans(&self) -> BTreeMap<String, DomainSpans> {
        let mut out: BTreeMap<String, DomainSpans> = self
            .domains
            .iter()
            .filter(|(_, agg)| agg.days.len() > 0)
            .map(|(domain, agg)| {
                (
                    domain.clone(),
                    DomainSpans {
                        max_span_days: agg.max_closed_span,
                        distinct_ids: agg.closed_ids as usize,
                        days_seen: agg.days.len(),
                    },
                )
            })
            .collect();
        for ((domain, _), &(first, last)) in &self.live {
            let ds = out
                .get_mut(domain)
                .expect("live pair implies domain recorded");
            ds.max_span_days = ds.max_span_days.max(last - first + 1);
            ds.distinct_ids += 1;
        }
        out
    }

    /// Span of one live (domain, id) pair; pairs retired by the horizon
    /// are no longer individually addressable.
    pub fn span_of(&self, domain: &str, id: &str) -> Option<u64> {
        self.live
            .get(&(domain.to_string(), fp128(id)))
            .map(|&(first, last)| last - first + 1)
    }

    /// Domains whose longest span is at least `days`, sorted by span
    /// descending then name.
    pub fn domains_with_span_at_least(&self, days: u64) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .domain_spans()
            .into_iter()
            .filter(|(_, s)| s.max_span_days >= days)
            .map(|(d, s)| (d, s.max_span_days))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// All per-domain max spans (for CDF building).
    pub fn max_spans(&self) -> Vec<u64> {
        self.domain_spans()
            .values()
            .map(|s| s.max_span_days)
            .collect()
    }

    /// Total distinct (domain, id) pairs seen (live + retired).
    pub fn pair_count(&self) -> usize {
        self.live.len() + self.closed_pairs as usize
    }

    /// Currently live (unretired) pairs.
    pub fn live_pairs(&self) -> usize {
        self.live.len()
    }

    /// High-water mark of live pairs — the memory the horizon bounds.
    pub fn live_high_water(&self) -> usize {
        self.live_high_water
    }

    /// Latest day observed.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }
}

impl Default for SpanAcc {
    fn default() -> Self {
        Self::exact()
    }
}

impl Merge for SpanAcc {
    fn merge(&mut self, other: SpanAcc) {
        debug_assert_eq!(
            self.horizon_days, other.horizon_days,
            "merging accumulators with different horizons"
        );
        self.watermark = self.watermark.max(other.watermark);
        self.closed_pairs += other.closed_pairs;
        for ((domain, id), (first, last)) in other.live {
            let entry = self.live.entry((domain, id)).or_insert((first, last));
            entry.0 = entry.0.min(first);
            entry.1 = entry.1.max(last);
        }
        for (domain, agg) in other.domains {
            let mine = self.domains.entry(domain).or_default();
            mine.max_closed_span = mine.max_closed_span.max(agg.max_closed_span);
            mine.closed_ids += agg.closed_ids;
            mine.days.union(&agg.days);
        }
        self.live_high_water = self
            .live_high_water
            .max(other.live_high_water)
            .max(self.live.len());
    }
}

/// An exact empirical CDF stored as value→count — the mergeable,
/// bounded-memory form of [`Cdf`].
///
/// Query semantics match `Cdf` exactly (including nearest-rank
/// quantiles); memory is O(distinct values) instead of O(samples), and
/// campaign samples (spans in days, windows in seconds at day
/// granularity) repeat heavily.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountCdf {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl CountCdf {
    /// Empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from samples (any order).
    pub fn from_samples(samples: impl IntoIterator<Item = u64>) -> Self {
        let mut c = Self::new();
        for s in samples {
            c.add(s);
        }
        c
    }

    /// Add one sample.
    pub fn add(&mut self, value: u64) {
        self.add_n(value, 1);
    }

    /// Add `n` samples of `value`.
    pub fn add_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Count of samples ≤ `x`.
    pub fn count_le(&self, x: u64) -> usize {
        self.counts.range(..=x).map(|(_, c)| *c as usize).sum()
    }

    /// Fraction of samples ≤ `x` (the CDF value). 0.0 for empty.
    pub fn fraction_le(&self, x: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count_le(x) as f64 / self.total as f64
    }

    /// Fraction of samples ≥ `x` (the survival function at x).
    pub fn fraction_ge(&self, x: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count_ge(x) as f64 / self.total as f64
    }

    /// Count of samples ≥ `x`.
    pub fn count_ge(&self, x: u64) -> usize {
        self.counts.range(x..).map(|(_, c)| *c as usize).sum()
    }

    /// Quantile (0.0..=1.0) by nearest-rank. None if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64)
            .max(1)
            .min(self.total);
        let mut cumulative = 0;
        for (&value, &count) in &self.counts {
            cumulative += count;
            if cumulative >= rank {
                return Some(value);
            }
        }
        unreachable!("rank <= total")
    }

    /// Median by nearest rank.
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// The CDF evaluated at each breakpoint: `(x, fraction ≤ x)` rows.
    pub fn series(&self, breakpoints: &[u64]) -> Vec<(u64, f64)> {
        breakpoints
            .iter()
            .map(|&x| (x, self.fraction_le(x)))
            .collect()
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Materialize as a sorted-sample [`Cdf`] (tests, small outputs).
    pub fn to_cdf(&self) -> Cdf {
        let mut samples = Vec::with_capacity(self.total as usize);
        for (&value, &count) in &self.counts {
            samples.extend(std::iter::repeat(value).take(count as usize));
        }
        Cdf::from_samples(samples)
    }
}

impl Merge for CountCdf {
    fn merge(&mut self, other: CountCdf) {
        for (value, count) in other.counts {
            self.add_n(value, count);
        }
    }
}

/// Streaming tier-CDF builder (Figure 4): records (rank, value) pairs
/// into the cumulative rank tiers without materializing the sample list.
#[derive(Debug, Clone)]
pub struct TierAcc {
    tiers: Vec<Tier>,
    cdfs: Vec<CountCdf>,
}

impl TierAcc {
    /// Builder over the given tiers (see
    /// [`tiers_for_population`](crate::tiers::tiers_for_population)).
    pub fn new(tiers: &[Tier]) -> Self {
        TierAcc {
            tiers: tiers.to_vec(),
            cdfs: vec![CountCdf::new(); tiers.len()],
        }
    }

    /// Record one (rank, value) sample into every tier it falls in
    /// (tiers are cumulative: Top 1K contains Top 100).
    pub fn record(&mut self, rank: usize, value: u64) {
        for (tier, cdf) in self.tiers.iter().zip(&mut self.cdfs) {
            if rank <= tier.limit {
                cdf.add(value);
            }
        }
    }

    /// Per-tier CDFs in tier order — the
    /// [`tier_cdfs`](crate::tiers::tier_cdfs) shape.
    pub fn cdfs(&self) -> BTreeMap<&'static str, CountCdf> {
        self.tiers
            .iter()
            .zip(&self.cdfs)
            .map(|(tier, cdf)| (tier.label, cdf.clone()))
            .collect()
    }

    /// The tiers this accumulator was built over.
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }
}

impl Merge for TierAcc {
    fn merge(&mut self, other: TierAcc) {
        debug_assert_eq!(
            self.tiers.len(),
            other.tiers.len(),
            "merging tier accumulators with different layouts"
        );
        for (mine, theirs) in self.cdfs.iter_mut().zip(other.cdfs) {
            mine.merge(theirs);
        }
    }
}

/// Streaming service-group construction — the mergeable form of
/// [`groups_from_shared_ids`](crate::groups::groups_from_shared_ids).
///
/// Holds an *incremental* union-find (no edge list, unlike
/// [`DisjointSets`](crate::unionfind::DisjointSets)) plus one
/// first-holder entry per live identifier, so memory is O(domains + ids
/// inside the horizon) rather than O(sightings). Fed the same stream in
/// the same order, `groups()` equals the batch constructor's output
/// exactly: names are interned in first-appearance order, the partition
/// is closed over the same (first-holder, domain) edges, and sets are
/// ordered by (size desc, min member index) before labelling.
#[derive(Debug, Clone, Default)]
pub struct GroupAcc {
    horizon_days: Option<u64>,
    watermark: u64,
    // Lookup-only hash map (get/insert; never iterated): insertion order
    // is captured by `names`, so the hash seed cannot leak into results.
    indices: HashMap<String, usize>,
    names: Vec<String>,
    parent: Vec<usize>,
    size: Vec<usize>,
    // id fingerprint -> (first holder index, last day sighted)
    holders: BTreeMap<u128, (usize, u64)>,
    evicted_ids: u64,
    holders_high_water: usize,
}

impl GroupAcc {
    /// Exact accumulator (keeps every identifier's first holder).
    pub fn exact() -> Self {
        Self::with_horizon(None)
    }

    /// Accumulator that forgets identifiers unsighted for
    /// `horizon_days`. The horizon contract is contemporaneity: domains
    /// sharing an identifier present it in the same period, so the
    /// sharing edge forms before the id can be evicted.
    pub fn with_horizon(horizon_days: Option<u64>) -> Self {
        GroupAcc {
            horizon_days,
            ..Self::default()
        }
    }

    fn index(&mut self, key: &str) -> usize {
        if let Some(&i) = self.indices.get(key) {
            return i;
        }
        let i = self.names.len();
        self.indices.insert(key.to_string(), i);
        self.names.push(key.to_string());
        self.parent.push(i);
        self.size.push(1);
        i
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }

    /// Register a domain with no sighting (a singleton until connected).
    pub fn add(&mut self, domain: &str) {
        self.index(domain);
    }

    /// Record that `domain` presented shared identifier `id` on `day`.
    pub fn record(&mut self, domain: &str, id: &str, day: u64) {
        self.watermark = self.watermark.max(day);
        let di = self.index(domain);
        let fp = fp128(id);
        match self.holders.get_mut(&fp) {
            Some((holder, last)) => {
                *last = (*last).max(day);
                let holder = *holder;
                self.union(holder, di);
            }
            None => {
                self.holders.insert(fp, (di, day));
            }
        }
        self.holders_high_water = self.holders_high_water.max(self.holders.len());
    }

    /// Advance the watermark to `day` and forget identifiers past the
    /// horizon (their sharing edges are already in the partition).
    pub fn advance(&mut self, day: u64) {
        self.watermark = self.watermark.max(day);
        let Some(h) = self.horizon_days else {
            return;
        };
        let cutoff = match self.watermark.checked_sub(h) {
            Some(c) => c,
            None => return,
        };
        let before = self.holders.len();
        self.holders.retain(|_, &mut (_, last)| last >= cutoff);
        self.evicted_ids += (before - self.holders.len()) as u64;
    }

    /// All groups as sorted member-name vectors, ordered (size desc, min
    /// member index) — the
    /// [`DisjointSets::groups`](crate::unionfind::DisjointSets::groups)
    /// shape, ready for
    /// [`finalize_groups`](crate::groups::finalize_groups).
    pub fn groups(&mut self) -> Vec<Vec<String>> {
        if self.names.is_empty() {
            return Vec::new();
        }
        let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..self.names.len() {
            let r = self.find(i);
            by_root.entry(r).or_default().push(i);
        }
        let mut sets: Vec<Vec<usize>> = by_root.into_values().collect();
        for s in &mut sets {
            s.sort_unstable();
        }
        sets.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        sets.into_iter()
            .map(|set| {
                let mut g: Vec<String> = set.into_iter().map(|i| self.names[i].clone()).collect();
                g.sort();
                g
            })
            .collect()
    }

    /// Labelled, ordered service groups — equals
    /// [`groups_from_shared_ids`](crate::groups::groups_from_shared_ids)
    /// on the same stream.
    pub fn service_groups(&mut self) -> Vec<crate::groups::ServiceGroup> {
        crate::groups::finalize_groups(self.groups())
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no domains registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Identifiers currently tracked (inside the horizon).
    pub fn live_ids(&self) -> usize {
        self.holders.len()
    }

    /// High-water mark of tracked identifiers.
    pub fn ids_high_water(&self) -> usize {
        self.holders_high_water
    }

    /// Identifiers forgotten by the horizon.
    pub fn evicted_ids(&self) -> u64 {
        self.evicted_ids
    }
}

impl Merge for GroupAcc {
    fn merge(&mut self, other: GroupAcc) {
        debug_assert_eq!(
            self.horizon_days, other.horizon_days,
            "merging group accumulators with different horizons"
        );
        self.watermark = self.watermark.max(other.watermark);
        self.evicted_ids += other.evicted_ids;
        // Intern the other side's names in insertion order, then join the
        // partitions: unioning each member with its root reproduces the
        // closure of the combined edge streams.
        let mut other = other;
        let remap: Vec<usize> = (0..other.names.len())
            .map(|i| self.index(&other.names[i]))
            .collect();
        for i in 0..other.names.len() {
            let root = other.find(i);
            if root != i {
                self.union(remap[i], remap[root]);
            }
        }
        for (fp, (holder, last)) in std::mem::take(&mut other.holders) {
            let holder = remap[holder];
            match self.holders.get_mut(&fp) {
                Some((mine, mine_last)) => {
                    *mine_last = (*mine_last).max(last);
                    let mine = *mine;
                    self.union(mine, holder);
                }
                None => {
                    self.holders.insert(fp, (holder, last));
                }
            }
        }
        self.holders_high_water = self
            .holders_high_water
            .max(other.holders_high_water)
            .max(self.holders.len());
    }
}

/// Bounded top-k selection by (value desc, name asc) — the order of the
/// notable-reuser tables.
#[derive(Debug, Clone)]
pub struct TopK {
    // Named `limit` rather than `k`: the workspace secret model taints
    // any field spelled `k` (HmacDrbg's key half), and a selection bound
    // must stay freely comparable.
    limit: usize,
    // Kept sorted by (value desc, name asc); at most `limit` entries.
    entries: Vec<(u64, String)>,
}

impl TopK {
    /// Selector keeping the `k` largest entries.
    pub fn new(k: usize) -> Self {
        TopK {
            limit: k,
            entries: Vec::with_capacity(k.min(64)),
        }
    }

    /// Offer one (name, value) candidate.
    pub fn push(&mut self, name: &str, value: u64) {
        if self.limit == 0 {
            return;
        }
        if self.entries.len() == self.limit {
            let worst = self.entries.last().expect("non-empty at capacity");
            if (std::cmp::Reverse(value), name) >= (std::cmp::Reverse(worst.0), worst.1.as_str()) {
                return;
            }
        }
        let pos = self.entries.partition_point(|(v, n)| {
            (std::cmp::Reverse(*v), n.as_str()) < (std::cmp::Reverse(value), name)
        });
        self.entries.insert(pos, (value, name.to_string()));
        self.entries.truncate(self.limit);
    }

    /// The retained entries as (name, value), best first.
    pub fn into_vec(self) -> Vec<(String, u64)> {
        self.entries.into_iter().map(|(v, n)| (n, v)).collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Merge for TopK {
    fn merge(&mut self, other: TopK) {
        for (value, name) in other.entries {
            self.push(&name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::groups_from_shared_ids;
    use crate::lifetime::SpanEstimator;

    #[test]
    fn fp128_distinguishes_and_is_stable() {
        assert_eq!(fp128(""), 0x6c62272e07bb014262b821756295c58d);
        assert_ne!(fp128("stek-a"), fp128("stek-b"));
        assert_eq!(fp128("stek-a"), fp128("stek-a"));
    }

    #[test]
    fn span_acc_matches_estimator_exact() {
        let stream = [
            ("a.sim", "k1", 0u64),
            ("a.sim", "other", 5),
            ("a.sim", "k1", 10),
            ("b.sim", "k1", 3),
            ("daily.sim", "d0", 0),
            ("daily.sim", "d1", 1),
            ("daily.sim", "d2", 2),
        ];
        let mut est = SpanEstimator::new();
        let mut acc = SpanAcc::exact();
        for (d, id, day) in stream {
            est.record(d, id, day);
            acc.record(d, id, day);
            acc.advance(day);
        }
        assert_eq!(est.domain_spans(), acc.domain_spans());
        assert_eq!(est.max_spans(), acc.max_spans());
        assert_eq!(
            est.domains_with_span_at_least(2),
            acc.domains_with_span_at_least(2)
        );
        assert_eq!(est.pair_count(), acc.pair_count());
        assert_eq!(est.span_of("a.sim", "k1"), acc.span_of("a.sim", "k1"));
    }

    #[test]
    fn span_acc_horizon_bounds_live_pairs_without_changing_spans() {
        // One long-lived key plus a rotator: with a 3-day horizon the
        // rotator's dead keys retire, but every domain's final spans are
        // identical to the exact accumulator's.
        let mut exact = SpanAcc::exact();
        let mut evicting = SpanAcc::with_horizon(Some(3));
        for day in 0..30u64 {
            for acc in [&mut exact, &mut evicting] {
                acc.record("static.sim", "k", day);
                acc.record("rotator.sim", &format!("r{day}"), day);
                acc.advance(day);
            }
        }
        assert_eq!(exact.domain_spans(), evicting.domain_spans());
        assert_eq!(exact.pair_count(), evicting.pair_count());
        assert_eq!(exact.live_pairs(), 31);
        assert!(
            evicting.live_pairs() <= 6,
            "horizon must bound live state, got {}",
            evicting.live_pairs()
        );
        assert!(evicting.live_high_water() <= 7);
    }

    #[test]
    fn span_acc_merge_matches_single_stream() {
        let stream: Vec<(String, String, u64)> = (0..40)
            .map(|i| {
                (
                    format!("d{}.sim", i % 7),
                    format!("id{}", i % 11),
                    (i % 13) as u64,
                )
            })
            .collect();
        let mut whole = SpanAcc::exact();
        for (d, id, day) in &stream {
            whole.record(d, id, *day);
        }
        // Split three ways by round-robin (not domain-partitioned: exact
        // mode tolerates arbitrary splits), merge in a fixed order.
        let mut parts = vec![SpanAcc::exact(), SpanAcc::exact(), SpanAcc::exact()];
        for (i, (d, id, day)) in stream.iter().enumerate() {
            parts[i % 3].record(d, id, *day);
        }
        let mut merged = parts.remove(0);
        for p in parts {
            merged.merge(p);
        }
        assert_eq!(whole.domain_spans(), merged.domain_spans());
        assert_eq!(whole.pair_count(), merged.pair_count());
    }

    #[test]
    fn count_cdf_matches_cdf_queries() {
        let samples = vec![1u64, 2, 2, 3, 10, 0, 7, 7, 7, 100];
        let cdf = Cdf::from_samples(samples.clone());
        let counted = CountCdf::from_samples(samples);
        assert_eq!(cdf.len(), counted.len());
        assert_eq!(cdf.min(), counted.min());
        assert_eq!(cdf.max(), counted.max());
        for x in [0u64, 1, 2, 3, 5, 7, 10, 99, 100, 101] {
            assert_eq!(cdf.count_ge(x), counted.count_ge(x), "count_ge({x})");
            assert!((cdf.fraction_le(x) - counted.fraction_le(x)).abs() < 1e-12);
            assert!((cdf.fraction_ge(x) - counted.fraction_ge(x)).abs() < 1e-12);
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert_eq!(cdf.quantile(q), counted.quantile(q), "quantile({q})");
        }
        assert_eq!(cdf.series(&[2, 7]), counted.series(&[2, 7]));
        let empty = CountCdf::new();
        assert!(empty.is_empty());
        assert_eq!(empty.median(), None);
        assert_eq!(empty.fraction_le(5), 0.0);
    }

    #[test]
    fn count_cdf_merge_is_addition() {
        let mut a = CountCdf::from_samples([1, 2, 3]);
        let b = CountCdf::from_samples([3, 4]);
        a.merge(b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.count_ge(3), 3);
        assert_eq!(a.to_cdf().median(), Some(3));
    }

    #[test]
    fn tier_acc_matches_tier_cdfs() {
        use crate::tiers::{tier_cdfs, tiers_for_population};
        let tiers = tiers_for_population(10_000);
        let samples = vec![(5usize, 100u64), (500, 10), (5_000, 1), (50, 7)];
        let batch = tier_cdfs(&samples, &tiers);
        let mut acc = TierAcc::new(&tiers);
        for &(rank, v) in &samples {
            acc.record(rank, v);
        }
        let streamed = acc.cdfs();
        assert_eq!(batch.len(), streamed.len());
        for (label, cdf) in &batch {
            let s = &streamed[label];
            assert_eq!(cdf.len(), s.len(), "{label}");
            assert_eq!(cdf.median(), s.median(), "{label}");
        }
    }

    #[test]
    fn tier_acc_merge_matches_single_stream() {
        use crate::tiers::tiers_for_population;
        let tiers = tiers_for_population(10_000);
        let samples: Vec<(usize, u64)> =
            (0..50).map(|i| (i * 137 % 9000, (i % 9) as u64)).collect();
        let mut whole = TierAcc::new(&tiers);
        let mut a = TierAcc::new(&tiers);
        let mut b = TierAcc::new(&tiers);
        for (i, &(r, v)) in samples.iter().enumerate() {
            whole.record(r, v);
            if i % 2 == 0 {
                a.record(r, v);
            } else {
                b.record(r, v);
            }
        }
        a.merge(b);
        assert_eq!(whole.cdfs(), a.cdfs());
    }

    #[test]
    fn group_acc_matches_batch_constructor() {
        let pairs = [
            ("cdn-a.sim", "key1"),
            ("cdn-b.sim", "key1"),
            ("cdn-c.sim", "key2"),
            ("cdn-b.sim", "key2"),
            ("lonely.sim", "key9"),
            ("rotator.sim", "r1"),
            ("rotator.sim", "r2"),
        ];
        let batch = groups_from_shared_ids(pairs.iter().map(|&(d, i)| (d, i)));
        let mut acc = GroupAcc::exact();
        for (i, &(d, id)) in pairs.iter().enumerate() {
            acc.record(d, id, i as u64);
        }
        assert_eq!(acc.service_groups(), batch);
    }

    #[test]
    fn group_acc_horizon_keeps_contemporaneous_edges() {
        let mut acc = GroupAcc::with_horizon(Some(3));
        // Shared key sighted by both domains on the same days, then
        // rotated away; the edge must survive the id's eviction.
        for day in 0..5u64 {
            acc.record("a.sim", "shared", day);
            acc.record("b.sim", "shared", day);
            acc.advance(day);
        }
        for day in 5..30u64 {
            acc.record("a.sim", &format!("fresh{day}"), day);
            acc.record("b.sim", &format!("also{day}"), day);
            acc.advance(day);
        }
        assert!(acc.evicted_ids() > 0, "horizon should have evicted");
        assert!(acc.live_ids() <= 8);
        let groups = acc.groups();
        assert_eq!(groups[0], vec!["a.sim".to_string(), "b.sim".to_string()]);
    }

    #[test]
    fn group_acc_merge_joins_partitions() {
        // a—b learned on one shard, b—c on another: merging must close
        // the chain exactly like a single accumulator would.
        let mut whole = GroupAcc::exact();
        let mut left = GroupAcc::exact();
        let mut right = GroupAcc::exact();
        for (d, id) in [("a.sim", "k1"), ("b.sim", "k1")] {
            whole.record(d, id, 0);
            left.record(d, id, 0);
        }
        for (d, id) in [("b.sim", "k2"), ("c.sim", "k2"), ("solo.sim", "k3")] {
            whole.record(d, id, 1);
            right.record(d, id, 1);
        }
        left.merge(right);
        let mut whole_groups = whole.groups();
        let mut merged_groups = left.groups();
        whole_groups.sort();
        merged_groups.sort();
        assert_eq!(whole_groups, merged_groups);
        assert_eq!(merged_groups.iter().map(|g| g.len()).max(), Some(3));
    }

    #[test]
    fn group_acc_merge_connects_across_shared_holder() {
        // The same id seen on two shards with *different* first holders:
        // merging must union the two holders.
        let mut left = GroupAcc::exact();
        left.record("x.sim", "shared", 0);
        let mut right = GroupAcc::exact();
        right.record("y.sim", "shared", 2);
        left.merge(right);
        let groups = left.groups();
        assert_eq!(groups[0], vec!["x.sim".to_string(), "y.sim".to_string()]);
        // And the surviving holder entry still connects future sighters.
        left.record("z.sim", "shared", 3);
        assert_eq!(left.groups()[0].len(), 3);
    }

    #[test]
    fn top_k_keeps_best_and_merges() {
        let mut t = TopK::new(3);
        for (name, v) in [("e", 5u64), ("a", 9), ("b", 2), ("c", 9), ("d", 7)] {
            t.push(name, v);
        }
        let mut u = TopK::new(3);
        u.push("f", 8);
        u.push("g", 1);
        t.merge(u);
        assert_eq!(
            t.into_vec(),
            vec![
                ("a".to_string(), 9),
                ("c".to_string(), 9),
                ("f".to_string(), 8)
            ]
        );
        let mut zero = TopK::new(0);
        zero.push("x", 1);
        assert!(zero.is_empty());
    }
}
