//! Rank tiers (Figure 4: STEK lifetime by Alexa rank).

use crate::cdf::Cdf;
use std::collections::BTreeMap;

/// A rank tier: domains with rank ≤ `limit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tier {
    /// Human label ("Top 100").
    pub label: &'static str,
    /// Inclusive rank limit.
    pub limit: usize,
}

/// The paper's tiers, trimmed to the population size (a 20 K-domain
/// simulation has no "Top 1M" tier distinct from "Top 20K").
pub fn tiers_for_population(size: usize) -> Vec<Tier> {
    let all = [
        Tier {
            label: "Top 100",
            limit: 100,
        },
        Tier {
            label: "Top 1K",
            limit: 1_000,
        },
        Tier {
            label: "Top 10K",
            limit: 10_000,
        },
        Tier {
            label: "Top 100K",
            limit: 100_000,
        },
        Tier {
            label: "Top 1M",
            limit: 1_000_000,
        },
    ];
    let mut out: Vec<Tier> = all.into_iter().filter(|t| t.limit < size).collect();
    out.push(Tier {
        label: "Whole list",
        limit: size,
    });
    out
}

/// Per-tier CDFs from (rank, sample) pairs. Tiers are cumulative, as in
/// the paper (Top 1K includes Top 100). Ordered map so any caller
/// iterating the result renders tiers in a stable order.
pub fn tier_cdfs(samples: &[(usize, u64)], tiers: &[Tier]) -> BTreeMap<&'static str, Cdf> {
    tiers
        .iter()
        .map(|tier| {
            let values: Vec<u64> = samples
                .iter()
                .filter(|(rank, _)| *rank <= tier.limit)
                .map(|&(_, v)| v)
                .collect();
            (tier.label, Cdf::from_samples(values))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_trim_to_population() {
        let t = tiers_for_population(20_000);
        let labels: Vec<&str> = t.iter().map(|x| x.label).collect();
        assert_eq!(labels, vec!["Top 100", "Top 1K", "Top 10K", "Whole list"]);
        assert_eq!(t.last().unwrap().limit, 20_000);
        let t = tiers_for_population(1_000_000);
        assert_eq!(t.len(), 5, "Top 1M collapses into whole-list");
    }

    #[test]
    fn tier_cdfs_are_cumulative() {
        let samples = vec![(5usize, 100u64), (500, 10), (5_000, 1)];
        let tiers = tiers_for_population(10_000);
        let cdfs = tier_cdfs(&samples, &tiers);
        assert_eq!(cdfs["Top 100"].len(), 1);
        assert_eq!(cdfs["Top 1K"].len(), 2);
        assert_eq!(cdfs["Whole list"].len(), 3);
        assert_eq!(cdfs["Top 100"].median(), Some(100));
    }

    #[test]
    fn empty_tier_is_empty_cdf() {
        let samples = vec![(5_000usize, 1u64)];
        let tiers = tiers_for_population(10_000);
        let cdfs = tier_cdfs(&samples, &tiers);
        assert!(cdfs["Top 100"].is_empty());
        assert_eq!(cdfs["Whole list"].len(), 1);
    }
}
