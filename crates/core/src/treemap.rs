//! Size × longevity summaries (Figures 6 and 7).
//!
//! The paper renders treemaps: each service group is a box sized by
//! member count and coloured by secret longevity (solid red = ≥30 days).
//! The textual equivalent is a ranked table of (group, size, median
//! longevity, colour bucket), which preserves everything the figure
//! communicates: which groups are big, which are long-lived, and where
//! the dangerous big-AND-long-lived groups sit.

use crate::cdf::Cdf;
use crate::groups::ServiceGroup;
use std::collections::BTreeMap;

/// Longevity colour buckets, mirroring the figures' legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LongevityBucket {
    /// Under one hour.
    SubHour,
    /// One hour to under one day.
    Hours,
    /// One day to under seven days.
    Days,
    /// Seven to under thirty days.
    Weeks,
    /// Thirty days or more — the paper's solid red.
    Red30Plus,
}

impl LongevityBucket {
    /// Classify a longevity in seconds.
    pub fn of(secs: u64) -> Self {
        const HOUR: u64 = 3_600;
        const DAY: u64 = 86_400;
        match secs {
            s if s >= 30 * DAY => LongevityBucket::Red30Plus,
            s if s >= 7 * DAY => LongevityBucket::Weeks,
            s if s >= DAY => LongevityBucket::Days,
            s if s >= HOUR => LongevityBucket::Hours,
            _ => LongevityBucket::SubHour,
        }
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            LongevityBucket::SubHour => "<1h",
            LongevityBucket::Hours => "1h-1d",
            LongevityBucket::Days => "1d-7d",
            LongevityBucket::Weeks => "7d-30d",
            LongevityBucket::Red30Plus => "30d+ (RED)",
        }
    }
}

/// One treemap cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreemapCell {
    /// Group label.
    pub label: String,
    /// Member count (box area).
    pub size: usize,
    /// Median member longevity in seconds (box colour).
    pub median_longevity: u64,
    /// Colour bucket.
    pub bucket: LongevityBucket,
}

/// Build treemap cells: groups sized by membership, coloured by the median
/// of their members' longevity values (seconds). Domains without a
/// longevity sample are skipped for the median but still counted for size.
pub fn build_cells(
    groups: &[ServiceGroup],
    longevity: &BTreeMap<String, u64>,
    min_size: usize,
) -> Vec<TreemapCell> {
    let mut cells: Vec<TreemapCell> = groups
        .iter()
        .filter(|g| g.size() >= min_size)
        .map(|g| {
            let samples: Vec<u64> = g
                .members
                .iter()
                .filter_map(|m| longevity.get(m).copied())
                .collect();
            let median = Cdf::from_samples(samples).median().unwrap_or(0);
            TreemapCell {
                label: g.label.clone(),
                size: g.size(),
                median_longevity: median,
                bucket: LongevityBucket::of(median),
            }
        })
        .collect();
    cells.sort_by(|a, b| b.size.cmp(&a.size).then(a.label.cmp(&b.label)));
    cells
}

/// The "alarming" cells: big and red (≥30-day secrets shared across many
/// domains) — the paper's Fastly/TMall/Jack Henry callouts.
pub fn red_cells(cells: &[TreemapCell], min_size: usize) -> Vec<&TreemapCell> {
    cells
        .iter()
        .filter(|c| c.bucket == LongevityBucket::Red30Plus && c.size >= min_size)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400;

    fn group(label: &str, members: &[&str]) -> ServiceGroup {
        ServiceGroup {
            label: label.into(),
            members: members.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LongevityBucket::of(0), LongevityBucket::SubHour);
        assert_eq!(LongevityBucket::of(3_599), LongevityBucket::SubHour);
        assert_eq!(LongevityBucket::of(3_600), LongevityBucket::Hours);
        assert_eq!(LongevityBucket::of(DAY - 1), LongevityBucket::Hours);
        assert_eq!(LongevityBucket::of(DAY), LongevityBucket::Days);
        assert_eq!(LongevityBucket::of(7 * DAY), LongevityBucket::Weeks);
        assert_eq!(LongevityBucket::of(30 * DAY), LongevityBucket::Red30Plus);
        assert_eq!(LongevityBucket::of(u64::MAX), LongevityBucket::Red30Plus);
    }

    #[test]
    fn cells_sized_and_coloured() {
        let groups = vec![
            group("big", &["a", "b", "c"]),
            group("small-red", &["x", "y"]),
        ];
        let mut longevity = BTreeMap::new();
        longevity.insert("a".to_string(), 300);
        longevity.insert("b".to_string(), 400);
        longevity.insert("c".to_string(), 500);
        longevity.insert("x".to_string(), 40 * DAY);
        longevity.insert("y".to_string(), 50 * DAY);
        let cells = build_cells(&groups, &longevity, 1);
        assert_eq!(cells[0].label, "big");
        assert_eq!(cells[0].size, 3);
        assert_eq!(cells[0].median_longevity, 400);
        assert_eq!(cells[0].bucket, LongevityBucket::SubHour);
        assert_eq!(cells[1].bucket, LongevityBucket::Red30Plus);
        let red = red_cells(&cells, 2);
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].label, "small-red");
    }

    #[test]
    fn min_size_filters() {
        let groups = vec![group("solo", &["a"]), group("duo", &["b", "c"])];
        let longevity = BTreeMap::new();
        let cells = build_cells(&groups, &longevity, 2);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].label, "duo");
        assert_eq!(cells[0].median_longevity, 0, "no samples → 0");
    }

    #[test]
    fn labels_have_legends() {
        for b in [
            LongevityBucket::SubHour,
            LongevityBucket::Hours,
            LongevityBucket::Days,
            LongevityBucket::Weeks,
            LongevityBucket::Red30Plus,
        ] {
            assert!(!b.label().is_empty());
        }
        assert!(LongevityBucket::Red30Plus.label().contains("RED"));
    }
}
