//! Disjoint sets (union-find) with path compression and union by size.
//!
//! The §5.1 cross-domain experiment grows service groups *transitively*:
//! if `id_a` resumes on `b` and `id_b` resumes on `c`, then a, b, c share
//! a cache. That closure is exactly union-find.

use std::collections::{BTreeMap, HashMap};

/// Union-find over `usize` indices.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Find the representative of `x` (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`. Returns true if they were
    /// previously separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// All sets, each as a sorted vector of member indices, largest first.
    pub fn sets(&mut self) -> Vec<Vec<usize>> {
        // Ordered map: the grouping escapes into report tables, and the
        // sorts below only order *within* and *between* sets by content —
        // a deterministic source ordering keeps the whole path stable.
        let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..self.parent.len() {
            let r = self.find(i);
            by_root.entry(r).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        for s in &mut out {
            s.sort_unstable();
        }
        out.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        out
    }
}

/// Union-find keyed by arbitrary (hashable) values — domains, here.
#[derive(Debug, Clone, Default)]
pub struct DisjointSets {
    // Lookup-only hash map (get/insert; never iterated): insertion order
    // is captured by `names`, so the hash seed cannot leak into results.
    indices: HashMap<String, usize>,
    names: Vec<String>,
    uf: Option<UnionFind>,
    edges: Vec<(usize, usize)>,
}

impl DisjointSets {
    /// Empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    fn index(&mut self, key: &str) -> usize {
        if let Some(&i) = self.indices.get(key) {
            return i;
        }
        let i = self.names.len();
        self.indices.insert(key.to_string(), i);
        self.names.push(key.to_string());
        // Invalidate any built UF; edges are replayed on demand.
        self.uf = None;
        i
    }

    /// Register an element (idempotent).
    pub fn add(&mut self, key: &str) {
        self.index(key);
    }

    /// Record that `a` and `b` share state.
    pub fn union(&mut self, a: &str, b: &str) {
        let ia = self.index(a);
        let ib = self.index(b);
        self.edges.push((ia, ib));
        self.uf = None;
    }

    fn built(&mut self) -> &mut UnionFind {
        if self.uf.is_none() {
            let mut uf = UnionFind::new(self.names.len());
            for &(a, b) in &self.edges {
                uf.union(a, b);
            }
            self.uf = Some(uf);
        }
        self.uf.as_mut().expect("just built")
    }

    /// Are two keys transitively connected? Unknown keys are singletons.
    pub fn connected(&mut self, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        let (ia, ib) = match (self.indices.get(a), self.indices.get(b)) {
            (Some(&x), Some(&y)) => (x, y),
            _ => return false,
        };
        self.built().connected(ia, ib)
    }

    /// Number of registered elements.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no elements registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Fold another structure's elements and edges into this one — the
    /// shard-merge law for the cross-domain indexes. `other`'s names are
    /// interned in their insertion order and its edges replayed after
    /// this one's, so merging per-shard structures in fixed shard order
    /// reproduces exactly the structure a single pass over the
    /// concatenated stream would build.
    pub fn merge(&mut self, other: DisjointSets) {
        let remap: Vec<usize> = other.names.iter().map(|name| self.index(name)).collect();
        for (a, b) in other.edges {
            self.edges.push((remap[a], remap[b]));
        }
        self.uf = None;
    }

    /// All groups as sorted name vectors, largest first.
    pub fn groups(&mut self) -> Vec<Vec<String>> {
        if self.names.is_empty() {
            return Vec::new();
        }
        let names = self.names.clone();
        self.built()
            .sets()
            .into_iter()
            .map(|set| {
                let mut g: Vec<String> = set.into_iter().map(|i| names[i].clone()).collect();
                g.sort();
                g
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.set_size(1), 3);
        assert_eq!(uf.set_size(3), 1);
        let sets = uf.sets();
        assert_eq!(sets[0], vec![0, 1, 2]);
        assert_eq!(sets.len(), 3);
    }

    #[test]
    fn transitive_closure_matches_paper_example() {
        // id_a valid on b, id_b valid on c ⇒ {a, b, c} one group.
        let mut ds = DisjointSets::new();
        ds.add("a.sim");
        ds.add("b.sim");
        ds.add("c.sim");
        ds.add("d.sim");
        ds.union("a.sim", "b.sim");
        ds.union("b.sim", "c.sim");
        assert!(ds.connected("a.sim", "c.sim"));
        assert!(!ds.connected("a.sim", "d.sim"));
        let groups = ds.groups();
        assert_eq!(groups[0], vec!["a.sim", "b.sim", "c.sim"]);
        assert_eq!(groups[1], vec!["d.sim"]);
    }

    #[test]
    fn unknown_keys_are_disconnected() {
        let mut ds = DisjointSets::new();
        ds.add("a.sim");
        assert!(!ds.connected("a.sim", "nope.sim"));
        assert!(ds.connected("x", "x"), "reflexive even if unknown");
    }

    #[test]
    fn adding_after_build_keeps_edges() {
        let mut ds = DisjointSets::new();
        ds.union("a", "b");
        assert!(ds.connected("a", "b"));
        ds.add("c"); // invalidates the built structure
        ds.union("b", "c");
        assert!(ds.connected("a", "c"));
        assert_eq!(ds.groups()[0].len(), 3);
    }

    #[test]
    fn groups_sorted_largest_first() {
        let mut ds = DisjointSets::new();
        for i in 0..10 {
            ds.add(&format!("s{i}"));
        }
        ds.union("s0", "s1");
        ds.union("s2", "s3");
        ds.union("s3", "s4");
        let groups = ds.groups();
        assert_eq!(groups[0].len(), 3);
        assert_eq!(groups[1].len(), 2);
        assert_eq!(groups.len(), 1 + 1 + 5);
    }

    #[test]
    fn large_random_unions_consistent() {
        let mut uf = UnionFind::new(1000);
        // Merge into 10 chains.
        for chain in 0..10 {
            for i in 0..99 {
                uf.union(chain * 100 + i, chain * 100 + i + 1);
            }
        }
        for chain in 0..10 {
            assert_eq!(uf.set_size(chain * 100), 100);
            assert!(uf.connected(chain * 100, chain * 100 + 99));
        }
        assert!(!uf.connected(0, 100));
        assert_eq!(uf.sets().len(), 10);
    }
}
