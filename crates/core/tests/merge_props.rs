//! Property-based tests for the shard-merge law ([`ts_core::stream::Merge`]).
//!
//! The sharded campaign rests on one algebraic claim: feeding a stream
//! through a single accumulator, or splitting it across shard-local
//! accumulators and merging them, yields the same analysis results.
//! These properties pin the law in the three regimes the campaign uses:
//!
//! * **exact mode, arbitrary splits** — every record can land in any
//!   shard and merge order cannot matter (SpanAcc, CountCdf, TierAcc,
//!   ExposureTable, TopK);
//! * **exact mode, contiguous splits in shard order** — the regime the
//!   campaign's fixed shard layout guarantees, where even the
//!   order-sensitive group *labelling* must reproduce the single-pass
//!   output byte for byte (GroupAcc);
//! * **horizon mode, domain-/id-partitioned splits** — eviction stays
//!   equivalent as long as per-domain (per-identifier) state never
//!   straddles two accumulators, which the shard layout also guarantees.

use proptest::prelude::*;
use std::collections::BTreeSet;
use ts_core::exposure::{ExposureKind, ExposureTable};
use ts_core::stream::{CountCdf, GroupAcc, Merge, SpanAcc, TierAcc, TopK};
use ts_core::tiers::Tier;

/// A sighting stream: (domain, id, day), with a shard assignment.
fn sightings(max_len: usize) -> impl Strategy<Value = Vec<(String, String, u64, usize)>> {
    proptest::collection::vec(
        ("[ab][0-3]\\.sim", "[w-z][0-2]", 0u64..40, 0usize..4),
        1..max_len,
    )
}

/// Merge `parts` into one accumulator, in the given order.
fn merge_all<T: Merge>(parts: Vec<T>) -> T {
    let mut it = parts.into_iter();
    let mut acc = it.next().expect("at least one shard");
    for p in it {
        acc.merge(p);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // --- SpanAcc, exact mode: full order independence ---

    #[test]
    fn span_acc_sharded_equals_single_any_split(
        stream in sightings(150),
    ) {
        let mut single = SpanAcc::exact();
        let mut shards: Vec<SpanAcc> = (0..4).map(|_| SpanAcc::exact()).collect();
        for (domain, id, day, shard) in &stream {
            single.record(domain, id, *day);
            shards[*shard].record(domain, id, *day);
        }
        // Forward and reverse merge orders both match the single pass:
        // with associativity (below) this covers arbitrary groupings.
        let forward = merge_all(shards.clone());
        let mut reversed = shards;
        reversed.reverse();
        let backward = merge_all(reversed);
        for merged in [&forward, &backward] {
            prop_assert_eq!(merged.domain_spans(), single.domain_spans());
            prop_assert_eq!(merged.pair_count(), single.pair_count());
            prop_assert_eq!(merged.watermark(), single.watermark());
            prop_assert_eq!(merged.max_spans(), single.max_spans());
        }
    }

    #[test]
    fn span_acc_merge_is_associative(
        stream in sightings(120),
    ) {
        let mut parts: Vec<SpanAcc> = (0..3).map(|_| SpanAcc::exact()).collect();
        for (domain, id, day, shard) in &stream {
            parts[shard % 3].record(domain, id, *day);
        }
        let [a, b, c] = <[SpanAcc; 3]>::try_from(parts).ok().unwrap();
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(c);
        let mut right = a;
        right.merge(bc);
        prop_assert_eq!(left.domain_spans(), right.domain_spans());
        prop_assert_eq!(left.pair_count(), right.pair_count());
        prop_assert_eq!(left.domains_with_span_at_least(2),
                        right.domains_with_span_at_least(2));
    }

    // --- SpanAcc, horizon mode: domain-partitioned splits ---

    #[test]
    fn span_acc_horizon_sharded_equals_single_domain_partition(
        stream in sightings(150),
        horizon in 1u64..12,
    ) {
        // Day-lockstep replay, as the campaign runs it: all of day d is
        // recorded, then every accumulator advances to d. Domains are
        // partitioned by shard of their name, so per-domain state never
        // straddles accumulators.
        let mut stream = stream;
        stream.sort_by_key(|(_, _, day, _)| *day);
        let shard_of = |domain: &str| domain.as_bytes()[1] as usize % 2;
        let mut single = SpanAcc::with_horizon(Some(horizon));
        let mut shards: Vec<SpanAcc> =
            (0..2).map(|_| SpanAcc::with_horizon(Some(horizon))).collect();
        let last_day = stream.iter().map(|(_, _, d, _)| *d).max().unwrap();
        for day in 0..=last_day {
            for (domain, id, d, _) in stream.iter().filter(|(_, _, d, _)| *d == day) {
                single.record(domain, id, *d);
                shards[shard_of(domain)].record(domain, id, *d);
            }
            single.advance(day);
            for s in &mut shards {
                s.advance(day);
            }
        }
        let merged = merge_all(shards);
        prop_assert_eq!(merged.domain_spans(), single.domain_spans());
        prop_assert_eq!(merged.pair_count(), single.pair_count());
    }

    // --- CountCdf / TierAcc ---

    #[test]
    fn count_cdf_sharded_equals_single_any_split(
        samples in proptest::collection::vec((0u64..200, 0usize..4), 1..200),
    ) {
        let mut single = CountCdf::new();
        let mut shards: Vec<CountCdf> = (0..4).map(|_| CountCdf::new()).collect();
        for (v, shard) in &samples {
            single.add(*v);
            shards[*shard].add(*v);
        }
        let forward = merge_all(shards.clone());
        let mut reversed = shards;
        reversed.reverse();
        let backward = merge_all(reversed);
        prop_assert_eq!(&forward, &single);
        prop_assert_eq!(&backward, &single);
        // Query surface agrees with the sorted-sample CDF it replaces.
        let cdf = forward.to_cdf();
        for x in [0, 50, 199] {
            prop_assert_eq!(forward.count_ge(x), cdf.count_ge(x));
            prop_assert!((forward.fraction_le(x) - cdf.fraction_le(x)).abs() < 1e-12);
        }
        prop_assert_eq!(forward.median(), cdf.median());
    }

    #[test]
    fn tier_acc_sharded_equals_single_any_split(
        records in proptest::collection::vec(
            (1usize..5000, 0u64..64, 0usize..3), 1..150),
    ) {
        const TIERS: &[Tier] = &[
            Tier { label: "Top 100", limit: 100 },
            Tier { label: "Top 1K", limit: 1_000 },
            Tier { label: "All", limit: usize::MAX },
        ];
        let mut single = TierAcc::new(TIERS);
        let mut shards: Vec<TierAcc> = (0..3).map(|_| TierAcc::new(TIERS)).collect();
        for (rank, value, shard) in &records {
            single.record(*rank, *value);
            shards[*shard].record(*rank, *value);
        }
        let merged = merge_all(shards);
        prop_assert_eq!(merged.cdfs(), single.cdfs());
    }

    // --- GroupAcc, exact mode: contiguous splits in shard order ---

    #[test]
    fn group_acc_contiguous_shards_equal_single_exactly(
        stream in sightings(150),
        cut in 1usize..149,
    ) {
        // The campaign's regime: shard 0's stream precedes shard 1's, and
        // merges happen in shard order — then even name-interning order
        // (hence group labelling and tie-breaks) reproduces exactly.
        let cut = cut.min(stream.len());
        let mut single = GroupAcc::exact();
        let mut left = GroupAcc::exact();
        let mut right = GroupAcc::exact();
        for (i, (domain, id, day, _)) in stream.iter().enumerate() {
            single.record(domain, id, *day);
            if i < cut {
                left.record(domain, id, *day);
            } else {
                right.record(domain, id, *day);
            }
        }
        left.merge(right);
        prop_assert_eq!(left.groups(), single.groups());
        prop_assert_eq!(left.service_groups(), single.service_groups());
    }

    // --- GroupAcc, horizon mode: id-partitioned splits ---

    #[test]
    fn group_acc_horizon_id_partition_same_partition(
        stream in sightings(150),
        horizon in 1u64..12,
    ) {
        // Identifiers are partitioned across accumulators (each id's
        // sightings all reach one shard), so sharing edges form locally
        // and eviction retires the same ids. The *partition* of domains
        // into groups must agree; labelling order may differ between the
        // interleaved and concatenated feeds, so compare canonical sets.
        let mut stream = stream;
        stream.sort_by_key(|(_, _, day, _)| *day);
        let shard_of = |id: &str| id.as_bytes()[1] as usize % 2;
        let mut single = GroupAcc::with_horizon(Some(horizon));
        let mut shards: Vec<GroupAcc> =
            (0..2).map(|_| GroupAcc::with_horizon(Some(horizon))).collect();
        let last_day = stream.iter().map(|(_, _, d, _)| *d).max().unwrap();
        for day in 0..=last_day {
            for (domain, id, d, _) in stream.iter().filter(|(_, _, d, _)| *d == day) {
                single.record(domain, id, *d);
                shards[shard_of(id)].record(domain, id, *d);
            }
            single.advance(day);
            for s in &mut shards {
                s.advance(day);
            }
        }
        let mut merged = merge_all(shards);
        let canon = |groups: Vec<Vec<String>>| -> BTreeSet<Vec<String>> {
            groups.into_iter().collect()
        };
        prop_assert_eq!(canon(merged.groups()), canon(single.groups()));
        prop_assert_eq!(merged.evicted_ids(), single.evicted_ids());
    }

    // --- ExposureTable ---

    #[test]
    fn exposure_table_sharded_equals_single_any_split(
        records in proptest::collection::vec(
            ("[ab][0-3]\\.sim", 0u8..3, 1u64..1_000_000, 0usize..3), 1..120),
    ) {
        let kind = |k: u8| match k {
            0 => ExposureKind::Ticket,
            1 => ExposureKind::SessionCache,
            _ => ExposureKind::DhReuse,
        };
        let mut single = ExposureTable::new();
        let mut shards: Vec<ExposureTable> =
            (0..3).map(|_| ExposureTable::new()).collect();
        for (domain, k, window, shard) in &records {
            single.record(domain, kind(*k), *window);
            shards[*shard].record(domain, kind(*k), *window);
        }
        let mut it = shards.into_iter();
        let mut merged = it.next().unwrap();
        for s in it {
            merged.merge(s);
        }
        prop_assert_eq!(merged.len(), single.len());
        for (domain, _, _, _) in &records {
            prop_assert_eq!(merged.get(domain), single.get(domain));
        }
    }

    // --- TopK ---

    #[test]
    fn top_k_sharded_equals_single_any_split(
        entries in proptest::collection::vec(("[a-f][0-9]", 0u64..100, 0usize..3), 1..120),
        k in 1usize..12,
    ) {
        let mut single = TopK::new(k);
        let mut shards: Vec<TopK> = (0..3).map(|_| TopK::new(k)).collect();
        for (name, value, shard) in &entries {
            single.push(name, *value);
            shards[*shard].push(name, *value);
        }
        let merged = merge_all(shards);
        prop_assert_eq!(merged.into_vec(), single.into_vec());
    }
}
