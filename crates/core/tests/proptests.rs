//! Property-based tests for the analysis core: CDF laws, union-find
//! equivalence-relation axioms, and span-estimator invariants.

use proptest::prelude::*;
use std::collections::HashSet;
use ts_core::cdf::Cdf;
use ts_core::lifetime::SpanEstimator;
use ts_core::unionfind::{DisjointSets, UnionFind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- CDF ---

    #[test]
    fn cdf_is_monotone_and_bounded(
        samples in proptest::collection::vec(any::<u64>(), 0..300),
        probes in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let cdf = Cdf::from_samples(samples.clone());
        let mut probes = probes;
        probes.sort_unstable();
        let mut last = 0.0f64;
        for &x in &probes {
            let f = cdf.fraction_le(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last, "monotone");
            last = f;
        }
        if !samples.is_empty() {
            prop_assert_eq!(cdf.fraction_le(u64::MAX), 1.0);
            prop_assert_eq!(cdf.fraction_ge(0), 1.0);
        }
    }

    #[test]
    fn cdf_le_and_ge_complement(
        samples in proptest::collection::vec(0u64..1000, 1..200),
        x in 0u64..1001,
    ) {
        let cdf = Cdf::from_samples(samples);
        let le = cdf.fraction_le(x);
        let ge_next = cdf.fraction_ge(x + 1);
        prop_assert!((le + ge_next - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_quantiles_are_samples_and_ordered(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let cdf = Cdf::from_samples(samples.clone());
        let set: HashSet<u64> = samples.into_iter().collect();
        let v1 = cdf.quantile(q1).unwrap();
        let v2 = cdf.quantile(q2).unwrap();
        prop_assert!(set.contains(&v1), "quantile is an observed sample");
        if q1 <= q2 {
            prop_assert!(v1 <= v2, "quantiles ordered");
        }
    }

    #[test]
    fn cdf_count_ge_matches_manual(
        samples in proptest::collection::vec(0u64..100, 0..200),
        x in 0u64..101,
    ) {
        let manual = samples.iter().filter(|&&v| v >= x).count();
        let cdf = Cdf::from_samples(samples);
        prop_assert_eq!(cdf.count_ge(x), manual);
    }

    // --- union-find ---

    #[test]
    fn unionfind_is_an_equivalence_relation(
        n in 2usize..80,
        edges in proptest::collection::vec((any::<usize>(), any::<usize>()), 0..120),
    ) {
        let mut uf = UnionFind::new(n);
        for (a, b) in &edges {
            uf.union(a % n, b % n);
        }
        // Reflexive.
        for i in 0..n {
            prop_assert!(uf.connected(i, i));
        }
        // Symmetric + transitive via the sets() partition.
        let sets = uf.sets();
        let mut seen = vec![false; n];
        let mut total = 0;
        for set in &sets {
            for &i in set {
                prop_assert!(!seen[i], "partition: no element twice");
                seen[i] = true;
                total += 1;
                prop_assert!(uf.connected(set[0], i));
            }
        }
        prop_assert_eq!(total, n, "partition covers everything");
        // Sizes agree.
        for set in &sets {
            prop_assert_eq!(uf.set_size(set[0]), set.len());
        }
        // Cross-set elements are not connected.
        if sets.len() >= 2 {
            prop_assert!(!uf.connected(sets[0][0], sets[1][0]));
        }
    }

    #[test]
    fn unionfind_matches_bruteforce_closure(
        n in 2usize..30,
        edges in proptest::collection::vec((any::<usize>(), any::<usize>()), 0..40),
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        // Brute-force transitive closure via adjacency matrix.
        let mut reach = vec![vec![false; n]; n];
        for i in 0..n {
            reach[i][i] = true;
        }
        for &(a, b) in &edges {
            reach[a][b] = true;
            reach[b][a] = true;
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(uf.connected(i, j), reach[i][j], "({}, {})", i, j);
            }
        }
    }

    #[test]
    fn disjoint_sets_groups_partition_names(
        names in proptest::collection::hash_set("[a-e][0-9]", 1..20),
        unions in proptest::collection::vec(("[a-e][0-9]", "[a-e][0-9]"), 0..15),
    ) {
        let mut ds = DisjointSets::new();
        for n in &names {
            ds.add(n);
        }
        for (a, b) in &unions {
            ds.union(a, b);
        }
        let groups = ds.groups();
        let mut seen: HashSet<String> = HashSet::new();
        for g in &groups {
            for m in g {
                prop_assert!(seen.insert(m.clone()), "no domain in two groups");
            }
        }
        // Every added name appears (unions may add more).
        for n in &names {
            prop_assert!(seen.contains(n));
        }
        // Groups sorted largest-first.
        for w in groups.windows(2) {
            prop_assert!(w[0].len() >= w[1].len());
        }
    }

    // --- span estimator ---

    #[test]
    fn span_invariants(
        sightings in proptest::collection::vec(
            ("[ab][0-9]\\.sim", "[xyz]", 0u64..63),
            1..200,
        ),
    ) {
        let mut est = SpanEstimator::new();
        for (domain, id, day) in &sightings {
            est.record(domain, id, *day);
        }
        for (domain, spans) in est.domain_spans() {
            // Span bounded by the observation range.
            let days: Vec<u64> = sightings
                .iter()
                .filter(|(d, _, _)| *d == domain)
                .map(|(_, _, day)| *day)
                .collect();
            let min = *days.iter().min().unwrap();
            let max = *days.iter().max().unwrap();
            prop_assert!(spans.max_span_days >= 1);
            prop_assert!(spans.max_span_days <= max - min + 1);
            // distinct_ids bounded by distinct ids sighted for this domain.
            let distinct: HashSet<&str> = sightings
                .iter()
                .filter(|(d, _, _)| *d == domain)
                .map(|(_, id, _)| id.as_str())
                .collect();
            prop_assert_eq!(spans.distinct_ids, distinct.len());
            // days_seen = distinct days.
            let distinct_days: HashSet<u64> = days.iter().copied().collect();
            prop_assert_eq!(spans.days_seen, distinct_days.len());
        }
    }

    #[test]
    fn span_of_single_id_equals_range(
        days in proptest::collection::hash_set(0u64..63, 1..30),
    ) {
        let mut est = SpanEstimator::new();
        for &d in &days {
            est.record("x.sim", "only-key", d);
        }
        let min = *days.iter().min().unwrap();
        let max = *days.iter().max().unwrap();
        prop_assert_eq!(est.span_of("x.sim", "only-key"), Some(max - min + 1));
    }
}
