//! One-off generator for the Sim256/Sim512 safe-prime constants in dh.rs.
use ts_crypto::bignum::{gen_prime, is_probable_prime, Ub};
use ts_crypto::drbg::HmacDrbg;

fn safe_prime(bits: usize, rng: &mut HmacDrbg) -> Ub {
    loop {
        let q = gen_prime(bits - 1, |b| rng.fill_bytes(b));
        let p = q.shl(1).add(&Ub::one());
        if p.bit_len() == bits && is_probable_prime(&p, 20, |b| rng.fill_bytes(b)) {
            return p;
        }
    }
}

fn main() {
    let mut rng = HmacDrbg::new(b"tls-shortcuts-sim-groups");
    let p256 = safe_prime(256, &mut rng);
    println!("SIM256 = {}", p256.to_hex());
    let p512 = safe_prime(512, &mut rng);
    println!("SIM512 = {}", p512.to_hex());
}
