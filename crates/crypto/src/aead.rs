//! The unified AEAD front: ChaCha20-Poly1305 (RFC 7539 §2.8), AES-128-GCM
//! (re-exported from [`crate::gcm`]), and the CBC+HMAC encrypt-then-MAC
//! construction used for session tickets and CBC cipher suites. The record
//! layer in `ts-tls` goes through these entry points, so every suite picks
//! up the SIMD fast paths (and the forced-portable fallback) uniformly.

use crate::cbc;
use crate::chacha20::{self, KEY_LEN as CHACHA_KEY_LEN, NONCE_LEN};
use crate::error::CryptoError;
use crate::hmac::{hmac_sha256, verify_hmac_sha256};
use crate::poly1305::{poly1305, TAG_LEN};

/// Build the Poly1305 one-time key from the ChaCha20 key/nonce (RFC 7539 §2.6).
fn poly_key(key: &[u8; CHACHA_KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block = chacha20::block(key, 0, nonce);
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block[..32]);
    pk
}

/// Poly1305 input layout: aad || pad || ct || pad || len(aad) || len(ct).
fn aead_mac_data(aad: &[u8], ciphertext: &[u8]) -> Vec<u8> {
    let mut data = Vec::with_capacity(aad.len() + ciphertext.len() + 32);
    data.extend_from_slice(aad);
    data.extend(std::iter::repeat(0u8).take((16 - aad.len() % 16) % 16));
    data.extend_from_slice(ciphertext);
    data.extend(std::iter::repeat(0u8).take((16 - ciphertext.len() % 16) % 16));
    data.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    data.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    data
}

/// ChaCha20-Poly1305 seal: returns ciphertext || 16-byte tag.
pub fn chacha20poly1305_seal(
    key: &[u8; CHACHA_KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    plaintext: &[u8],
) -> Vec<u8> {
    let mut ct = plaintext.to_vec();
    chacha20::xor_stream(key, 1, nonce, &mut ct);
    let tag = poly1305(&poly_key(key, nonce), &aead_mac_data(aad, &ct));
    ct.extend_from_slice(&tag);
    ct
}

/// ChaCha20-Poly1305 open: verifies the tag, returns the plaintext.
pub fn chacha20poly1305_open(
    key: &[u8; CHACHA_KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if sealed.len() < TAG_LEN {
        return Err(CryptoError::BadLength("AEAD input shorter than tag"));
    }
    let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let expect = poly1305(&poly_key(key, nonce), &aead_mac_data(aad, ct));
    if !crate::ct::ct_eq(&expect, tag) {
        return Err(CryptoError::BadMac);
    }
    let mut pt = ct.to_vec();
    chacha20::xor_stream(key, 1, nonce, &mut pt);
    Ok(pt)
}

/// AES-128-GCM seal: returns ciphertext || 16-byte tag. Dispatches to the
/// AES-NI/CLMUL path when the CPU supports it (see [`crate::gcm`]).
pub fn aes128gcm_seal(
    key: &[u8; 16],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    plaintext: &[u8],
) -> Vec<u8> {
    crate::gcm::seal(key, nonce, aad, plaintext)
}

/// AES-128-GCM open: verifies the tag, returns the plaintext.
pub fn aes128gcm_open(
    key: &[u8; 16],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    crate::gcm::open(key, nonce, aad, sealed)
}

/// Encrypt-then-MAC with AES-128-CBC and HMAC-SHA256.
///
/// Output layout: `IV(16) || CBC-ciphertext || HMAC-SHA256(aad || IV || ct)`.
/// This is the construction the TLS record layer and the RFC 5077 ticket
/// format in `ts-tls` both build on.
pub fn cbc_hmac_seal(
    enc_key: &[u8; 16],
    mac_key: &[u8; 32],
    iv: &[u8; 16],
    aad: &[u8],
    plaintext: &[u8],
) -> Vec<u8> {
    let ct = cbc::encrypt(enc_key, iv, plaintext);
    let mut out = Vec::with_capacity(16 + ct.len() + 32);
    out.extend_from_slice(iv);
    out.extend_from_slice(&ct);
    let mut mac_input = Vec::with_capacity(aad.len() + out.len());
    mac_input.extend_from_slice(aad);
    mac_input.extend_from_slice(&out);
    let tag = hmac_sha256(mac_key, &mac_input);
    out.extend_from_slice(&tag);
    out
}

/// Verify and decrypt a [`cbc_hmac_seal`] message.
pub fn cbc_hmac_open(
    enc_key: &[u8; 16],
    mac_key: &[u8; 32],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if sealed.len() < 16 + 16 + 32 {
        return Err(CryptoError::BadLength("CBC+HMAC message too short"));
    }
    let (body, tag) = sealed.split_at(sealed.len() - 32);
    let mut mac_input = Vec::with_capacity(aad.len() + body.len());
    mac_input.extend_from_slice(aad);
    mac_input.extend_from_slice(body);
    if !verify_hmac_sha256(mac_key, &mac_input, tag) {
        return Err(CryptoError::BadMac);
    }
    let iv: [u8; 16] = body[..16].try_into().expect("16 bytes");
    cbc::decrypt(enc_key, &iv, &body[16..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 7539 §2.8.2 AEAD test vector.
    #[test]
    fn rfc7539_aead_vector() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let pt = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let sealed = chacha20poly1305_seal(&key, &nonce, &aad, pt);
        let (ct, tag) = sealed.split_at(sealed.len() - 16);
        assert_eq!(
            hex(ct),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116"
        );
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
        let opened = chacha20poly1305_open(&key, &nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, pt);
    }

    #[test]
    fn aead_rejects_tampering() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let sealed = chacha20poly1305_seal(&key, &nonce, b"aad", b"secret");
        // Flip a ciphertext bit.
        let mut bad = sealed.clone();
        bad[0] ^= 1;
        assert_eq!(
            chacha20poly1305_open(&key, &nonce, b"aad", &bad),
            Err(CryptoError::BadMac)
        );
        // Flip a tag bit.
        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(chacha20poly1305_open(&key, &nonce, b"aad", &bad).is_err());
        // Wrong AAD.
        assert!(chacha20poly1305_open(&key, &nonce, b"aaX", &sealed).is_err());
        // Wrong nonce.
        assert!(chacha20poly1305_open(&key, &[3u8; 12], b"aad", &sealed).is_err());
        // Truncated below tag size.
        assert!(chacha20poly1305_open(&key, &nonce, b"aad", &sealed[..10]).is_err());
    }

    #[test]
    fn aead_empty_plaintext_and_aad() {
        let key = [9u8; 32];
        let nonce = [8u8; 12];
        let sealed = chacha20poly1305_seal(&key, &nonce, b"", b"");
        assert_eq!(sealed.len(), 16);
        assert_eq!(
            chacha20poly1305_open(&key, &nonce, b"", &sealed).unwrap(),
            b""
        );
    }

    #[test]
    fn cbc_hmac_roundtrip() {
        let ek = [4u8; 16];
        let mk = [5u8; 32];
        let iv = [6u8; 16];
        let sealed = cbc_hmac_seal(&ek, &mk, &iv, b"header", b"ticket state");
        let opened = cbc_hmac_open(&ek, &mk, b"header", &sealed).unwrap();
        assert_eq!(opened, b"ticket state");
    }

    #[test]
    fn cbc_hmac_rejects_wrong_keys_and_aad() {
        let ek = [4u8; 16];
        let mk = [5u8; 32];
        let iv = [6u8; 16];
        let sealed = cbc_hmac_seal(&ek, &mk, &iv, b"hdr", b"payload data here");
        assert_eq!(
            cbc_hmac_open(&ek, &[0u8; 32], b"hdr", &sealed),
            Err(CryptoError::BadMac),
            "wrong MAC key"
        );
        assert_eq!(
            cbc_hmac_open(&ek, &mk, b"HDR", &sealed),
            Err(CryptoError::BadMac),
            "wrong aad"
        );
        let mut bad = sealed.clone();
        bad[20] ^= 0xff;
        assert_eq!(
            cbc_hmac_open(&ek, &mk, b"hdr", &bad),
            Err(CryptoError::BadMac)
        );
        assert!(
            cbc_hmac_open(&ek, &mk, b"hdr", &sealed[..40]).is_err(),
            "too short"
        );
        // Note: the *encryption* key is not authenticated by the MAC — a
        // wrong enc key with a correct MAC key yields garbage or padding
        // failure, mirroring real CBC+HMAC deployments.
        let out = cbc_hmac_open(&[9u8; 16], &mk, b"hdr", &sealed);
        match out {
            Err(CryptoError::BadPadding) => {}
            Ok(garbled) => assert_ne!(garbled, b"payload data here"),
            Err(e) => panic!("unexpected: {e}"),
        }
    }
}
