//! The AES-128 block cipher (FIPS 197).
//!
//! A plain, readable implementation: byte-oriented SubBytes/ShiftRows/
//! MixColumns with an expanded round-key schedule. RFC 5077 recommends
//! AES-CBC for session-ticket encryption, which is why the study's ticket
//! machinery (and our CBC mode in [`crate::cbc`]) sits on top of this.

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;
/// AES-128 key size in bytes.
pub const KEY_LEN: usize = 16;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box, derived from `SBOX` at first use.
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply in GF(2^8) with the AES polynomial x^8 + x^4 + x^3 + x + 1.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// An AES-128 cipher with a pre-expanded key schedule.
///
/// The schedule is pure key material (the first round key *is* the key),
/// so the cipher wipes itself on drop.
// ctlint: secret
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl crate::wipe::Wipe for Aes128 {
    fn wipe(&mut self) {
        for rk in self.round_keys.iter_mut() {
            crate::wipe::wipe_bytes(rk);
        }
    }
}

impl Drop for Aes128 {
    fn drop(&mut self) {
        use crate::wipe::Wipe;
        self.wipe();
    }
}

impl Aes128 {
    /// Expand `key` into the 11 round keys.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// The expanded schedule repacked as 44 little-endian `u32` words
    /// (4 per round key, in memory order). This is the form the AES-NI
    /// kernels consume: an `_mm_loadu_si128` over four consecutive words
    /// reproduces the round key's byte layout exactly. Word-typed so the
    /// hardware path never handles the schedule as bytes.
    pub(crate) fn schedule_words(&self) -> [u32; 44] {
        let mut w = [0u32; 44];
        for r in 0..11 {
            for c in 0..4 {
                w[4 * r + c] = u32::from_le_bytes([
                    self.round_keys[r][4 * c],
                    self.round_keys[r][4 * c + 1],
                    self.round_keys[r][4 * c + 2],
                    self.round_keys[r][4 * c + 3],
                ]);
            }
        }
        w
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        #[cfg(target_arch = "x86_64")]
        if ni::available() {
            let rk = self.schedule_words();
            let mut w = block_to_words(block);
            ni::encrypt_block(&rk, &mut w);
            words_to_block(&w, block);
            return;
        }
        self.encrypt_block_scalar(block);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        #[cfg(target_arch = "x86_64")]
        if ni::available() {
            let rk = self.schedule_words();
            let mut w = block_to_words(block);
            ni::decrypt_block(&rk, &mut w);
            words_to_block(&w, block);
            return;
        }
        self.decrypt_block_scalar(block);
    }

    /// The portable byte-oriented encryption (FIPS 197 pseudocode).
    pub(crate) fn encrypt_block_scalar(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// The portable byte-oriented decryption.
    pub(crate) fn decrypt_block_scalar(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[10]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for r in (1..10).rev() {
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

/// Repack a block as 4 little-endian words (the `__m128i` lane order).
pub(crate) fn block_to_words(block: &[u8; BLOCK_LEN]) -> [u32; 4] {
    let mut w = [0u32; 4];
    for i in 0..4 {
        w[i] = u32::from_le_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    w
}

/// Inverse of [`block_to_words`].
pub(crate) fn words_to_block(w: &[u32; 4], block: &mut [u8; BLOCK_LEN]) {
    for i in 0..4 {
        block[4 * i..4 * i + 4].copy_from_slice(&w[i].to_le_bytes());
    }
}

// The state is stored column-major as in FIPS 197: byte s[r][c] lives at
// index r + 4*c.

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

// The cipher state is key-dependent from round 1 on. The S-box lookups
// below are data-dependent table reads — the classic AES cache side
// channel — kept deliberately (a bitsliced AES is out of scope for a
// simulation) and declared in ctlint.toml.
// ctlint: secret
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

// ctlint: secret
fn inv_sub_bytes(state: &mut [u8; 16]) {
    let inv = inv_sbox();
    for b in state.iter_mut() {
        *b = inv[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
        for c in 0..4 {
            state[r + 4 * c] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
        for c in 0..4 {
            state[r + 4 * c] = row[(c + 4 - r) % 4];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

/// AES-NI hardware block path, used when CPUID reports support.
///
/// Every kernel here takes the key schedule as the `[u32; 44]` word form
/// from [`Aes128::schedule_words`] and the state as `u32`/`u64` words —
/// never as bytes — so the hardware boundary carries no byte-typed secret
/// channels. Output is bit-identical to the scalar path (the FIPS vectors
/// exercise whichever path the host selects, and
/// `hardware_and_scalar_block_paths_agree` pins them against each other).
#[cfg(target_arch = "x86_64")]
pub(crate) mod ni {
    // The sanctioned unsafe exception (see lib.rs): scoped, behind runtime
    // feature detection, with safety comments.
    #![allow(unsafe_code)]

    use core::arch::x86_64::*;

    /// Does this CPU have AES-NI (plus the SSE2 baseline the loads/stores
    /// use), and is the build not forced portable? Detected once.
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            !crate::dispatch::force_portable()
                && std::arch::is_x86_feature_detected!("aes")
                && std::arch::is_x86_feature_detected!("sse2")
        })
    }

    /// Load the 11 round keys out of the word-form schedule.
    #[target_feature(enable = "sse2")]
    unsafe fn load_schedule(rk: &[u32; 44]) -> [__m128i; 11] {
        let mut keys = [_mm_setzero_si128(); 11];
        // SAFETY: 4 * r + 4 <= 44 for r in 0..11, so every 16-byte load
        // stays inside the borrowed array; the sse2 `target_feature` is
        // vouched for by the dispatching caller's CPUID check via
        // `available()`.
        unsafe {
            for (r, k) in keys.iter_mut().enumerate() {
                *k = _mm_loadu_si128(rk.as_ptr().add(4 * r) as *const __m128i);
            }
        }
        keys
    }

    /// Encrypt a single block held as 4 LE words.
    pub fn encrypt_block(rk: &[u32; 44], block: &mut [u32; 4]) {
        // SAFETY: `available()` gates every call site on CPUID.
        unsafe { encrypt_block_impl(rk, block) }
    }

    #[target_feature(enable = "aes", enable = "sse2")]
    unsafe fn encrypt_block_impl(rk: &[u32; 44], block: &mut [u32; 4]) {
        // SAFETY: in-bounds unaligned loads/stores over the borrowed
        // arrays; `target_feature` is vouched for by the caller's CPUID
        // check.
        unsafe {
            let keys = load_schedule(rk);
            let mut b = _mm_loadu_si128(block.as_ptr() as *const __m128i);
            b = _mm_xor_si128(b, keys[0]);
            for k in &keys[1..10] {
                b = _mm_aesenc_si128(b, *k);
            }
            b = _mm_aesenclast_si128(b, keys[10]);
            _mm_storeu_si128(block.as_mut_ptr() as *mut __m128i, b);
        }
    }

    /// Decrypt a single block held as 4 LE words. The decryption round
    /// keys (Equivalent Inverse Cipher form) are derived on the fly with
    /// `aesimc` — one instruction per round, cheap next to the rounds.
    pub fn decrypt_block(rk: &[u32; 44], block: &mut [u32; 4]) {
        // SAFETY: `available()` gates every call site on CPUID.
        unsafe { decrypt_block_impl(rk, block) }
    }

    #[target_feature(enable = "aes", enable = "sse2")]
    unsafe fn decrypt_block_impl(rk: &[u32; 44], block: &mut [u32; 4]) {
        // SAFETY: in-bounds unaligned loads/stores over the borrowed
        // arrays; `target_feature` is vouched for by the caller's CPUID
        // check.
        unsafe {
            let keys = load_schedule(rk);
            let mut b = _mm_loadu_si128(block.as_ptr() as *const __m128i);
            b = _mm_xor_si128(b, keys[10]);
            for r in (1..10).rev() {
                b = _mm_aesdec_si128(b, _mm_aesimc_si128(keys[r]));
            }
            b = _mm_aesdeclast_si128(b, keys[0]);
            _mm_storeu_si128(block.as_mut_ptr() as *mut __m128i, b);
        }
    }

    /// Fill `out` with CTR keystream: for each 16-byte block `i`,
    /// `out[2i..2i+2]` receives `E(K, j0 ‖ be32(first_ctr + i))` as two
    /// LE `u64` lanes (memory order == keystream byte order). The first
    /// three nonce words come from `j0`; the big-endian counter word is
    /// rebuilt per block (GCM `inc32` semantics, wrapping at 2^32).
    /// Blocks run four abreast to pipeline the `aesenc` latency chain.
    pub fn ctr_keystream(rk: &[u32; 44], j0: &[u32; 3], first_ctr: u32, out: &mut [u64]) {
        debug_assert_eq!(out.len() % 2, 0);
        // SAFETY: `available()` gates every call site on CPUID.
        unsafe { ctr_keystream_impl(rk, j0, first_ctr, out) }
    }

    #[target_feature(enable = "aes", enable = "sse2")]
    unsafe fn ctr_keystream_impl(rk: &[u32; 44], j0: &[u32; 3], first_ctr: u32, out: &mut [u64]) {
        // SAFETY: all loads/stores stay inside the borrowed slices: the
        // store for block index `i` touches `out[2i..2i+2]` and `i` ranges
        // over `out.len() / 2`; `target_feature` is vouched for by the
        // caller's CPUID check.
        unsafe {
            let keys = load_schedule(rk);
            let nblocks = out.len() / 2;
            let ctr_block = |i: usize| {
                let ctr = first_ctr.wrapping_add(i as u32);
                _mm_set_epi32(
                    ctr.swap_bytes() as i32,
                    j0[2] as i32,
                    j0[1] as i32,
                    j0[0] as i32,
                )
            };
            let mut i = 0;
            while i + 4 <= nblocks {
                let mut b0 = _mm_xor_si128(ctr_block(i), keys[0]);
                let mut b1 = _mm_xor_si128(ctr_block(i + 1), keys[0]);
                let mut b2 = _mm_xor_si128(ctr_block(i + 2), keys[0]);
                let mut b3 = _mm_xor_si128(ctr_block(i + 3), keys[0]);
                for k in &keys[1..10] {
                    b0 = _mm_aesenc_si128(b0, *k);
                    b1 = _mm_aesenc_si128(b1, *k);
                    b2 = _mm_aesenc_si128(b2, *k);
                    b3 = _mm_aesenc_si128(b3, *k);
                }
                b0 = _mm_aesenclast_si128(b0, keys[10]);
                b1 = _mm_aesenclast_si128(b1, keys[10]);
                b2 = _mm_aesenclast_si128(b2, keys[10]);
                b3 = _mm_aesenclast_si128(b3, keys[10]);
                let p = out.as_mut_ptr();
                _mm_storeu_si128(p.add(2 * i) as *mut __m128i, b0);
                _mm_storeu_si128(p.add(2 * i + 2) as *mut __m128i, b1);
                _mm_storeu_si128(p.add(2 * i + 4) as *mut __m128i, b2);
                _mm_storeu_si128(p.add(2 * i + 6) as *mut __m128i, b3);
                i += 4;
            }
            while i < nblocks {
                let mut b = _mm_xor_si128(ctr_block(i), keys[0]);
                for k in &keys[1..10] {
                    b = _mm_aesenc_si128(b, *k);
                }
                b = _mm_aesenclast_si128(b, keys[10]);
                _mm_storeu_si128(out.as_mut_ptr().add(2 * i) as *mut __m128i, b);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    // FIPS 197 Appendix C.1.
    #[test]
    fn fips197_appendix_c1() {
        let key = unhex16("000102030405060708090a0b0c0d0e0f");
        let cipher = Aes128::new(&key);
        let mut block = unhex16("00112233445566778899aabbccddeeff");
        cipher.encrypt_block(&mut block);
        assert_eq!(block, unhex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block, unhex16("00112233445566778899aabbccddeeff"));
    }

    // FIPS 197 Appendix B example vector.
    #[test]
    fn fips197_appendix_b() {
        let key = unhex16("2b7e151628aed2a6abf7158809cf4f3c");
        let cipher = Aes128::new(&key);
        let mut block = unhex16("3243f6a8885a308d313198a2e0370734");
        cipher.encrypt_block(&mut block);
        assert_eq!(block, unhex16("3925841d02dc09fbdc118597196a0b32"));
    }

    // NIST SP 800-38A ECB-AES128 block 1.
    #[test]
    fn sp800_38a_ecb_block1() {
        let key = unhex16("2b7e151628aed2a6abf7158809cf4f3c");
        let cipher = Aes128::new(&key);
        let mut block = unhex16("6bc1bee22e409f96e93d7e117393172a");
        cipher.encrypt_block(&mut block);
        assert_eq!(block, unhex16("3ad77bb40d7a3660a89ecaf32466ef97"));
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many() {
        let cipher = Aes128::new(b"0123456789abcdef");
        for i in 0..64u8 {
            let mut block = [i; 16];
            let orig = block;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, orig, "encryption must change the block");
            cipher.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn different_keys_differ() {
        let c1 = Aes128::new(b"0123456789abcdef");
        let c2 = Aes128::new(b"0123456789abcdeg");
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        c1.encrypt_block(&mut b1);
        c2.encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn hardware_and_scalar_block_paths_agree() {
        // `encrypt_block`/`decrypt_block` dispatch to AES-NI when the host
        // has it; pin them against the always-scalar path bit-for-bit.
        let cipher = Aes128::new(b"agreement-key-00");
        for i in 0..64u8 {
            let mut via_dispatch = [i.wrapping_mul(37); 16];
            let mut via_scalar = via_dispatch;
            cipher.encrypt_block(&mut via_dispatch);
            cipher.encrypt_block_scalar(&mut via_scalar);
            assert_eq!(via_dispatch, via_scalar, "encrypt block {i}");
            cipher.decrypt_block(&mut via_dispatch);
            cipher.decrypt_block_scalar(&mut via_scalar);
            assert_eq!(via_dispatch, via_scalar, "decrypt block {i}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn ctr_keystream_matches_single_block_encryptions() {
        if !ni::available() {
            return;
        }
        let cipher = Aes128::new(b"ctr-keystream-k!");
        let rk = cipher.schedule_words();
        let j0 = [
            0x01020304u32.to_be(),
            0x05060708u32.to_be(),
            0x090a0b0cu32.to_be(),
        ];
        for nblocks in [1usize, 3, 4, 5, 8, 17] {
            let mut ks = vec![0u64; 2 * nblocks];
            ni::ctr_keystream(&rk, &j0, 2, &mut ks);
            for b in 0..nblocks {
                let mut block = [0u8; 16];
                block[..4].copy_from_slice(&j0[0].to_le_bytes());
                block[4..8].copy_from_slice(&j0[1].to_le_bytes());
                block[8..12].copy_from_slice(&j0[2].to_le_bytes());
                block[12..].copy_from_slice(&(2u32.wrapping_add(b as u32)).to_be_bytes());
                cipher.encrypt_block_scalar(&mut block);
                let mut got = [0u8; 16];
                got[..8].copy_from_slice(&ks[2 * b].to_le_bytes());
                got[8..].copy_from_slice(&ks[2 * b + 1].to_le_bytes());
                assert_eq!(got, block, "block {b} of {nblocks}");
            }
        }
    }

    #[test]
    fn gmul_basics() {
        // x * x = x^2; 0x53 * 0xCA = 0x01 is the classic inverse pair.
        assert_eq!(gmul(0x53, 0xca), 0x01);
        assert_eq!(gmul(0x57, 0x13), 0xfe); // FIPS 197 §4.2.1 example
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }
}
