//! Arbitrary-precision unsigned integers.
//!
//! Just enough bignum for the study's public-key needs: finite-field
//! Diffie-Hellman ([`crate::dh`]) and RSA ([`crate::rsa`]). Little-endian
//! `u32` limbs, schoolbook multiplication, Knuth Algorithm D division, and
//! Montgomery modular exponentiation (odd moduli — DH primes and RSA moduli
//! always are).
//!
//! The representation is normalized: no trailing zero limbs; zero is the
//! empty limb vector.

use crate::error::CryptoError;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Ub {
    /// Little-endian 32-bit limbs, normalized (no trailing zeros).
    limbs: Vec<u32>,
}

impl std::fmt::Debug for Ub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ub(0x{})", self.to_hex())
    }
}

impl crate::wipe::Wipe for Ub {
    /// Volatile-zero the limbs, then leave the value as canonical zero.
    /// `Ub` is used for both public and secret numbers, so wiping is not a
    /// `Drop` — secret-bearing owners (e.g. `DhKeyPair`) call it.
    fn wipe(&mut self) {
        crate::wipe::wipe_u32s(&mut self.limbs);
        self.limbs.clear();
    }
}

impl Ub {
    /// Zero.
    pub fn zero() -> Self {
        Ub { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        Ub { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = Ub {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// Construct from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut cur: u32 = 0;
        let mut shift = 0;
        for &b in bytes.iter().rev() {
            cur |= (b as u32) << shift;
            shift += 8;
            if shift == 32 {
                limbs.push(cur);
                cur = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(cur);
        }
        let mut n = Ub { limbs };
        n.normalize();
        n
    }

    /// Serialize to big-endian bytes with no leading zeros (zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Serialize to big-endian bytes left-padded to exactly `len` bytes.
    /// Panics if the value needs more than `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parse a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Self {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        let bytes: Vec<u8> = {
            let padded = if s.len() % 2 == 1 { format!("0{s}") } else { s };
            (0..padded.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&padded[i..i + 2], 16).expect("hex digit"))
                .collect()
        };
        Ub::from_bytes_be(&bytes)
    }

    /// Render as lowercase hex (zero → "0").
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let bytes = self.to_bytes_be();
        let mut s: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        while s.len() > 1 && s.starts_with('0') {
            s.remove(0);
        }
        s
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().map_or(false, |l| l & 1 == 1)
    }

    /// Number of significant bits (zero → 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Test bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 32)) & 1 == 1
    }

    /// Compare.
    pub fn cmp_to(&self, other: &Ub) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &Ub) -> Ub {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let sum = long[i] as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut n = Ub { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`. Panics if `other > self`.
    pub fn sub(&self, other: &Ub) -> Ub {
        assert!(
            self.cmp_to(other) != std::cmp::Ordering::Less,
            "bignum subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let mut diff =
                self.limbs[i] as i64 - other.limbs.get(i).copied().unwrap_or(0) as i64 - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = Ub { limbs: out };
        n.normalize();
        n
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &Ub) -> Ub {
        if self.is_zero() || other.is_zero() {
            return Ub::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        let mut n = Ub { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Ub {
        if self.is_zero() {
            return Ub::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = Ub { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> Ub {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return Ub::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut n = Ub { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder (`self / divisor`, `self % divisor`).
    /// Panics on division by zero.
    pub fn divrem(&self, divisor: &Ub) -> (Ub, Ub) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp_to(divisor) == std::cmp::Ordering::Less {
            return (Ub::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            // Single-limb fast path.
            let d = divisor.limbs[0] as u64;
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u64;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 32) | l as u64;
                q.push((cur / d) as u32);
                rem = cur % d;
            }
            q.reverse();
            let mut qn = Ub { limbs: q };
            qn.normalize();
            return (qn, Ub::from_u64(rem));
        }
        // Knuth Algorithm D (TAOCP vol. 2, 4.3.1).
        let shift = divisor.limbs.last().expect("non-empty").leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs
        let vn = &v.limbs;
        let mut q = vec![0u32; m + 1];
        let b = 1u64 << 32;
        for j in (0..=m).rev() {
            // Estimate q̂.
            let top = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
            let mut qhat = top / vn[n - 1] as u64;
            let mut rhat = top % vn[n - 1] as u64;
            while qhat >= b || qhat * vn[n - 2] as u64 > (rhat << 32) + un[j + n - 2] as u64 {
                qhat -= 1;
                rhat += vn[n - 1] as u64;
                if rhat >= b {
                    break;
                }
            }
            // Multiply and subtract.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[i + j] as i64 - (p as u32) as i64 - borrow;
                un[i + j] = t as u32;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i64 - carry as i64 - borrow;
            un[j + n] = t as u32;
            if t < 0 {
                // q̂ was one too large: add back.
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let t = un[i + j] as u64 + vn[i] as u64 + carry;
                    un[i + j] = t as u32;
                    carry = t >> 32;
                }
                un[j + n] = (un[j + n] as u64).wrapping_add(carry) as u32;
            }
            q[j] = qhat as u32;
        }
        let mut quotient = Ub { limbs: q };
        quotient.normalize();
        let mut rem = Ub {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self % modulus`.
    pub fn rem(&self, modulus: &Ub) -> Ub {
        self.divrem(modulus).1
    }

    /// Modular addition.
    pub fn add_mod(&self, other: &Ub, modulus: &Ub) -> Ub {
        self.add(other).rem(modulus)
    }

    /// Modular multiplication.
    pub fn mul_mod(&self, other: &Ub, modulus: &Ub) -> Ub {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Uses Montgomery multiplication for odd moduli (the common case for
    /// DH primes and RSA), falling back to square-and-multiply with
    /// division-based reduction otherwise.
    pub fn modpow(&self, exp: &Ub, modulus: &Ub) -> Ub {
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus.limbs == [1] {
            return Ub::zero();
        }
        if exp.is_zero() {
            return Ub::one();
        }
        if modulus.is_odd() {
            Montgomery::new(modulus).modpow(&self.rem(modulus), exp)
        } else {
            let mut result = Ub::one();
            let base = self.rem(modulus);
            let bits = exp.bit_len();
            for i in (0..bits).rev() {
                result = result.mul_mod(&result, modulus);
                if exp.bit(i) {
                    result = result.mul_mod(&base, modulus);
                }
            }
            result
        }
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &Ub) -> Ub {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse of `self` modulo `modulus`, if it exists.
    pub fn modinv(&self, modulus: &Ub) -> Result<Ub, CryptoError> {
        // Extended Euclid on (a, m), tracking only the coefficient of a and
        // doing signed bookkeeping via (value, negative) pairs.
        if modulus.is_zero() {
            return Err(CryptoError::InvalidParameter("zero modulus"));
        }
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        // t coefficients as (magnitude, is_negative)
        let mut t0 = (Ub::zero(), false);
        let mut t1 = (Ub::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.divrem(&r1);
            // t2 = t0 - q * t1 with sign tracking.
            let qt1 = q.mul(&t1.0);
            let t2 = sub_signed(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0 != Ub::one() {
            return Err(CryptoError::InvalidParameter("not invertible"));
        }
        let inv = if t0.1 {
            modulus.sub(&t0.0.rem(modulus))
        } else {
            t0.0.rem(modulus)
        };
        Ok(inv.rem(modulus))
    }
}

/// Signed subtraction over (magnitude, negative) pairs: `a - b`.
fn sub_signed(a: &(Ub, bool), b: &(Ub, bool)) -> (Ub, bool) {
    match (a.1, b.1) {
        (false, true) => (a.0.add(&b.0), false),
        (true, false) => (a.0.add(&b.0), true),
        (an, _) => {
            // Same sign: |a| - |b| with possible sign flip.
            if a.0.cmp_to(&b.0) != std::cmp::Ordering::Less {
                (a.0.sub(&b.0), an)
            } else {
                (b.0.sub(&a.0), !an)
            }
        }
    }
}

/// Montgomery context for a fixed odd modulus.
pub struct Montgomery {
    n: Ub,
    n0inv: u32,   // -n^{-1} mod 2^32
    rr: Ub,       // R^2 mod n, R = 2^(32*k)
    width: usize, // limb count of n
}

impl Montgomery {
    /// Build a context. Panics if the modulus is even or < 3.
    pub fn new(modulus: &Ub) -> Self {
        assert!(modulus.is_odd(), "Montgomery requires odd modulus");
        assert!(modulus.bit_len() >= 2, "modulus too small");
        let k = modulus.limbs.len();
        // n0inv = -n^{-1} mod 2^32 via Newton iteration.
        let n0 = modulus.limbs[0];
        let mut inv = 1u32;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0inv = inv.wrapping_neg();
        // R^2 mod n where R = 2^(32k).
        let r = Ub::one().shl(32 * k);
        let rr = r.mul(&r).rem(modulus);
        Montgomery {
            n: modulus.clone(),
            n0inv,
            rr,
            width: k,
        }
    }

    /// Montgomery product: `a * b * R^{-1} mod n` (CIOS).
    fn mont_mul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let k = self.width;
        let mut t = vec![0u32; k + 2];
        for i in 0..k {
            let ai = a.get(i).copied().unwrap_or(0) as u64;
            // t += a_i * b
            let mut carry = 0u64;
            for j in 0..k {
                let sum = t[j] as u64 + ai * b.get(j).copied().unwrap_or(0) as u64 + carry;
                t[j] = sum as u32;
                carry = sum >> 32;
            }
            let sum = t[k] as u64 + carry;
            t[k] = sum as u32;
            t[k + 1] = (sum >> 32) as u32;
            // m = t[0] * n0inv mod 2^32; t += m * n; t >>= 32
            let m = t[0].wrapping_mul(self.n0inv) as u64;
            let mut carry = (t[0] as u64 + m * self.n.limbs[0] as u64) >> 32;
            for j in 1..k {
                let sum = t[j] as u64 + m * self.n.limbs[j] as u64 + carry;
                t[j - 1] = sum as u32;
                carry = sum >> 32;
            }
            let sum = t[k] as u64 + carry;
            t[k - 1] = sum as u32;
            t[k] = t[k + 1].wrapping_add((sum >> 32) as u32);
            t[k + 1] = 0;
        }
        t.truncate(k + 1);
        // Conditional subtraction to bring into [0, n).
        let mut result = Ub { limbs: t };
        result.normalize();
        if result.cmp_to(&self.n) != std::cmp::Ordering::Less {
            result = result.sub(&self.n);
        }
        let mut limbs = result.limbs;
        limbs.resize(k, 0);
        limbs
    }

    /// `base^exp mod n` for `base < n`.
    pub fn modpow(&self, base: &Ub, exp: &Ub) -> Ub {
        let k = self.width;
        let mut base_limbs = base.limbs.clone();
        base_limbs.resize(k, 0);
        let mut rr = self.rr.limbs.clone();
        rr.resize(k, 0);
        // Convert to Montgomery domain.
        let base_m = self.mont_mul(&base_limbs, &rr);
        // result = R mod n (Montgomery form of 1).
        let mut one = vec![0u32; k];
        one[0] = 1;
        let mut result = self.mont_mul(&one, &rr);
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            result = self.mont_mul(&result, &result);
            if exp.bit(i) {
                result = self.mont_mul(&result, &base_m);
            }
        }
        // Convert out of Montgomery domain.
        let out = self.mont_mul(&result, &one);
        let mut n = Ub { limbs: out };
        n.normalize();
        n
    }
}

/// Generate a uniformly random value in `[0, bound)` using rejection
/// sampling over `fill`'s bytes. `fill` is any byte-filling closure
/// (typically a DRBG).
pub fn random_below(bound: &Ub, mut fill: impl FnMut(&mut [u8])) -> Ub {
    assert!(!bound.is_zero(), "empty range");
    let byte_len = (bound.bit_len() + 7) / 8;
    let top_bits = bound.bit_len() % 8;
    let mask = if top_bits == 0 {
        0xff
    } else {
        (1u16 << top_bits) as u8 - 1
    };
    let mut buf = vec![0u8; byte_len];
    loop {
        fill(&mut buf);
        buf[0] &= mask;
        let candidate = Ub::from_bytes_be(&buf);
        if candidate.cmp_to(bound) == std::cmp::Ordering::Less {
            return candidate;
        }
    }
}

/// Miller-Rabin probable-prime test with `rounds` random bases.
pub fn is_probable_prime(n: &Ub, rounds: usize, mut fill: impl FnMut(&mut [u8])) -> bool {
    if n.bit_len() < 2 {
        return false; // 0 and 1
    }
    const SMALL_PRIMES: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];
    for &p in &SMALL_PRIMES {
        let pp = Ub::from_u64(p);
        match n.cmp_to(&pp) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Greater => {
                if n.rem(&pp).is_zero() {
                    return false;
                }
            }
        }
    }
    // n - 1 = d * 2^s
    let n_minus_1 = n.sub(&Ub::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while !d.is_odd() {
        d = d.shr(1);
        s += 1;
    }
    let two = Ub::from_u64(2);
    let bound = n.sub(&Ub::from_u64(3)); // bases in [2, n-2]
    'outer: for _ in 0..rounds {
        let a = random_below(&bound, &mut fill).add(&two);
        let mut x = a.modpow(&d, n);
        if x == Ub::one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Generate a random probable prime of exactly `bits` bits.
pub fn gen_prime(bits: usize, mut fill: impl FnMut(&mut [u8])) -> Ub {
    assert!(bits >= 8, "prime too small");
    let byte_len = (bits + 7) / 8;
    loop {
        let mut buf = vec![0u8; byte_len];
        fill(&mut buf);
        // Force exact bit length and oddness.
        let top_bit = (bits - 1) % 8;
        buf[0] &= ((1u16 << (top_bit + 1)) - 1) as u8;
        buf[0] |= 1 << top_bit;
        let last = buf.len() - 1;
        buf[last] |= 1;
        let candidate = Ub::from_bytes_be(&buf);
        if is_probable_prime(&candidate, 20, &mut fill) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_counter() -> impl FnMut(&mut [u8]) {
        // A toy deterministic filler for tests: SHA-256 counter stream.
        let mut ctr = 0u64;
        move |buf: &mut [u8]| {
            let mut off = 0;
            while off < buf.len() {
                let d = crate::sha256::sha256(&ctr.to_be_bytes());
                let take = (buf.len() - off).min(32);
                buf[off..off + take].copy_from_slice(&d[..take]);
                off += take;
                ctr += 1;
            }
        }
    }

    #[test]
    fn roundtrip_bytes_and_hex() {
        let n = Ub::from_hex("deadbeefcafebabe0123456789");
        assert_eq!(n.to_hex(), "deadbeefcafebabe0123456789");
        assert_eq!(Ub::from_bytes_be(&n.to_bytes_be()), n);
        assert_eq!(Ub::from_bytes_be(&[0, 0, 1]), Ub::one());
        assert_eq!(Ub::zero().to_bytes_be(), Vec::<u8>::new());
        assert_eq!(Ub::zero().to_hex(), "0");
    }

    #[test]
    fn padded_serialization() {
        let n = Ub::from_u64(0x1234);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_serialization_overflow_panics() {
        Ub::from_u64(0x123456).to_bytes_be_padded(2);
    }

    #[test]
    fn add_sub_small() {
        let a = Ub::from_u64(u64::MAX);
        let b = Ub::from_u64(1);
        let sum = a.add(&b);
        assert_eq!(sum.to_hex(), "10000000000000000");
        assert_eq!(sum.sub(&b), a);
        assert_eq!(a.sub(&a), Ub::zero());
    }

    #[test]
    fn mul_known() {
        let a = Ub::from_hex("ffffffffffffffff");
        let b = Ub::from_hex("ffffffffffffffff");
        assert_eq!(a.mul(&b).to_hex(), "fffffffffffffffe0000000000000001");
        assert_eq!(a.mul(&Ub::zero()), Ub::zero());
        assert_eq!(a.mul(&Ub::one()), a);
    }

    #[test]
    fn shifts() {
        let a = Ub::from_u64(0b1011);
        assert_eq!(a.shl(4).to_hex(), "b0");
        assert_eq!(a.shl(64).to_hex(), "b0000000000000000");
        assert_eq!(a.shl(64).shr(64), a);
        assert_eq!(a.shr(2).to_hex(), "2");
        assert_eq!(a.shr(100), Ub::zero());
    }

    #[test]
    fn bit_len_and_bit() {
        assert_eq!(Ub::zero().bit_len(), 0);
        assert_eq!(Ub::one().bit_len(), 1);
        assert_eq!(Ub::from_u64(0x100).bit_len(), 9);
        let n = Ub::from_hex("8000000000000000000000000000000000");
        assert_eq!(n.bit_len(), 136);
        assert!(n.bit(135));
        assert!(!n.bit(134));
        assert!(!n.bit(500));
    }

    #[test]
    fn divrem_small_divisor() {
        let a = Ub::from_hex("123456789abcdef0123456789abcdef");
        let d = Ub::from_u64(97);
        let (q, r) = a.divrem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r.cmp_to(&d) == std::cmp::Ordering::Less);
    }

    #[test]
    fn divrem_multi_limb() {
        let a = Ub::from_hex("fedcba9876543210fedcba9876543210fedcba98");
        let d = Ub::from_hex("123456789abcdef01234");
        let (q, r) = a.divrem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r.cmp_to(&d) == std::cmp::Ordering::Less);
    }

    #[test]
    fn divrem_edge_cases() {
        let a = Ub::from_hex("abcdef");
        assert_eq!(a.divrem(&a), (Ub::one(), Ub::zero()));
        assert_eq!(a.divrem(&Ub::one()), (a.clone(), Ub::zero()));
        let bigger = a.add(&Ub::one());
        assert_eq!(a.divrem(&bigger), (Ub::zero(), a.clone()));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        Ub::one().divrem(&Ub::zero());
    }

    #[test]
    fn modpow_small_known() {
        // 4^13 mod 497 = 445 (classic example).
        let r = Ub::from_u64(4).modpow(&Ub::from_u64(13), &Ub::from_u64(497));
        assert_eq!(r, Ub::from_u64(445));
        // Fermat: 2^(p-1) ≡ 1 mod p for prime p = 1000003.
        let p = Ub::from_u64(1_000_003);
        let r = Ub::from_u64(2).modpow(&p.sub(&Ub::one()), &p);
        assert_eq!(r, Ub::one());
    }

    #[test]
    fn modpow_even_modulus() {
        // 3^5 mod 16 = 243 mod 16 = 3 (exercises non-Montgomery path).
        let r = Ub::from_u64(3).modpow(&Ub::from_u64(5), &Ub::from_u64(16));
        assert_eq!(r, Ub::from_u64(3));
    }

    #[test]
    fn modpow_exp_zero_and_mod_one() {
        let m = Ub::from_u64(97);
        assert_eq!(Ub::from_u64(42).modpow(&Ub::zero(), &m), Ub::one());
        assert_eq!(
            Ub::from_u64(42).modpow(&Ub::from_u64(5), &Ub::one()),
            Ub::zero()
        );
    }

    #[test]
    fn montgomery_matches_naive() {
        // Cross-check Montgomery against division-based modpow for a batch
        // of odd moduli.
        let mut fill = fill_counter();
        for _ in 0..10 {
            let mut buf = [0u8; 24];
            fill(&mut buf);
            let mut m = Ub::from_bytes_be(&buf);
            if !m.is_odd() {
                m = m.add(&Ub::one());
            }
            if m.bit_len() < 2 {
                continue;
            }
            let mut bbuf = [0u8; 20];
            fill(&mut bbuf);
            let base = Ub::from_bytes_be(&bbuf);
            let exp = Ub::from_u64(65537);
            let mont = base.modpow(&exp, &m);
            // Naive reference.
            let mut reference = Ub::one();
            let b = base.rem(&m);
            for i in (0..exp.bit_len()).rev() {
                reference = reference.mul_mod(&reference, &m);
                if exp.bit(i) {
                    reference = reference.mul_mod(&b, &m);
                }
            }
            assert_eq!(mont, reference, "modulus {}", m.to_hex());
        }
    }

    #[test]
    fn gcd_and_modinv() {
        let a = Ub::from_u64(270);
        let b = Ub::from_u64(192);
        assert_eq!(a.gcd(&b), Ub::from_u64(6));
        // 3 * 7 = 21 ≡ 1 mod 10 → inverse of 3 mod 10 is 7.
        assert_eq!(
            Ub::from_u64(3).modinv(&Ub::from_u64(10)).unwrap(),
            Ub::from_u64(7)
        );
        // 65537^{-1} mod a known prime round-trips.
        let p = Ub::from_hex("ffffffffffffffc5"); // large prime < 2^64
        let e = Ub::from_u64(65537);
        let inv = e.modinv(&p).unwrap();
        assert_eq!(e.mul_mod(&inv, &p), Ub::one());
        // Non-invertible.
        assert!(Ub::from_u64(6).modinv(&Ub::from_u64(9)).is_err());
    }

    #[test]
    fn random_below_in_range() {
        let bound = Ub::from_u64(1000);
        let mut fill = fill_counter();
        for _ in 0..50 {
            let v = random_below(&bound, &mut fill);
            assert!(v.cmp_to(&bound) == std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn small_primes_recognized() {
        let mut fill = fill_counter();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 65537, 1_000_003] {
            assert!(
                is_probable_prime(&Ub::from_u64(p), 10, &mut fill),
                "{p} is prime"
            );
        }
        for c in [0u64, 1, 4, 9, 15, 91, 561, 65535, 1_000_001] {
            assert!(
                !is_probable_prime(&Ub::from_u64(c), 10, &mut fill),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut fill = fill_counter();
        // 561, 1105, 1729 fool Fermat but not Miller-Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert!(!is_probable_prime(&Ub::from_u64(c), 20, &mut fill), "{c}");
        }
    }

    #[test]
    fn gen_prime_has_exact_bit_length() {
        let mut fill = fill_counter();
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut fill);
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd());
            assert!(is_probable_prime(&p, 10, &mut fill));
        }
    }

    #[test]
    fn rfc3526_prime_is_prime() {
        // The 1536-bit MODP group prime (RFC 3526 group 5) — a good stress
        // test for Montgomery modpow on realistic sizes.
        let p = Ub::from_hex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
             020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
             4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
             EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
             98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
             9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
        );
        let mut fill = fill_counter();
        assert!(is_probable_prime(&p, 5, &mut fill));
    }
}
