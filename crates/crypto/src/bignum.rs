//! Arbitrary-precision unsigned integers.
//!
//! Just enough bignum for the study's public-key needs: finite-field
//! Diffie-Hellman ([`crate::dh`]) and RSA ([`crate::rsa`]). Little-endian
//! `u64` limbs with `u128` intermediates, schoolbook multiplication, Knuth
//! Algorithm D division, and windowed Montgomery modular exponentiation
//! (odd moduli — DH primes and RSA moduli always are).
//!
//! The representation is normalized: no trailing zero limbs; zero is the
//! empty limb vector.
//!
//! ## Hot-path design
//!
//! The daily campaign performs a full handshake per domain per day, and
//! each handshake pays for at least one RSA signature plus one or two DHE
//! exponentiations through this module. Three choices keep that affordable:
//!
//! * **64-bit limbs.** Halves the limb count versus u32 limbs and lets the
//!   inner loops run on `u128` products, roughly quartering the word-level
//!   work per full-width multiply.
//! * **Reusable [`Montgomery`] contexts.** `R² mod n` and `n0inv` cost a
//!   full-width multiply plus a long division; [`Montgomery::new`] runs
//!   once per fixed modulus (cached by `dh`/`rsa`) instead of once per
//!   `modpow`. All scratch space inside an exponentiation is allocated
//!   once up front and reused — nothing allocates inside the window loop.
//! * **Fixed-window exponentiation.** `modpow` processes the exponent in
//!   4-bit windows over a 16-entry precomputed table, with a dedicated
//!   squaring routine for the ~4 squarings per window. The table lookup is
//!   a constant-time full-table scan ([`crate::ct::ct_select_u64`]), so a
//!   secret exponent window never forms a memory address.
//!
//! The conditional final subtraction inside Montgomery reduction is
//! value-dependent (as in the original implementation); the constant-time
//! guarantee here is scoped to the table scan, which is the only
//! secret-*indexed* access pattern.

use crate::error::CryptoError;
use ts_telemetry::Counter;

/// Every modular exponentiation performed (Montgomery or fallback path).
static MODEXP_TOTAL: Counter = Counter::new("crypto.modexp.total");

/// Modular exponentiations served through a process-cached [`Montgomery`]
/// context (per-`DhGroup` statics, per-RSA-key lazies) instead of
/// rebuilding `R² mod n`. Incremented at the cache access sites.
pub(crate) static MONT_CACHE_HIT: Counter = Counter::new("crypto.mont.cache.hit");

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Ub {
    /// Little-endian 64-bit limbs, normalized (no trailing zeros).
    limbs: Vec<u64>,
}

impl std::fmt::Debug for Ub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ub(0x{})", self.to_hex())
    }
}

impl crate::wipe::Wipe for Ub {
    /// Volatile-zero the limbs, then leave the value as canonical zero.
    /// `Ub` is used for both public and secret numbers, so wiping is not a
    /// `Drop` — secret-bearing owners (e.g. `DhKeyPair`) call it.
    fn wipe(&mut self) {
        crate::wipe::wipe_u64s(&mut self.limbs);
        self.limbs.clear();
    }
}

impl Ub {
    /// Zero.
    pub fn zero() -> Self {
        Ub { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        Ub { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = Ub { limbs: vec![v] };
        n.normalize();
        n
    }

    /// Construct from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut cur: u64 = 0;
        let mut shift = 0;
        for &b in bytes.iter().rev() {
            cur |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(cur);
                cur = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(cur);
        }
        let mut n = Ub { limbs };
        n.normalize();
        n
    }

    /// Serialize to big-endian bytes with no leading zeros (zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let lead = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..lead);
        out
    }

    /// Serialize to big-endian bytes left-padded to exactly `len` bytes.
    /// Panics if the value needs more than `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parse a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Self {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        let bytes: Vec<u8> = {
            let padded = if s.len() % 2 == 1 { format!("0{s}") } else { s };
            (0..padded.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&padded[i..i + 2], 16).expect("hex digit"))
                .collect()
        };
        Ub::from_bytes_be(&bytes)
    }

    /// Render as lowercase hex (zero → "0").
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let bytes = self.to_bytes_be();
        let mut s: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        while s.len() > 1 && s.starts_with('0') {
            s.remove(0);
        }
        s
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().map_or(false, |l| l & 1 == 1)
    }

    /// Number of significant bits (zero → 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Test bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Compare.
    pub fn cmp_to(&self, other: &Ub) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &Ub) -> Ub {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u128;
        for i in 0..long.len() {
            let sum = long[i] as u128 + short.get(i).copied().unwrap_or(0) as u128 + carry;
            out.push(sum as u64);
            carry = sum >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        let mut n = Ub { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`. Panics if `other > self`.
    pub fn sub(&self, other: &Ub) -> Ub {
        assert!(
            self.cmp_to(other) != std::cmp::Ordering::Less,
            "bignum subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let mut diff =
                self.limbs[i] as i128 - other.limbs.get(i).copied().unwrap_or(0) as i128 - borrow;
            if diff < 0 {
                diff += 1 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = Ub { limbs: out };
        n.normalize();
        n
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &Ub) -> Ub {
        if self.is_zero() || other.is_zero() {
            return Ub::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = Ub { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Ub {
        if self.is_zero() {
            return Ub::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = Ub { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> Ub {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Ub::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut n = Ub { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder (`self / divisor`, `self % divisor`).
    /// Panics on division by zero.
    pub fn divrem(&self, divisor: &Ub) -> (Ub, Ub) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp_to(divisor) == std::cmp::Ordering::Less {
            return (Ub::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            // Single-limb fast path.
            let d = divisor.limbs[0] as u128;
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u128;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 64) | l as u128;
                q.push((cur / d) as u64);
                rem = cur % d;
            }
            q.reverse();
            let mut qn = Ub { limbs: q };
            qn.normalize();
            return (qn, Ub::from_u64(rem as u64));
        }
        // Knuth Algorithm D (TAOCP vol. 2, 4.3.1).
        let shift = divisor.limbs.last().expect("non-empty").leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];
        let b = 1u128 << 64;
        for j in (0..=m).rev() {
            // Estimate q̂.
            let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = top / vn[n - 1] as u128;
            let mut rhat = top % vn[n - 1] as u128;
            while qhat >= b || qhat * vn[n - 2] as u128 > (rhat << 64) + un[j + n - 2] as u128 {
                qhat -= 1;
                rhat += vn[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }
            // Multiply and subtract.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[i + j] as i128 - (p as u64) as i128 - borrow;
                un[i + j] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i128 - carry as i128 - borrow;
            un[j + n] = t as u64;
            if t < 0 {
                // q̂ was one too large: add back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let t = un[i + j] as u128 + vn[i] as u128 + carry;
                    un[i + j] = t as u64;
                    carry = t >> 64;
                }
                un[j + n] = (un[j + n] as u128).wrapping_add(carry) as u64;
            }
            q[j] = qhat as u64;
        }
        let mut quotient = Ub { limbs: q };
        quotient.normalize();
        let mut rem = Ub {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self % modulus`.
    pub fn rem(&self, modulus: &Ub) -> Ub {
        self.divrem(modulus).1
    }

    /// Modular addition.
    pub fn add_mod(&self, other: &Ub, modulus: &Ub) -> Ub {
        self.add(other).rem(modulus)
    }

    /// Modular multiplication.
    pub fn mul_mod(&self, other: &Ub, modulus: &Ub) -> Ub {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Uses windowed Montgomery multiplication for odd moduli (the common
    /// case for DH primes and RSA), falling back to square-and-multiply
    /// with division-based reduction otherwise. Callers exponentiating
    /// repeatedly against a fixed modulus should hold a [`Montgomery`]
    /// context instead — this entry point rebuilds one per call.
    pub fn modpow(&self, exp: &Ub, modulus: &Ub) -> Ub {
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus.limbs == [1] {
            return Ub::zero();
        }
        if exp.is_zero() {
            return Ub::one();
        }
        if modulus.is_odd() {
            Montgomery::new(modulus).modpow(self, exp)
        } else {
            MODEXP_TOTAL.inc();
            let mut result = Ub::one();
            let base = self.rem(modulus);
            let bits = exp.bit_len();
            for i in (0..bits).rev() {
                result = result.mul_mod(&result, modulus);
                if exp.bit(i) {
                    result = result.mul_mod(&base, modulus);
                }
            }
            result
        }
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &Ub) -> Ub {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse of `self` modulo `modulus`, if it exists.
    pub fn modinv(&self, modulus: &Ub) -> Result<Ub, CryptoError> {
        // Extended Euclid on (a, m), tracking only the coefficient of a and
        // doing signed bookkeeping via (value, negative) pairs.
        if modulus.is_zero() {
            return Err(CryptoError::InvalidParameter("zero modulus"));
        }
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        // t coefficients as (magnitude, is_negative)
        let mut t0 = (Ub::zero(), false);
        let mut t1 = (Ub::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.divrem(&r1);
            // t2 = t0 - q * t1 with sign tracking.
            let qt1 = q.mul(&t1.0);
            let t2 = sub_signed(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0 != Ub::one() {
            return Err(CryptoError::InvalidParameter("not invertible"));
        }
        let inv = if t0.1 {
            modulus.sub(&t0.0.rem(modulus))
        } else {
            t0.0.rem(modulus)
        };
        Ok(inv.rem(modulus))
    }
}

/// Signed subtraction over (magnitude, negative) pairs: `a - b`.
fn sub_signed(a: &(Ub, bool), b: &(Ub, bool)) -> (Ub, bool) {
    match (a.1, b.1) {
        (false, true) => (a.0.add(&b.0), false),
        (true, false) => (a.0.add(&b.0), true),
        (an, _) => {
            // Same sign: |a| - |b| with possible sign flip.
            if a.0.cmp_to(&b.0) != std::cmp::Ordering::Less {
                (a.0.sub(&b.0), an)
            } else {
                (b.0.sub(&a.0), !an)
            }
        }
    }
}

/// Exponent window width in bits.
const WINDOW_BITS: usize = 4;
/// Precomputed-table size: one entry per window value.
const TABLE_SIZE: usize = 1 << WINDOW_BITS;

/// Montgomery context for a fixed odd modulus.
///
/// Holds everything that depends only on the modulus — `n0inv`, `R² mod n`
/// and `R mod n` — so repeated exponentiations against the same modulus
/// (a DH group prime, an RSA key) skip the full-width multiply and long
/// division that context construction costs. `dh` caches one per group in
/// a process-wide `OnceLock`; `rsa` caches one per key.
#[derive(Clone)]
pub struct Montgomery {
    n: Ub,
    n0inv: u64,   // -n^{-1} mod 2^64
    rr: Vec<u64>, // R^2 mod n, R = 2^(64*k), padded to k limbs
    r1: Vec<u64>, // R mod n (the Montgomery form of 1), padded to k limbs
    width: usize, // limb count of n
}

impl crate::wipe::Wipe for Montgomery {
    /// A context for a secret modulus (an RSA prime in the CRT path) is
    /// itself secret: `n`, `R mod n` and `R² mod n` all reveal the prime.
    /// Like `Ub`, wiping is the owner's job, not a `Drop`.
    fn wipe(&mut self) {
        self.n.wipe();
        crate::wipe::wipe_u64s(&mut self.rr);
        self.rr.clear();
        crate::wipe::wipe_u64s(&mut self.r1);
        self.r1.clear();
        self.n0inv = 0;
        self.width = 0;
    }
}

impl Montgomery {
    /// Build a context. Panics if the modulus is even or < 3.
    pub fn new(modulus: &Ub) -> Self {
        assert!(modulus.is_odd(), "Montgomery requires odd modulus");
        assert!(modulus.bit_len() >= 2, "modulus too small");
        let k = modulus.limbs.len();
        // n0inv = -n^{-1} mod 2^64 via Newton iteration; each round doubles
        // the number of correct low bits (1 → 64 needs six rounds).
        let n0 = modulus.limbs[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0inv = inv.wrapping_neg();
        // R mod n and R^2 mod n where R = 2^(64k).
        let r1_ub = Ub::one().shl(64 * k).rem(modulus);
        let rr_ub = r1_ub.mul(&r1_ub).rem(modulus);
        let mut r1 = r1_ub.limbs;
        r1.resize(k, 0);
        let mut rr = rr_ub.limbs;
        rr.resize(k, 0);
        Montgomery {
            n: modulus.clone(),
            n0inv,
            rr,
            r1,
            width: k,
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Ub {
        &self.n
    }

    /// Scratch length required by the `*_assign` routines.
    fn scratch_len(&self) -> usize {
        2 * self.width + 1
    }

    /// Montgomery product in place: `a ← a * b * R^{-1} mod n` (CIOS).
    ///
    /// `a` and `b` are `width` limbs; `t` is caller-provided scratch of at
    /// least [`Self::scratch_len`] limbs. No allocation.
    fn mont_mul_assign(&self, a: &mut [u64], b: &[u64], t: &mut [u64]) {
        let k = self.width;
        let n = &self.n.limbs;
        let t = &mut t[..k + 2];
        t.fill(0);
        for i in 0..k {
            let ai = a[i] as u128;
            // t += a_i * b
            let mut carry = 0u128;
            for j in 0..k {
                let sum = t[j] as u128 + ai * b[j] as u128 + carry;
                t[j] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[k] as u128 + carry;
            t[k] = sum as u64;
            t[k + 1] = (sum >> 64) as u64;
            // m = t[0] * n0inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0inv) as u128;
            let mut carry = (t[0] as u128 + m * n[0] as u128) >> 64;
            for j in 1..k {
                let sum = t[j] as u128 + m * n[j] as u128 + carry;
                t[j - 1] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[k] as u128 + carry;
            t[k - 1] = sum as u64;
            t[k] = t[k + 1].wrapping_add((sum >> 64) as u64);
            t[k + 1] = 0;
        }
        self.reduce_into(&t[..=k], a);
    }

    /// Montgomery squaring in place: `a ← a² * R^{-1} mod n`.
    ///
    /// Dedicated SOS routine: computes the off-diagonal half of the square,
    /// doubles it with one shift, adds the diagonal, then runs a separate
    /// Montgomery reduction — ~1.5× the speed of `mont_mul_assign` with
    /// itself. `t` is scratch of at least [`Self::scratch_len`] limbs.
    fn mont_sqr_assign(&self, a: &mut [u64], t: &mut [u64]) {
        let k = self.width;
        let n = &self.n.limbs;
        let t = &mut t[..2 * k + 1];
        t.fill(0);
        // Off-diagonal products (i < j); position i+k is first touched here.
        for i in 0..k {
            let ai = a[i] as u128;
            let mut carry = 0u128;
            for j in (i + 1)..k {
                let sum = t[i + j] as u128 + ai * a[j] as u128 + carry;
                t[i + j] = sum as u64;
                carry = sum >> 64;
            }
            t[i + k] = carry as u64;
        }
        // Double the cross terms, then add the diagonal a_i².
        let mut top = 0u64;
        for limb in t[..2 * k].iter_mut() {
            let next = *limb >> 63;
            *limb = (*limb << 1) | top;
            top = next;
        }
        t[2 * k] = top;
        let mut carry = 0u64;
        for i in 0..k {
            let d = a[i] as u128 * a[i] as u128;
            let s0 = t[2 * i] as u128 + (d as u64) as u128 + carry as u128;
            t[2 * i] = s0 as u64;
            let s1 = t[2 * i + 1] as u128 + (d >> 64) + (s0 >> 64);
            t[2 * i + 1] = s1 as u64;
            carry = (s1 >> 64) as u64;
        }
        t[2 * k] += carry;
        // Montgomery reduction of the 2k-limb square.
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n0inv) as u128;
            let mut carry = 0u128;
            for j in 0..k {
                let sum = t[i + j] as u128 + m * n[j] as u128 + carry;
                t[i + j] = sum as u64;
                carry = sum >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let sum = t[idx] as u128 + carry;
                t[idx] = sum as u64;
                carry = sum >> 64;
                idx += 1;
            }
        }
        let (_, hi) = t.split_at(k);
        self.reduce_into(hi, a);
    }

    /// Write `t mod n` into `out`, where `t` is `width + 1` limbs and
    /// `t < 2n` (the CIOS/SOS postcondition): at most one subtraction.
    fn reduce_into(&self, t: &[u64], out: &mut [u64]) {
        let k = self.width;
        let n = &self.n.limbs;
        let ge = t[k] != 0 || !limbs_lt(&t[..k], n);
        if ge {
            let mut borrow = 0u64;
            for i in 0..k {
                let (d1, b1) = t[i].overflowing_sub(n[i]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[i] = d2;
                borrow = (b1 | b2) as u64;
            }
            debug_assert_eq!(borrow, t[k]);
        } else {
            out.copy_from_slice(&t[..k]);
        }
    }

    /// `base^exp mod n`.
    ///
    /// Fixed-window (w = 4) exponentiation: 16 precomputed odd-and-even
    /// powers in the Montgomery domain, four dedicated squarings per
    /// window, and a constant-time full-table scan for the window lookup —
    /// every table entry is read and masked with
    /// [`crate::ct::ct_select_u64`], so the (possibly secret) window value
    /// never selects a memory address. All scratch is allocated once
    /// before the loop.
    pub fn modpow(&self, base: &Ub, exp: &Ub) -> Ub {
        MODEXP_TOTAL.inc();
        let mut scratch = vec![0u64; self.scratch_len()];
        let table = self.build_window_table(base, &mut scratch);
        let mut operand = vec![0u64; self.width];
        self.modpow_with_table(&table, exp, &mut scratch, &mut operand)
    }

    /// Several exponentiations of the *same* base: `base^e mod n` for each
    /// `e` in `exps`.
    ///
    /// The 16-entry window table costs 15 Montgomery multiplies to build;
    /// a batch pays that once instead of once per exponent, which is the
    /// dominant fixed cost for the short exponents in the simulation's DH
    /// groups. Results are bit-identical to serial [`Montgomery::modpow`]
    /// calls (same table, same window walk).
    pub fn modpow_batch(&self, base: &Ub, exps: &[Ub]) -> Vec<Ub> {
        let mut scratch = vec![0u64; self.scratch_len()];
        let table = self.build_window_table(base, &mut scratch);
        let mut operand = vec![0u64; self.width];
        exps.iter()
            .map(|exp| {
                MODEXP_TOTAL.inc();
                self.modpow_with_table(&table, exp, &mut scratch, &mut operand)
            })
            .collect()
    }

    /// Straus/Shamir multi-exponentiation: `∏ gᵢ^eᵢ mod n` in one pass.
    ///
    /// All factors share a single squaring chain — each 4-bit window
    /// position squares the accumulator four times *once*, then multiplies
    /// in every base's table entry — so the squaring work (the bulk of an
    /// exponentiation) is paid once instead of once per factor. The
    /// per-base window lookups use the same constant-time full-table scan
    /// as [`Montgomery::modpow`]. Counts one modexp per factor in
    /// telemetry, since that is the serial work it replaces.
    pub fn multi_modpow(&self, pairs: &[(Ub, Ub)]) -> Ub {
        if pairs.is_empty() {
            return Ub::one().rem(&self.n);
        }
        let mut scratch = vec![0u64; self.scratch_len()];
        let tables: Vec<Vec<u64>> = pairs
            .iter()
            .map(|(base, _)| {
                MODEXP_TOTAL.inc();
                self.build_window_table(base, &mut scratch)
            })
            .collect();
        let bits = pairs
            .iter()
            .map(|(_, e)| e.bit_len())
            .max()
            .expect("non-empty");
        let windows = bits.div_ceil(WINDOW_BITS);
        let mut result = self.r1.clone();
        let mut operand = vec![0u64; self.width];
        for w in (0..windows).rev() {
            if w + 1 != windows {
                for _ in 0..WINDOW_BITS {
                    self.mont_sqr_assign(&mut result, &mut scratch);
                }
            }
            for (table, (_, exp)) in tables.iter().zip(pairs.iter()) {
                let mut win = 0u64;
                for b in 0..WINDOW_BITS {
                    win |= (exp.bit(w * WINDOW_BITS + b) as u64) << b;
                }
                self.ct_table_scan(table, win, &mut operand);
                self.mont_mul_assign(&mut result, &operand, &mut scratch);
            }
        }
        // Convert out of the Montgomery domain: multiply by plain 1.
        operand.fill(0);
        operand[0] = 1;
        self.mont_mul_assign(&mut result, &operand, &mut scratch);
        let mut out = Ub { limbs: result };
        out.normalize();
        out
    }

    /// Build the fixed-window table for `base`: `table[w] = base^w` in
    /// Montgomery form, `table[0] = Montgomery(1)`.
    fn build_window_table(&self, base: &Ub, scratch: &mut [u64]) -> Vec<u64> {
        let k = self.width;
        let reduced;
        let base = if base.cmp_to(&self.n) == std::cmp::Ordering::Less {
            base
        } else {
            reduced = base.rem(&self.n);
            &reduced
        };
        let mut table = vec![0u64; TABLE_SIZE * k];
        table[..k].copy_from_slice(&self.r1);
        {
            let (_, entry1) = table.split_at_mut(k);
            entry1[..base.limbs.len()].copy_from_slice(&base.limbs);
            self.mont_mul_assign(&mut entry1[..k], &self.rr, scratch);
        }
        for w in 2..TABLE_SIZE {
            let (lo, hi) = table.split_at_mut(w * k);
            hi[..k].copy_from_slice(&lo[(w - 1) * k..]);
            self.mont_mul_assign(&mut hi[..k], &lo[k..2 * k], scratch);
        }
        table
    }

    /// Constant-time table scan: touch all 16 entries, keep `win`'s.
    fn ct_table_scan(&self, table: &[u64], win: u64, operand: &mut [u64]) {
        let k = self.width;
        operand.fill(0);
        for (idx, entry) in table.chunks_exact(k).enumerate() {
            let mask = crate::ct::ct_eq_u64_mask(idx as u64, win);
            for (o, &e) in operand.iter_mut().zip(entry.iter()) {
                *o = crate::ct::ct_select_u64(mask, e, *o);
            }
        }
    }

    /// The window walk of [`Montgomery::modpow`] over a prebuilt table.
    fn modpow_with_table(
        &self,
        table: &[u64],
        exp: &Ub,
        scratch: &mut [u64],
        operand: &mut [u64],
    ) -> Ub {
        let mut result = self.r1.clone();
        let bits = exp.bit_len();
        let windows = bits.div_ceil(WINDOW_BITS);
        for w in (0..windows).rev() {
            if w + 1 != windows {
                for _ in 0..WINDOW_BITS {
                    self.mont_sqr_assign(&mut result, scratch);
                }
            }
            let mut win = 0u64;
            for b in 0..WINDOW_BITS {
                win |= (exp.bit(w * WINDOW_BITS + b) as u64) << b;
            }
            self.ct_table_scan(table, win, operand);
            self.mont_mul_assign(&mut result, operand, scratch);
        }
        // Convert out of the Montgomery domain: multiply by plain 1.
        operand.fill(0);
        operand[0] = 1;
        self.mont_mul_assign(&mut result, operand, scratch);
        let mut out = Ub { limbs: result };
        out.normalize();
        out
    }
}

/// Little-endian limb-slice comparison: `a < b` for equal lengths.
fn limbs_lt(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// Generate a uniformly random value in `[0, bound)` using rejection
/// sampling over `fill`'s bytes. `fill` is any byte-filling closure
/// (typically a DRBG).
pub fn random_below(bound: &Ub, mut fill: impl FnMut(&mut [u8])) -> Ub {
    assert!(!bound.is_zero(), "empty range");
    let byte_len = (bound.bit_len() + 7) / 8;
    let top_bits = bound.bit_len() % 8;
    let mask = if top_bits == 0 {
        0xff
    } else {
        (1u16 << top_bits) as u8 - 1
    };
    let mut buf = vec![0u8; byte_len];
    loop {
        fill(&mut buf);
        buf[0] &= mask;
        let candidate = Ub::from_bytes_be(&buf);
        if candidate.cmp_to(bound) == std::cmp::Ordering::Less {
            return candidate;
        }
    }
}

/// Miller-Rabin probable-prime test with `rounds` random bases.
pub fn is_probable_prime(n: &Ub, rounds: usize, mut fill: impl FnMut(&mut [u8])) -> bool {
    if n.bit_len() < 2 {
        return false; // 0 and 1
    }
    const SMALL_PRIMES: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];
    for &p in &SMALL_PRIMES {
        let pp = Ub::from_u64(p);
        match n.cmp_to(&pp) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Greater => {
                if n.rem(&pp).is_zero() {
                    return false;
                }
            }
        }
    }
    // n - 1 = d * 2^s
    let n_minus_1 = n.sub(&Ub::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while !d.is_odd() {
        d = d.shr(1);
        s += 1;
    }
    // n survived the small-prime sieve, so it is odd: one Montgomery
    // context serves every round's exponentiation.
    let mont = Montgomery::new(n);
    let two = Ub::from_u64(2);
    let bound = n.sub(&Ub::from_u64(3)); // bases in [2, n-2]
    'outer: for _ in 0..rounds {
        let a = random_below(&bound, &mut fill).add(&two);
        let mut x = mont.modpow(&a, &d);
        if x == Ub::one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Generate a random probable prime of exactly `bits` bits.
pub fn gen_prime(bits: usize, mut fill: impl FnMut(&mut [u8])) -> Ub {
    assert!(bits >= 8, "prime too small");
    let byte_len = (bits + 7) / 8;
    loop {
        let mut buf = vec![0u8; byte_len];
        fill(&mut buf);
        // Force exact bit length and oddness.
        let top_bit = (bits - 1) % 8;
        buf[0] &= ((1u16 << (top_bit + 1)) - 1) as u8;
        buf[0] |= 1 << top_bit;
        let last = buf.len() - 1;
        buf[last] |= 1;
        let candidate = Ub::from_bytes_be(&buf);
        if is_probable_prime(&candidate, 20, &mut fill) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_counter() -> impl FnMut(&mut [u8]) {
        // A toy deterministic filler for tests: SHA-256 counter stream.
        let mut ctr = 0u64;
        move |buf: &mut [u8]| {
            let mut off = 0;
            while off < buf.len() {
                let d = crate::sha256::sha256(&ctr.to_be_bytes());
                let take = (buf.len() - off).min(32);
                buf[off..off + take].copy_from_slice(&d[..take]);
                off += take;
                ctr += 1;
            }
        }
    }

    #[test]
    fn roundtrip_bytes_and_hex() {
        let n = Ub::from_hex("deadbeefcafebabe0123456789");
        assert_eq!(n.to_hex(), "deadbeefcafebabe0123456789");
        assert_eq!(Ub::from_bytes_be(&n.to_bytes_be()), n);
        assert_eq!(Ub::from_bytes_be(&[0, 0, 1]), Ub::one());
        assert_eq!(Ub::zero().to_bytes_be(), Vec::<u8>::new());
        assert_eq!(Ub::zero().to_hex(), "0");
    }

    #[test]
    fn padded_serialization() {
        let n = Ub::from_u64(0x1234);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_serialization_overflow_panics() {
        Ub::from_u64(0x123456).to_bytes_be_padded(2);
    }

    #[test]
    fn add_sub_small() {
        let a = Ub::from_u64(u64::MAX);
        let b = Ub::from_u64(1);
        let sum = a.add(&b);
        assert_eq!(sum.to_hex(), "10000000000000000");
        assert_eq!(sum.sub(&b), a);
        assert_eq!(a.sub(&a), Ub::zero());
    }

    #[test]
    fn mul_known() {
        let a = Ub::from_hex("ffffffffffffffff");
        let b = Ub::from_hex("ffffffffffffffff");
        assert_eq!(a.mul(&b).to_hex(), "fffffffffffffffe0000000000000001");
        assert_eq!(a.mul(&Ub::zero()), Ub::zero());
        assert_eq!(a.mul(&Ub::one()), a);
    }

    #[test]
    fn shifts() {
        let a = Ub::from_u64(0b1011);
        assert_eq!(a.shl(4).to_hex(), "b0");
        assert_eq!(a.shl(64).to_hex(), "b0000000000000000");
        assert_eq!(a.shl(64).shr(64), a);
        assert_eq!(a.shr(2).to_hex(), "2");
        assert_eq!(a.shr(100), Ub::zero());
    }

    #[test]
    fn bit_len_and_bit() {
        assert_eq!(Ub::zero().bit_len(), 0);
        assert_eq!(Ub::one().bit_len(), 1);
        assert_eq!(Ub::from_u64(0x100).bit_len(), 9);
        let n = Ub::from_hex("8000000000000000000000000000000000");
        assert_eq!(n.bit_len(), 136);
        assert!(n.bit(135));
        assert!(!n.bit(134));
        assert!(!n.bit(500));
    }

    #[test]
    fn divrem_small_divisor() {
        let a = Ub::from_hex("123456789abcdef0123456789abcdef");
        let d = Ub::from_u64(97);
        let (q, r) = a.divrem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r.cmp_to(&d) == std::cmp::Ordering::Less);
    }

    #[test]
    fn divrem_multi_limb() {
        let a = Ub::from_hex("fedcba9876543210fedcba9876543210fedcba98");
        let d = Ub::from_hex("123456789abcdef01234");
        let (q, r) = a.divrem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r.cmp_to(&d) == std::cmp::Ordering::Less);
    }

    #[test]
    fn divrem_edge_cases() {
        let a = Ub::from_hex("abcdef");
        assert_eq!(a.divrem(&a), (Ub::one(), Ub::zero()));
        assert_eq!(a.divrem(&Ub::one()), (a.clone(), Ub::zero()));
        let bigger = a.add(&Ub::one());
        assert_eq!(a.divrem(&bigger), (Ub::zero(), a.clone()));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        Ub::one().divrem(&Ub::zero());
    }

    #[test]
    fn modpow_small_known() {
        // 4^13 mod 497 = 445 (classic example).
        let r = Ub::from_u64(4).modpow(&Ub::from_u64(13), &Ub::from_u64(497));
        assert_eq!(r, Ub::from_u64(445));
        // Fermat: 2^(p-1) ≡ 1 mod p for prime p = 1000003.
        let p = Ub::from_u64(1_000_003);
        let r = Ub::from_u64(2).modpow(&p.sub(&Ub::one()), &p);
        assert_eq!(r, Ub::one());
    }

    #[test]
    fn modpow_even_modulus() {
        // 3^5 mod 16 = 243 mod 16 = 3 (exercises non-Montgomery path).
        let r = Ub::from_u64(3).modpow(&Ub::from_u64(5), &Ub::from_u64(16));
        assert_eq!(r, Ub::from_u64(3));
    }

    #[test]
    fn modpow_exp_zero_and_mod_one() {
        let m = Ub::from_u64(97);
        assert_eq!(Ub::from_u64(42).modpow(&Ub::zero(), &m), Ub::one());
        assert_eq!(
            Ub::from_u64(42).modpow(&Ub::from_u64(5), &Ub::one()),
            Ub::zero()
        );
        // Via a prebuilt context too (the window loop runs zero times).
        assert_eq!(
            Montgomery::new(&m).modpow(&Ub::from_u64(42), &Ub::zero()),
            Ub::one()
        );
    }

    #[test]
    fn modpow_base_larger_than_modulus() {
        // A prebuilt context must reduce an out-of-range base itself.
        let m = Ub::from_u64(497);
        let mont = Montgomery::new(&m);
        let big = Ub::from_u64(4).add(&m.mul(&Ub::from_u64(3)));
        assert_eq!(mont.modpow(&big, &Ub::from_u64(13)), Ub::from_u64(445));
    }

    #[test]
    fn montgomery_matches_naive() {
        // Cross-check Montgomery against division-based modpow for a batch
        // of odd moduli.
        let mut fill = fill_counter();
        for _ in 0..10 {
            let mut buf = [0u8; 24];
            fill(&mut buf);
            let mut m = Ub::from_bytes_be(&buf);
            if !m.is_odd() {
                m = m.add(&Ub::one());
            }
            if m.bit_len() < 2 {
                continue;
            }
            let mut bbuf = [0u8; 20];
            fill(&mut bbuf);
            let base = Ub::from_bytes_be(&bbuf);
            let exp = Ub::from_u64(65537);
            let mont = base.modpow(&exp, &m);
            // Naive reference.
            let mut reference = Ub::one();
            let b = base.rem(&m);
            for i in (0..exp.bit_len()).rev() {
                reference = reference.mul_mod(&reference, &m);
                if exp.bit(i) {
                    reference = reference.mul_mod(&b, &m);
                }
            }
            assert_eq!(mont, reference, "modulus {}", m.to_hex());
        }
    }

    #[test]
    fn windowed_modpow_matches_bit_by_bit_on_random_exponents() {
        // The window loop (table build, CT scan, dedicated squaring) against
        // the one-bit-at-a-time ladder it replaced.
        let mut fill = fill_counter();
        let m = Ub::from_hex("ffffffffffffffffffffffffffffff61"); // odd
        let mont = Montgomery::new(&m);
        for _ in 0..8 {
            let mut bbuf = [0u8; 16];
            fill(&mut bbuf);
            let base = Ub::from_bytes_be(&bbuf).rem(&m);
            let mut ebuf = [0u8; 16];
            fill(&mut ebuf);
            let exp = Ub::from_bytes_be(&ebuf);
            let mut reference = Ub::one();
            for i in (0..exp.bit_len()).rev() {
                reference = reference.mul_mod(&reference, &m);
                if exp.bit(i) {
                    reference = reference.mul_mod(&base, &m);
                }
            }
            assert_eq!(mont.modpow(&base, &exp), reference);
        }
    }

    #[test]
    fn modpow_batch_matches_serial() {
        // The shared-table batch against one modpow per exponent, over
        // exponents of very different lengths (including zero).
        let mut fill = fill_counter();
        let m = Ub::from_hex("ffffffffffffffffffffffffffffff61");
        let mont = Montgomery::new(&m);
        let mut bbuf = [0u8; 16];
        fill(&mut bbuf);
        let base = Ub::from_bytes_be(&bbuf);
        let mut exps = vec![Ub::zero(), Ub::one(), Ub::from_u64(65537)];
        for _ in 0..5 {
            let mut ebuf = [0u8; 16];
            fill(&mut ebuf);
            exps.push(Ub::from_bytes_be(&ebuf));
        }
        let batched = mont.modpow_batch(&base, &exps);
        assert_eq!(batched.len(), exps.len());
        for (e, got) in exps.iter().zip(&batched) {
            assert_eq!(got, &mont.modpow(&base, e), "exp {}", e.to_hex());
        }
    }

    #[test]
    fn multi_modpow_matches_product_of_serial() {
        // Straus against the serial product ∏ gᵢ^eᵢ mod n, with factor
        // counts 0..4 and mixed exponent bit lengths.
        let mut fill = fill_counter();
        let m = Ub::from_hex("ffffffffffffffffffffffffffffff61");
        let mont = Montgomery::new(&m);
        for count in 0..=4 {
            let mut pairs = Vec::new();
            for i in 0..count {
                let mut bbuf = [0u8; 16];
                fill(&mut bbuf);
                let mut ebuf = vec![0u8; 1 + 5 * i]; // widely varying lengths
                fill(&mut ebuf);
                pairs.push((Ub::from_bytes_be(&bbuf), Ub::from_bytes_be(&ebuf)));
            }
            let mut reference = Ub::one().rem(&m);
            for (g, e) in &pairs {
                reference = reference.mul_mod(&mont.modpow(g, e), &m);
            }
            assert_eq!(mont.multi_modpow(&pairs), reference, "count {count}");
        }
    }

    #[test]
    fn multi_modpow_with_zero_exponent_factor() {
        // A factor with exponent 0 contributes 1 and must not disturb the
        // shared squaring chain.
        let m = Ub::from_u64(1000003);
        let mont = Montgomery::new(&m);
        let pairs = vec![
            (Ub::from_u64(2), Ub::from_u64(10)),
            (Ub::from_u64(999), Ub::zero()),
            (Ub::from_u64(3), Ub::from_u64(7)),
        ];
        // 2^10 * 3^7 = 1024 * 2187 = 2239488 mod 1000003 = 239482.
        assert_eq!(mont.multi_modpow(&pairs), Ub::from_u64(239482));
    }

    #[test]
    fn gcd_and_modinv() {
        let a = Ub::from_u64(270);
        let b = Ub::from_u64(192);
        assert_eq!(a.gcd(&b), Ub::from_u64(6));
        // 3 * 7 = 21 ≡ 1 mod 10 → inverse of 3 mod 10 is 7.
        assert_eq!(
            Ub::from_u64(3).modinv(&Ub::from_u64(10)).unwrap(),
            Ub::from_u64(7)
        );
        // 65537^{-1} mod a known prime round-trips.
        let p = Ub::from_hex("ffffffffffffffc5"); // large prime < 2^64
        let e = Ub::from_u64(65537);
        let inv = e.modinv(&p).unwrap();
        assert_eq!(e.mul_mod(&inv, &p), Ub::one());
        // Non-invertible.
        assert!(Ub::from_u64(6).modinv(&Ub::from_u64(9)).is_err());
    }

    #[test]
    fn random_below_in_range() {
        let bound = Ub::from_u64(1000);
        let mut fill = fill_counter();
        for _ in 0..50 {
            let v = random_below(&bound, &mut fill);
            assert!(v.cmp_to(&bound) == std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn small_primes_recognized() {
        let mut fill = fill_counter();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 65537, 1_000_003] {
            assert!(
                is_probable_prime(&Ub::from_u64(p), 10, &mut fill),
                "{p} is prime"
            );
        }
        for c in [0u64, 1, 4, 9, 15, 91, 561, 65535, 1_000_001] {
            assert!(
                !is_probable_prime(&Ub::from_u64(c), 10, &mut fill),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut fill = fill_counter();
        // 561, 1105, 1729 fool Fermat but not Miller-Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert!(!is_probable_prime(&Ub::from_u64(c), 20, &mut fill), "{c}");
        }
    }

    #[test]
    fn gen_prime_has_exact_bit_length() {
        let mut fill = fill_counter();
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut fill);
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd());
            assert!(is_probable_prime(&p, 10, &mut fill));
        }
    }

    #[test]
    fn rfc3526_prime_is_prime() {
        // The 1536-bit MODP group prime (RFC 3526 group 5) — a good stress
        // test for Montgomery modpow on realistic sizes.
        let p = Ub::from_hex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
             020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
             4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
             EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
             98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
             9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
        );
        let mut fill = fill_counter();
        assert!(is_probable_prime(&p, 5, &mut fill));
    }
}
