//! AES-128-CBC with PKCS#7 padding.
//!
//! This is the mode RFC 5077 §4 recommends for encrypting session-ticket
//! state under the STEK. Our ticket format (in `ts-tls`) is exactly the
//! RFC's recommended layout: `key_name(16) || IV(16) || AES-CBC(state) ||
//! HMAC-SHA256 tag`, built from this module plus [`crate::hmac`].

use crate::aes::{Aes128, BLOCK_LEN, KEY_LEN};
use crate::error::CryptoError;

/// Encrypt `plaintext` with AES-128-CBC under `key`/`iv`, applying PKCS#7
/// padding. Always produces at least one block.
pub fn encrypt(key: &[u8; KEY_LEN], iv: &[u8; BLOCK_LEN], plaintext: &[u8]) -> Vec<u8> {
    let cipher = Aes128::new(key);
    let pad = BLOCK_LEN - (plaintext.len() % BLOCK_LEN);
    let mut data = Vec::with_capacity(plaintext.len() + pad);
    data.extend_from_slice(plaintext);
    data.extend(std::iter::repeat(pad as u8).take(pad));
    let mut prev = *iv;
    for chunk in data.chunks_exact_mut(BLOCK_LEN) {
        let mut block = [0u8; BLOCK_LEN];
        block.copy_from_slice(chunk);
        for i in 0..BLOCK_LEN {
            block[i] ^= prev[i];
        }
        cipher.encrypt_block(&mut block);
        chunk.copy_from_slice(&block);
        prev = block;
    }
    data
}

/// Decrypt AES-128-CBC ciphertext and strip PKCS#7 padding.
pub fn decrypt(
    key: &[u8; KEY_LEN],
    iv: &[u8; BLOCK_LEN],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.is_empty() || ciphertext.len() % BLOCK_LEN != 0 {
        return Err(CryptoError::BadLength("CBC ciphertext not block-aligned"));
    }
    let cipher = Aes128::new(key);
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = *iv;
    for chunk in ciphertext.chunks_exact(BLOCK_LEN) {
        let mut block = [0u8; BLOCK_LEN];
        block.copy_from_slice(chunk);
        let saved = block;
        cipher.decrypt_block(&mut block);
        for i in 0..BLOCK_LEN {
            block[i] ^= prev[i];
        }
        out.extend_from_slice(&block);
        prev = saved;
    }
    let pad = *out.last().expect("non-empty") as usize;
    if pad == 0 || pad > BLOCK_LEN || pad > out.len() {
        return Err(CryptoError::BadPadding);
    }
    if out[out.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(CryptoError::BadPadding);
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // NIST SP 800-38A F.2.1 CBC-AES128.Encrypt (first two blocks; the NIST
    // vector has no padding, so we check our ciphertext prefix).
    #[test]
    fn sp800_38a_cbc_prefix() {
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let iv: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let pt = unhex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51");
        let ct = encrypt(&key, &iv, &pt);
        let want = unhex("7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b2");
        assert_eq!(&ct[..32], &want[..]);
        // With full-block plaintext, PKCS#7 adds one extra block.
        assert_eq!(ct.len(), 48);
        assert_eq!(decrypt(&key, &iv, &ct).unwrap(), pt);
    }

    #[test]
    fn roundtrip_all_lengths() {
        let key = *b"ticket-enc-key!!";
        let iv = *b"initialization!!";
        for len in 0..70 {
            let pt: Vec<u8> = (0..len as u8).collect();
            let ct = encrypt(&key, &iv, &pt);
            assert_eq!(ct.len() % BLOCK_LEN, 0);
            assert!(ct.len() > pt.len(), "padding always expands");
            assert_eq!(decrypt(&key, &iv, &ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn wrong_key_fails_or_garbles() {
        let key = *b"ticket-enc-key!!";
        let bad = *b"ticket-enc-key!?";
        let iv = [0u8; 16];
        let pt = b"session state bytes".to_vec();
        let ct = encrypt(&key, &iv, &pt);
        match decrypt(&bad, &iv, &ct) {
            Err(CryptoError::BadPadding) => {}
            Ok(garbled) => assert_ne!(garbled, pt),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn tampered_ciphertext_rejected_or_garbled() {
        let key = *b"ticket-enc-key!!";
        let iv = [7u8; 16];
        let pt = vec![0x42u8; 40];
        let mut ct = encrypt(&key, &iv, &pt);
        ct[3] ^= 0xff;
        match decrypt(&key, &iv, &ct) {
            Err(CryptoError::BadPadding) => {}
            Ok(garbled) => assert_ne!(garbled, pt),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn misaligned_ciphertext_rejected() {
        let key = [0u8; 16];
        let iv = [0u8; 16];
        assert!(matches!(
            decrypt(&key, &iv, &[0u8; 15]),
            Err(CryptoError::BadLength(_))
        ));
        assert!(matches!(
            decrypt(&key, &iv, &[]),
            Err(CryptoError::BadLength(_))
        ));
    }

    #[test]
    fn iv_chains_blocks() {
        let key = [1u8; 16];
        let pt = vec![0u8; 32];
        let c1 = encrypt(&key, &[0u8; 16], &pt);
        let c2 = encrypt(&key, &[1u8; 16], &pt);
        assert_ne!(c1, c2, "different IVs must give different ciphertext");
        // Identical plaintext blocks must not produce identical ciphertext
        // blocks under CBC.
        assert_ne!(&c1[..16], &c1[16..32]);
    }
}
