//! The ChaCha20 stream cipher (RFC 7539).
//!
//! Used (with [`crate::poly1305`]) as the AEAD record protection for the
//! `*_CHACHA20_POLY1305_*` cipher suites in the TLS stack.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Produce the 64-byte keystream block for (`key`, `counter`, `nonce`).
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XOR `data` with the ChaCha20 keystream starting at block `counter`.
/// Encryption and decryption are the same operation.
pub fn xor_stream(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let ks = block(key, counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 7539 §2.3.2 block function test vector.
    #[test]
    fn rfc7539_block_vector() {
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 7539 §2.4.2 encryption test vector ("sunscreen" plaintext).
    #[test]
    fn rfc7539_encrypt_vector() {
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        xor_stream(&key, 1, &nonce, &mut data);
        assert_eq!(
            hex(&data),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn xor_stream_is_involutive() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let original: Vec<u8> = (0..200u8).collect();
        let mut data = original.clone();
        xor_stream(&key, 0, &nonce, &mut data);
        assert_ne!(data, original);
        xor_stream(&key, 0, &nonce, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        // Encrypting 128 bytes at counter 0 must equal two blocks at 0 and 1.
        let mut data = vec![0u8; 128];
        xor_stream(&key, 0, &nonce, &mut data);
        let b0 = block(&key, 0, &nonce);
        let b1 = block(&key, 1, &nonce);
        assert_eq!(&data[..64], &b0[..]);
        assert_eq!(&data[64..], &b1[..]);
    }
}
