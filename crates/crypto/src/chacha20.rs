//! The ChaCha20 stream cipher (RFC 7539).
//!
//! Used (with [`crate::poly1305`]) as the AEAD record protection for the
//! `*_CHACHA20_POLY1305_*` cipher suites in the TLS stack.
//!
//! Bulk keystream runs eight blocks abreast on AVX2 hosts: the sixteen
//! state words live in sixteen 8-lane vectors (lane *b* = block
//! `counter + b`), so one round pass advances eight blocks. The scalar
//! block function remains the portable fallback and the tail path, and
//! the two agree bit-for-bit (`avx2_and_scalar_keystreams_agree`).

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Assemble the initial state matrix for (`key`, `counter`, `nonce`) —
/// the word form every keystream path (scalar and AVX2) starts from.
fn state_words(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }
    state
}

/// Produce the 64-byte keystream block for (`key`, `counter`, `nonce`).
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let state = state_words(key, counter, nonce);
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XOR `data` with the ChaCha20 keystream starting at block `counter`.
/// Encryption and decryption are the same operation.
pub fn xor_stream(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    if ni::available() && data.len() >= 8 * 64 {
        let state = state_words(key, counter, nonce);
        let full8 = data.len() / (8 * 64);
        let mut ks = [0u32; 128];
        for g in 0..full8 {
            // Vector-major keystream: ks[8 * i + lane] is word i of block
            // `counter + 8 * g + lane`. The lane scatter merges into the
            // XOR loop below, so no transpose pass is needed.
            ni::blocks8(&state, (8 * g) as u32, &mut ks);
            let chunk = &mut data[8 * 64 * g..8 * 64 * (g + 1)];
            for lane in 0..8 {
                for i in 0..16 {
                    let kw = ks[8 * i + lane].to_le_bytes();
                    let at = 64 * lane + 4 * i;
                    chunk[at] ^= kw[0];
                    chunk[at + 1] ^= kw[1];
                    chunk[at + 2] ^= kw[2];
                    chunk[at + 3] ^= kw[3];
                }
            }
        }
        // Scalar tail for the remaining (< 8) blocks.
        let done = full8 * 8 * 64;
        for (i, chunk) in data[done..].chunks_mut(64).enumerate() {
            let ks = block(key, counter.wrapping_add((full8 * 8 + i) as u32), nonce);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        return;
    }
    // Portable path (also the non-x86 and short-input path).
    xor_stream_portable(key, counter, nonce, data);
}

/// [`xor_stream`] forced onto the scalar one-block-at-a-time path
/// regardless of CPU features. For agreement tests and scalar-baseline
/// benchmarks only.
#[doc(hidden)]
pub fn xor_stream_portable(
    key: &[u8; KEY_LEN],
    counter: u32,
    nonce: &[u8; NONCE_LEN],
    data: &mut [u8],
) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let ks = block(key, counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// AVX2 8-way block kernel. The state enters as the 16 scalar words (the
/// secret key material crosses this boundary only in word form); each
/// word is broadcast across the 8 lanes, the counter word gets the lane
/// offsets added, and ten double-rounds run on all eight blocks at once.
#[cfg(target_arch = "x86_64")]
mod ni {
    // The sanctioned unsafe exception (see lib.rs): scoped, behind runtime
    // feature detection, with safety comments.
    #![allow(unsafe_code)]

    use core::arch::x86_64::*;

    /// Does this CPU have AVX2, and is the build not forced portable?
    /// Detected once per process.
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            !crate::dispatch::force_portable() && std::arch::is_x86_feature_detected!("avx2")
        })
    }

    /// Compute 8 consecutive keystream blocks starting `ctr_offset`
    /// blocks after `state`'s own counter word. Output is vector-major:
    /// `out[8 * i + lane]` is state word `i` of block `lane`.
    pub fn blocks8(state: &[u32; 16], ctr_offset: u32, out: &mut [u32; 128]) {
        // SAFETY: `available()` gates every call site on CPUID.
        unsafe { blocks8_impl(state, ctr_offset, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn blocks8_impl(state: &[u32; 16], ctr_offset: u32, out: &mut [u32; 128]) {
        // SAFETY: register-only AVX2 arithmetic; the only memory accesses
        // are the final 32-byte stores at out[8 * i .. 8 * i + 8] for
        // i in 0..16, all inside the borrowed 128-word array.
        // `target_feature` is vouched for by the caller's CPUID check.
        unsafe {
            let rot16 = _mm256_set_epi8(
                13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2, //
                13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2,
            );
            let rot8 = _mm256_set_epi8(
                14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3, //
                14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3,
            );
            let mut init = [_mm256_setzero_si256(); 16];
            for (i, v) in init.iter_mut().enumerate() {
                *v = _mm256_set1_epi32(state[i] as i32);
            }
            init[12] = _mm256_add_epi32(
                init[12],
                _mm256_add_epi32(
                    _mm256_set1_epi32(ctr_offset as i32),
                    _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
                ),
            );
            let mut x = init;
            macro_rules! qr {
                ($a:expr, $b:expr, $c:expr, $d:expr) => {{
                    x[$a] = _mm256_add_epi32(x[$a], x[$b]);
                    x[$d] = _mm256_shuffle_epi8(_mm256_xor_si256(x[$d], x[$a]), rot16);
                    x[$c] = _mm256_add_epi32(x[$c], x[$d]);
                    let t = _mm256_xor_si256(x[$b], x[$c]);
                    x[$b] = _mm256_or_si256(_mm256_slli_epi32(t, 12), _mm256_srli_epi32(t, 20));
                    x[$a] = _mm256_add_epi32(x[$a], x[$b]);
                    x[$d] = _mm256_shuffle_epi8(_mm256_xor_si256(x[$d], x[$a]), rot8);
                    x[$c] = _mm256_add_epi32(x[$c], x[$d]);
                    let t = _mm256_xor_si256(x[$b], x[$c]);
                    x[$b] = _mm256_or_si256(_mm256_slli_epi32(t, 7), _mm256_srli_epi32(t, 25));
                }};
            }
            for _ in 0..10 {
                qr!(0, 4, 8, 12);
                qr!(1, 5, 9, 13);
                qr!(2, 6, 10, 14);
                qr!(3, 7, 11, 15);
                qr!(0, 5, 10, 15);
                qr!(1, 6, 11, 12);
                qr!(2, 7, 8, 13);
                qr!(3, 4, 9, 14);
            }
            for i in 0..16 {
                let v = _mm256_add_epi32(x[i], init[i]);
                _mm256_storeu_si256(out.as_mut_ptr().add(8 * i) as *mut __m256i, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 7539 §2.3.2 block function test vector.
    #[test]
    fn rfc7539_block_vector() {
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 7539 §2.4.2 encryption test vector ("sunscreen" plaintext).
    #[test]
    fn rfc7539_encrypt_vector() {
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        xor_stream(&key, 1, &nonce, &mut data);
        assert_eq!(
            hex(&data),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn xor_stream_is_involutive() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let original: Vec<u8> = (0..200u8).collect();
        let mut data = original.clone();
        xor_stream(&key, 0, &nonce, &mut data);
        assert_ne!(data, original);
        xor_stream(&key, 0, &nonce, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        // Encrypting 128 bytes at counter 0 must equal two blocks at 0 and 1.
        let mut data = vec![0u8; 128];
        xor_stream(&key, 0, &nonce, &mut data);
        let b0 = block(&key, 0, &nonce);
        let b1 = block(&key, 1, &nonce);
        assert_eq!(&data[..64], &b0[..]);
        assert_eq!(&data[64..], &b1[..]);
    }

    #[test]
    fn avx2_and_scalar_keystreams_agree() {
        // The AVX2 8-way path only engages at >= 512 bytes; sweep lengths
        // either side of every group boundary and pin against per-block
        // scalar keystream generation.
        let key = [0xabu8; 32];
        let nonce = [0xcdu8; 12];
        for len in [511usize, 512, 513, 1024, 1087, 4096, 8192 + 63] {
            let mut data = vec![0u8; len];
            xor_stream(&key, 5, &nonce, &mut data);
            let mut expect = vec![0u8; len];
            for (i, chunk) in expect.chunks_mut(64).enumerate() {
                let ks = block(&key, 5 + i as u32, &nonce);
                chunk.copy_from_slice(&ks[..chunk.len()]);
            }
            assert_eq!(data, expect, "len {len}");
        }
    }
}
