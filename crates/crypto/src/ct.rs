//! Constant-time primitives: comparisons, selection, and ordering.
//!
//! Everything here avoids secret-dependent branches and secret-dependent
//! memory access. The workspace's `ts-lint` analyzer flags `==`/`!=` on
//! secret-tainted bytes; these helpers are the sanctioned replacements.

/// Compare two byte slices in constant time (for equal lengths).
///
/// Returns `false` immediately if the lengths differ — length is public in
/// every context this crate uses (MAC tags, finished digests).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Compare two fixed-size byte arrays in constant time.
///
/// The const generic pins the lengths at compile time, so unlike [`ct_eq`]
/// there is no early length exit at all: the comparison cost depends only
/// on `N`.
pub fn ct_eq_array<const N: usize>(a: &[u8; N], b: &[u8; N]) -> bool {
    let mut diff = 0u8;
    for i in 0..N {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

/// Select `a` if `mask == 0xFF`, `b` if `mask == 0x00`, without branching.
///
/// `mask` must be exactly `0x00` or `0xFF` (as produced by [`ct_mask`] or
/// [`ct_lt`]); any other value interleaves the operands' bits.
pub fn ct_select(mask: u8, a: u8, b: u8) -> u8 {
    (mask & a) | (!mask & b)
}

/// Branchless `0xFF` if `c != 0`, else `0x00`.
pub fn ct_mask(c: u8) -> u8 {
    // (c | -c) has its top bit set iff c != 0; arithmetic shift smears it.
    let c = c as i8;
    ((c | c.wrapping_neg()) >> 7) as u8
}

/// Select `a` if `mask == u64::MAX`, `b` if `mask == 0`, without branching.
///
/// The limb-width sibling of [`ct_select`]: the windowed Montgomery
/// exponentiation in [`crate::bignum`] scans its whole precomputed table
/// with masks from [`ct_eq_u64_mask`] so the secret window value never
/// selects a memory address.
pub fn ct_select_u64(mask: u64, a: u64, b: u64) -> u64 {
    (mask & a) | (!mask & b)
}

/// Branchless `u64::MAX` if `a == b`, else `0`.
pub fn ct_eq_u64_mask(a: u64, b: u64) -> u64 {
    // (d | -d) has its top bit set iff d != 0; shift it down and subtract
    // from 0/1 to smear into an all-or-nothing mask.
    let d = a ^ b;
    ((d | d.wrapping_neg()) >> 63).wrapping_sub(1)
}

/// Branchless `0xFF` if `a < b`, else `0x00`, for 8-bit operands.
///
/// Used to validate secret-derived quantities (CBC padding lengths) without
/// a data-dependent branch.
pub fn ct_lt(a: u8, b: u8) -> u8 {
    // Classic trick: the borrow out of (a - b) computed in 16 bits.
    let diff = (a as i16) - (b as i16);
    ((diff >> 15) & 0xFF) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"a"));
    }

    #[test]
    fn first_and_last_byte_differences() {
        assert!(!ct_eq(b"xbc", b"abc"));
        assert!(!ct_eq(b"abx", b"abc"));
    }

    #[test]
    fn array_comparison_matches_slice_comparison() {
        let a = [1u8, 2, 3, 4];
        let b = [1u8, 2, 3, 4];
        let c = [1u8, 2, 3, 5];
        assert!(ct_eq_array(&a, &b));
        assert!(!ct_eq_array(&a, &c));
        assert!(ct_eq_array::<0>(&[], &[]));
        for i in 0..32 {
            let mut x = [0xAAu8; 32];
            let y = [0xAAu8; 32];
            x[i] ^= 1;
            assert!(!ct_eq_array(&x, &y), "difference at byte {i} missed");
        }
    }

    #[test]
    fn select_picks_by_mask() {
        assert_eq!(ct_select(0xFF, 0x12, 0x34), 0x12);
        assert_eq!(ct_select(0x00, 0x12, 0x34), 0x34);
    }

    #[test]
    fn mask_is_all_or_nothing() {
        assert_eq!(ct_mask(0), 0x00);
        for c in 1..=255u8 {
            assert_eq!(ct_mask(c), 0xFF, "c = {c}");
        }
    }

    #[test]
    fn select_u64_picks_by_mask() {
        assert_eq!(ct_select_u64(u64::MAX, 0x12, 0x34), 0x12);
        assert_eq!(ct_select_u64(0, 0x12, 0x34), 0x34);
    }

    #[test]
    fn eq_u64_mask_is_all_or_nothing() {
        assert_eq!(ct_eq_u64_mask(0, 0), u64::MAX);
        assert_eq!(ct_eq_u64_mask(u64::MAX, u64::MAX), u64::MAX);
        assert_eq!(ct_eq_u64_mask(5, 6), 0);
        assert_eq!(ct_eq_u64_mask(1 << 63, 0), 0);
        for i in 0..64 {
            assert_eq!(ct_eq_u64_mask(1 << i, 0), 0, "bit {i}");
            assert_eq!(ct_eq_u64_mask(1 << i, 1 << i), u64::MAX, "bit {i}");
        }
    }

    #[test]
    fn lt_matches_operator_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let want = if a < b { 0xFF } else { 0x00 };
                assert_eq!(ct_lt(a, b), want, "a={a} b={b}");
            }
        }
    }
}
