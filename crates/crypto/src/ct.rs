//! Constant-time comparison helpers.

/// Compare two byte slices in constant time (for equal lengths).
///
/// Returns `false` immediately if the lengths differ — length is public in
/// every context this crate uses (MAC tags, finished digests).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"a"));
    }

    #[test]
    fn first_and_last_byte_differences() {
        assert!(!ct_eq(b"xbc", b"abc"));
        assert!(!ct_eq(b"abx", b"abc"));
    }
}
