//! Runtime SIMD dispatch policy.
//!
//! Every hardware fast path in this crate (SHA-NI, AES-NI, CLMUL, AVX2)
//! gates itself on two things: CPUID feature detection and the `portable`
//! cargo feature. Building with `--features ts-crypto/portable` forces the
//! scalar implementations even on capable hardware — CI runs one leg this
//! way so the fallbacks stay exercised, and it is the fastest way to A/B
//! the two paths locally.
//!
//! A compile-time flag (rather than an environment variable) keeps the
//! dispatch decision out of ambient process state: the determinism lint
//! treats `env::var` reads as entropy, and rightly so — a knob that can
//! differ between two "identical" invocations has no place in a
//! reproduction. A feature is pinned in the build plan instead.

/// Is the build forced onto the portable scalar paths?
///
/// Checked (alongside CPUID) by every `available()` gate in this crate.
pub fn force_portable() -> bool {
    cfg!(feature = "portable")
}

#[cfg(test)]
mod tests {
    #[test]
    fn force_portable_is_stable() {
        // Compile-time answer: must not change between calls.
        assert_eq!(super::force_portable(), super::force_portable());
    }
}
