//! Deterministic random bit generator (HMAC-DRBG, SP 800-90A flavoured).
//!
//! Every stochastic decision in the simulation — ephemeral DH values,
//! session IDs, STEKs, population sampling — draws from an [`HmacDrbg`]
//! seeded from the experiment seed, so entire 9-week campaigns are exactly
//! reproducible. The construction follows NIST SP 800-90A's HMAC_DRBG with
//! SHA-256 (instantiate / update / generate), minus reseed counters, which
//! a simulation does not need.

use crate::hmac::hmac_sha256;

/// HMAC-SHA256 based deterministic random bit generator.
///
/// The `(K, V)` working state lets anyone who reads it re-derive every
/// past and future output of the stream — including STEKs and ephemeral
/// exponents — so the state is secret-marked and wiped on drop.
// ctlint: secret
#[derive(Clone)]
pub struct HmacDrbg {
    k: [u8; 32],
    v: [u8; 32],
}

impl std::fmt::Debug for HmacDrbg {
    /// Redacting: the working state is never printable.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HmacDrbg(<redacted>)")
    }
}

impl crate::wipe::Wipe for HmacDrbg {
    fn wipe(&mut self) {
        crate::wipe::wipe_bytes(&mut self.k);
        crate::wipe::wipe_bytes(&mut self.v);
    }
}

impl Drop for HmacDrbg {
    fn drop(&mut self) {
        use crate::wipe::Wipe;
        self.wipe();
    }
}

impl HmacDrbg {
    /// Instantiate from seed material (any length, any entropy).
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            k: [0u8; 32],
            v: [1u8; 32],
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Instantiate from a u64 seed plus a domain-separation label.
    ///
    /// The label keeps independent subsystems (population generation,
    /// server key material, scanner jitter, ...) on independent streams
    /// even when they share the experiment seed.
    pub fn from_seed_label(seed: u64, label: &str) -> Self {
        let mut material = Vec::with_capacity(8 + label.len());
        material.extend_from_slice(&seed.to_be_bytes());
        material.extend_from_slice(label.as_bytes());
        Self::new(&material)
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut msg = Vec::with_capacity(32 + 1 + provided.map_or(0, |p| p.len()));
        msg.extend_from_slice(&self.v);
        msg.push(0x00);
        if let Some(p) = provided {
            msg.extend_from_slice(p);
        }
        self.k = hmac_sha256(&self.k, &msg);
        self.v = hmac_sha256(&self.k, &self.v);
        if let Some(p) = provided {
            let mut msg = Vec::with_capacity(32 + 1 + p.len());
            msg.extend_from_slice(&self.v);
            msg.push(0x01);
            msg.extend_from_slice(p);
            self.k = hmac_sha256(&self.k, &msg);
            self.v = hmac_sha256(&self.k, &self.v);
        }
    }

    /// Mix additional entropy/material into the state.
    pub fn reseed(&mut self, material: &[u8]) {
        self.update(Some(material));
    }

    /// Fill `out` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut offset = 0;
        while offset < out.len() {
            self.v = hmac_sha256(&self.k, &self.v);
            let take = (out.len() - offset).min(32);
            out[offset..offset + take].copy_from_slice(&self.v[..take]);
            offset += take;
        }
        self.update(None);
    }

    /// Return `n` pseudo-random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.fill_bytes(&mut out);
        out
    }

    /// A pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill_bytes(&mut buf);
        u64::from_be_bytes(buf)
    }

    /// A pseudo-random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.fill_bytes(&mut buf);
        u32::from_be_bytes(buf)
    }

    /// Uniform value in `[0, bound)` by rejection sampling. Panics if
    /// `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Derive an independent child DRBG for a labelled subsystem.
    pub fn fork(&mut self, label: &str) -> HmacDrbg {
        let mut material = self.bytes(32);
        material.extend_from_slice(label.as_bytes());
        HmacDrbg::new(&material)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        assert_eq!(a.bytes(100), b.bytes(100));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"seed1");
        let mut b = HmacDrbg::new(b"seed2");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn labels_domain_separate() {
        let mut a = HmacDrbg::from_seed_label(42, "population");
        let mut b = HmacDrbg::from_seed_label(42, "scanner");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut d = HmacDrbg::new(b"range");
        for bound in [1u64, 2, 3, 10, 1000, 1 << 40] {
            for _ in 0..100 {
                assert!(d.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_range() {
        let mut d = HmacDrbg::new(b"coverage");
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[d.gen_range(5) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut d = HmacDrbg::new(b"f64");
        for _ in 0..1000 {
            let v = d.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_rate_approximates_p() {
        let mut d = HmacDrbg::new(b"bernoulli");
        let trials = 10_000;
        let hits = (0..trials).filter(|_| d.gen_bool(0.3)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = HmacDrbg::new(b"parent");
        let mut parent2 = HmacDrbg::new(b"parent");
        let mut c1 = parent1.fork("child-a");
        let mut c2 = parent2.fork("child-a");
        assert_eq!(c1.bytes(32), c2.bytes(32), "same lineage → same stream");
        let mut c3 = parent1.fork("child-a");
        // parent state advanced, so a second fork differs.
        assert_ne!(c1.bytes(32), c3.bytes(32));
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        b.reseed(b"extra");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn fill_spans_multiple_hmac_blocks() {
        let mut d = HmacDrbg::new(b"long");
        let long = d.bytes(1000);
        // Re-derive and compare chunked reads concatenated differ from a
        // single long read (SP 800-90A generates per-call, state advances
        // between calls) — both are valid; we just pin the behaviour.
        let mut d2 = HmacDrbg::new(b"long");
        let again = d2.bytes(1000);
        assert_eq!(long, again);
        assert_eq!(long.len(), 1000);
    }
}
