//! Error type shared by all primitives in this crate.

use std::fmt;

/// Errors returned by cryptographic operations.
///
/// The variants are deliberately coarse: callers in the TLS stack map them
/// onto protocol alerts, and the measurement pipeline only needs to know
/// *that* an operation failed, not the precise internal reason (which could
/// itself be an oracle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Authenticated decryption failed (bad tag or MAC).
    BadMac,
    /// Ciphertext or padding is structurally invalid.
    BadPadding,
    /// An input had an invalid length (block alignment, key size, ...).
    BadLength(&'static str),
    /// A public value was outside the valid range for the group.
    InvalidPublicValue,
    /// A signature did not verify.
    BadSignature,
    /// Key generation failed to find suitable parameters.
    KeygenFailure,
    /// An operation needed a non-zero / odd / in-range parameter.
    InvalidParameter(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadMac => write!(f, "message authentication failed"),
            CryptoError::BadPadding => write!(f, "invalid padding"),
            CryptoError::BadLength(what) => write!(f, "invalid length: {what}"),
            CryptoError::InvalidPublicValue => write!(f, "invalid public key-exchange value"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::KeygenFailure => write!(f, "key generation failed"),
            CryptoError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}
