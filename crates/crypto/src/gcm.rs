//! AES-128-GCM (NIST SP 800-38D).
//!
//! The record layer's fast AEAD: CTR-mode AES for confidentiality and
//! GHASH — polynomial evaluation over GF(2^128) — for integrity. Two
//! implementations sit behind one dispatch:
//!
//! * **Hardware**: the AES-NI CTR keystream from [`crate::aes`] plus a
//!   CLMUL (`pclmulqdq`) GHASH. The carry-less multiplier produces the
//!   three 128-bit Karatsuba part-products; the shift-and-fold reduction
//!   is shared scalar code, so the two paths agree by construction
//!   everywhere except the multiplier itself.
//! * **Portable**: a constant-time scalar GHASH using masked integer
//!   multiplication (the classic `bmul64` trick: four masked multiplies
//!   emulate one carry-less multiply with no data-dependent table reads),
//!   and the byte-oriented AES from [`crate::aes`].
//!
//! Both paths are pinned to the McGrew/Viega AES-GCM test vectors and to
//! each other (`clmul_and_scalar_ghash_agree`).
//!
//! Secrets cross the hardware boundary only as `u64` words — the GHASH
//! key, accumulator and data limbs — never as byte slices.

use crate::aes::{Aes128, BLOCK_LEN};
use crate::error::CryptoError;

/// GCM nonce length (the 12-byte fast path; other lengths unsupported).
pub const NONCE_LEN: usize = 12;
/// GCM authentication tag length.
pub const TAG_LEN: usize = 16;
/// AES-128 key length.
pub const KEY_LEN: usize = 16;

// --------------------------------------------------------------------------
// GF(2^128) multiplication
// --------------------------------------------------------------------------

/// Bit-reverse a 64-bit word (swap within bytes, then swap bytes).
fn rev64(mut x: u64) -> u64 {
    x = ((x & 0x5555_5555_5555_5555) << 1) | ((x >> 1) & 0x5555_5555_5555_5555);
    x = ((x & 0x3333_3333_3333_3333) << 2) | ((x >> 2) & 0x3333_3333_3333_3333);
    x = ((x & 0x0f0f_0f0f_0f0f_0f0f) << 4) | ((x >> 4) & 0x0f0f_0f0f_0f0f_0f0f);
    x.swap_bytes()
}

/// Carry-less multiply, low 64 bits, without a carry-less multiplier:
/// split each operand into four strided bit groups so every partial
/// integer product keeps its carries out of the lanes we keep. Constant
/// time — no branches, no table reads.
fn bmul64(x: u64, y: u64) -> u64 {
    const M0: u64 = 0x1111_1111_1111_1111;
    const M1: u64 = 0x2222_2222_2222_2222;
    const M2: u64 = 0x4444_4444_4444_4444;
    const M3: u64 = 0x8888_8888_8888_8888;
    let (x0, x1, x2, x3) = (x & M0, x & M1, x & M2, x & M3);
    let (y0, y1, y2, y3) = (y & M0, y & M1, y & M2, y & M3);
    let z0 = x0.wrapping_mul(y0) ^ x1.wrapping_mul(y3) ^ x2.wrapping_mul(y2) ^ x3.wrapping_mul(y1);
    let z1 = x0.wrapping_mul(y1) ^ x1.wrapping_mul(y0) ^ x2.wrapping_mul(y3) ^ x3.wrapping_mul(y2);
    let z2 = x0.wrapping_mul(y2) ^ x1.wrapping_mul(y1) ^ x2.wrapping_mul(y0) ^ x3.wrapping_mul(y3);
    let z3 = x0.wrapping_mul(y3) ^ x1.wrapping_mul(y2) ^ x2.wrapping_mul(y1) ^ x3.wrapping_mul(y0);
    (z0 & M0) | (z1 & M1) | (z2 & M2) | (z3 & M3)
}

/// Shared tail of both multipliers: take the four 64-bit limbs of the
/// 255-bit carry-less Karatsuba product (low to high), shift left one bit
/// (GCM's reflected bit convention), fold modulo x^128 + x^7 + x^2 + x + 1,
/// and return the reduced accumulator as `(y1, y0)` big-endian halves.
fn shift_reduce(v: [u64; 4]) -> (u64, u64) {
    let [mut v0, mut v1, mut v2, mut v3] = v;
    v3 = (v3 << 1) | (v2 >> 63);
    v2 = (v2 << 1) | (v1 >> 63);
    v1 = (v1 << 1) | (v0 >> 63);
    v0 <<= 1;
    v2 ^= v0 ^ (v0 >> 1) ^ (v0 >> 2) ^ (v0 >> 7);
    v1 ^= (v0 << 63) ^ (v0 << 62) ^ (v0 << 57);
    v3 ^= v1 ^ (v1 >> 1) ^ (v1 >> 2) ^ (v1 >> 7);
    v2 ^= (v1 << 63) ^ (v1 << 62) ^ (v1 << 57);
    (v3, v2)
}

/// The GHASH state: accumulator `y` and hash key `h`, both as big-endian
/// 64-bit halves (`*1` is the first eight bytes of the block), plus the
/// bit-reversed forms the scalar multiplier needs.
struct Ghash {
    y1: u64,
    y0: u64,
    h1: u64,
    h0: u64,
    h2: u64,
    h0r: u64,
    h1r: u64,
    h2r: u64,
    use_clmul: bool,
}

impl Ghash {
    #[cfg(test)]
    fn new(h: &[u8; BLOCK_LEN]) -> Self {
        Self::new_with(h, clmul_available())
    }

    fn new_with(h: &[u8; BLOCK_LEN], use_clmul: bool) -> Self {
        let h1 = u64::from_be_bytes(h[..8].try_into().expect("8 bytes"));
        let h0 = u64::from_be_bytes(h[8..].try_into().expect("8 bytes"));
        let (h0r, h1r) = (rev64(h0), rev64(h1));
        Ghash {
            y1: 0,
            y0: 0,
            h1,
            h0,
            h2: h0 ^ h1,
            h0r,
            h1r,
            h2r: h0r ^ h1r,
            use_clmul,
        }
    }

    /// Absorb one 16-byte block: xor into the accumulator, multiply by H.
    fn update_block(&mut self, block: &[u8; BLOCK_LEN]) {
        self.y1 ^= u64::from_be_bytes(block[..8].try_into().expect("8 bytes"));
        self.y0 ^= u64::from_be_bytes(block[8..].try_into().expect("8 bytes"));
        let v = if self.use_clmul {
            #[cfg(target_arch = "x86_64")]
            {
                ni::karatsuba(self.y1, self.y0, self.h1, self.h0)
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                unreachable!("clmul_available() is false off x86_64")
            }
        } else {
            self.karatsuba_scalar()
        };
        (self.y1, self.y0) = shift_reduce(v);
    }

    /// The portable Karatsuba: nine masked multiplies (three per 64-bit
    /// part-product, the high halves recovered through bit reversal).
    fn karatsuba_scalar(&self) -> [u64; 4] {
        let (y0r, y1r) = (rev64(self.y0), rev64(self.y1));
        let y2 = self.y0 ^ self.y1;
        let y2r = y0r ^ y1r;
        let z0 = bmul64(self.y0, self.h0);
        let z1 = bmul64(self.y1, self.h1);
        let mut z2 = bmul64(y2, self.h2);
        let z0h = bmul64(y0r, self.h0r);
        let z1h = bmul64(y1r, self.h1r);
        let mut z2h = bmul64(y2r, self.h2r);
        z2 ^= z0 ^ z1;
        z2h ^= z0h ^ z1h;
        let z0h = rev64(z0h) >> 1;
        let z1h = rev64(z1h) >> 1;
        let z2h = rev64(z2h) >> 1;
        [z0, z0h ^ z2, z1 ^ z2h, z1h]
    }

    /// Absorb `data`, zero-padding the trailing partial block (GCM pads
    /// AAD and ciphertext independently).
    fn update_padded(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(BLOCK_LEN);
        for chunk in &mut chunks {
            self.update_block(chunk.try_into().expect("exact chunk"));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; BLOCK_LEN];
            last[..rem.len()].copy_from_slice(rem);
            self.update_block(&last);
        }
    }

    /// Finish with the lengths block and return the untagged GHASH value.
    fn finalize(mut self, aad_len: usize, ct_len: usize) -> [u8; BLOCK_LEN] {
        let mut lens = [0u8; BLOCK_LEN];
        lens[..8].copy_from_slice(&(8 * aad_len as u64).to_be_bytes());
        lens[8..].copy_from_slice(&(8 * ct_len as u64).to_be_bytes());
        self.update_block(&lens);
        let mut out = [0u8; BLOCK_LEN];
        out[..8].copy_from_slice(&self.y1.to_be_bytes());
        out[8..].copy_from_slice(&self.y0.to_be_bytes());
        out
    }
}

/// Is the CLMUL GHASH path usable on this host (and not forced portable)?
fn clmul_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            !crate::dispatch::force_portable()
                && std::arch::is_x86_feature_detected!("pclmulqdq")
                && std::arch::is_x86_feature_detected!("sse2")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// CLMUL part-product kernel. Only the three carry-less 64×64 multiplies
/// run in vector registers; the shift-and-fold reduction is the shared
/// scalar `shift_reduce`, so this path cannot disagree with the portable
/// one about anything but the multiplier — which the agreement tests pin.
#[cfg(target_arch = "x86_64")]
mod ni {
    // The sanctioned unsafe exception (see lib.rs): scoped, behind runtime
    // feature detection, with safety comments.
    #![allow(unsafe_code)]

    use core::arch::x86_64::*;

    /// Karatsuba part-products of `(y1‖y0) ⊗ (h1‖h0)` as four limbs, low
    /// to high — bit-compatible with `Ghash::karatsuba_scalar`.
    pub fn karatsuba(y1: u64, y0: u64, h1: u64, h0: u64) -> [u64; 4] {
        // SAFETY: `clmul_available()` gates every call site on CPUID.
        unsafe { karatsuba_impl(y1, y0, h1, h0) }
    }

    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    unsafe fn karatsuba_impl(y1: u64, y0: u64, h1: u64, h0: u64) -> [u64; 4] {
        // SAFETY: register-only SIMD plus stores into stack arrays of
        // exactly 16 bytes; `target_feature` is vouched for by the
        // caller's CPUID check.
        unsafe {
            let a = _mm_set_epi64x(y1 as i64, y0 as i64);
            let b = _mm_set_epi64x(h1 as i64, h0 as i64);
            let p0 = _mm_clmulepi64_si128(a, b, 0x00);
            let p1 = _mm_clmulepi64_si128(a, b, 0x11);
            let af = _mm_xor_si128(a, _mm_srli_si128(a, 8));
            let bf = _mm_xor_si128(b, _mm_srli_si128(b, 8));
            let mut mid = _mm_clmulepi64_si128(af, bf, 0x00);
            mid = _mm_xor_si128(mid, _mm_xor_si128(p0, p1));
            let mut lo = [0u64; 2];
            let mut hi = [0u64; 2];
            let mut md = [0u64; 2];
            _mm_storeu_si128(lo.as_mut_ptr() as *mut __m128i, p0);
            _mm_storeu_si128(hi.as_mut_ptr() as *mut __m128i, p1);
            _mm_storeu_si128(md.as_mut_ptr() as *mut __m128i, mid);
            [lo[0], lo[1] ^ md[0], hi[0] ^ md[1], hi[1]]
        }
    }
}

// --------------------------------------------------------------------------
// CTR keystream + seal/open
// --------------------------------------------------------------------------

/// Generate `len` bytes of CTR keystream starting at big-endian counter
/// `first_ctr` (GCM `inc32` semantics over the 12-byte nonce).
fn ctr_keystream(aes: &Aes128, nonce: &[u8; NONCE_LEN], first_ctr: u32, len: usize) -> Vec<u8> {
    #[cfg(target_arch = "x86_64")]
    if crate::aes::ni::available() {
        let nblocks = len.div_ceil(BLOCK_LEN);
        let mut out = vec![0u8; nblocks * BLOCK_LEN];
        let rk = aes.schedule_words();
        let j0 = [
            u32::from_le_bytes(nonce[..4].try_into().expect("4 bytes")),
            u32::from_le_bytes(nonce[4..8].try_into().expect("4 bytes")),
            u32::from_le_bytes(nonce[8..].try_into().expect("4 bytes")),
        ];
        let mut ks = vec![0u64; 2 * nblocks];
        crate::aes::ni::ctr_keystream(&rk, &j0, first_ctr, &mut ks);
        for (i, w) in ks.iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&w.to_le_bytes());
        }
        out.truncate(len);
        return out;
    }
    ctr_keystream_scalar(aes, nonce, first_ctr, len)
}

/// The byte-oriented CTR loop: the portable fallback, and (forced) the
/// reference baseline for the agreement tests and benchmarks.
fn ctr_keystream_scalar(
    aes: &Aes128,
    nonce: &[u8; NONCE_LEN],
    first_ctr: u32,
    len: usize,
) -> Vec<u8> {
    let nblocks = len.div_ceil(BLOCK_LEN);
    let mut out = vec![0u8; nblocks * BLOCK_LEN];
    for b in 0..nblocks {
        let mut block = [0u8; BLOCK_LEN];
        block[..NONCE_LEN].copy_from_slice(nonce);
        block[NONCE_LEN..].copy_from_slice(&first_ctr.wrapping_add(b as u32).to_be_bytes());
        aes.encrypt_block_scalar(&mut block);
        out[BLOCK_LEN * b..BLOCK_LEN * (b + 1)].copy_from_slice(&block);
    }
    out.truncate(len);
    out
}

/// Hash key + keystream generation, with the `portable` flag forcing the
/// scalar reference paths (used by agreement tests and benchmarks to
/// compare against the dispatched paths inside one binary).
fn hash_key(aes: &Aes128, portable: bool) -> [u8; BLOCK_LEN] {
    let mut h = [0u8; BLOCK_LEN];
    if portable {
        aes.encrypt_block_scalar(&mut h);
    } else {
        aes.encrypt_block(&mut h);
    }
    h
}

fn keystream(
    aes: &Aes128,
    nonce: &[u8; NONCE_LEN],
    first_ctr: u32,
    len: usize,
    portable: bool,
) -> Vec<u8> {
    if portable {
        ctr_keystream_scalar(aes, nonce, first_ctr, len)
    } else {
        ctr_keystream(aes, nonce, first_ctr, len)
    }
}

fn seal_impl(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    plaintext: &[u8],
    portable: bool,
) -> Vec<u8> {
    let aes = Aes128::new(key);
    let h = hash_key(&aes, portable);
    // Data blocks start at counter 2; counter 1 masks the tag.
    let ks = keystream(&aes, nonce, 2, plaintext.len(), portable);
    let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
    out.extend(plaintext.iter().zip(&ks).map(|(p, k)| p ^ k));
    let mut ghash = Ghash::new_with(&h, !portable && clmul_available());
    ghash.update_padded(aad);
    ghash.update_padded(&out);
    let mut tag = ghash.finalize(aad.len(), plaintext.len());
    let mask = keystream(&aes, nonce, 1, TAG_LEN, portable);
    for (t, m) in tag.iter_mut().zip(&mask) {
        *t ^= m;
    }
    out.extend_from_slice(&tag);
    out
}

fn open_impl(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext: &[u8],
    portable: bool,
) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.len() < TAG_LEN {
        return Err(CryptoError::BadMac);
    }
    let (ct, tag) = ciphertext.split_at(ciphertext.len() - TAG_LEN);
    let aes = Aes128::new(key);
    let h = hash_key(&aes, portable);
    let mut ghash = Ghash::new_with(&h, !portable && clmul_available());
    ghash.update_padded(aad);
    ghash.update_padded(ct);
    let mut expect = ghash.finalize(aad.len(), ct.len());
    let mask = keystream(&aes, nonce, 1, TAG_LEN, portable);
    for (t, m) in expect.iter_mut().zip(&mask) {
        *t ^= m;
    }
    if !crate::ct::ct_eq(&expect, tag) {
        return Err(CryptoError::BadMac);
    }
    let ks = keystream(&aes, nonce, 2, ct.len(), portable);
    Ok(ct.iter().zip(&ks).map(|(c, k)| c ^ k).collect())
}

/// Encrypt and authenticate: returns `ciphertext ‖ tag`.
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    seal_impl(key, nonce, aad, plaintext, false)
}

/// Verify and decrypt `ciphertext ‖ tag`. The tag is checked (in constant
/// time) before any plaintext is released.
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    open_impl(key, nonce, aad, ciphertext, false)
}

/// [`seal`] forced onto the scalar reference paths regardless of CPU
/// features. For agreement tests and scalar-baseline benchmarks only.
#[doc(hidden)]
pub fn seal_portable(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    plaintext: &[u8],
) -> Vec<u8> {
    seal_impl(key, nonce, aad, plaintext, true)
}

/// [`open`] forced onto the scalar reference paths regardless of CPU
/// features. For agreement tests and scalar-baseline benchmarks only.
#[doc(hidden)]
pub fn open_portable(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    open_impl(key, nonce, aad, ciphertext, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    fn kat(key: &str, nonce: &str, aad: &str, pt: &str, ct: &str, tag: &str) {
        let key: [u8; 16] = unhex(key).try_into().unwrap();
        let nonce: [u8; 12] = unhex(nonce).try_into().unwrap();
        let (aad, pt) = (unhex(aad), unhex(pt));
        let sealed = seal(&key, &nonce, &aad, &pt);
        let want: Vec<u8> = unhex(ct).into_iter().chain(unhex(tag)).collect();
        assert_eq!(sealed, want, "seal mismatch");
        let opened = open(&key, &nonce, &aad, &sealed).expect("tag verifies");
        assert_eq!(opened, pt, "open mismatch");
    }

    // McGrew/Viega "The Galois/Counter Mode of Operation" test cases 1-4
    // (the NIST CAVS AES-128-GCM anchor vectors).
    #[test]
    fn mcgrew_viega_case_1_empty() {
        kat(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "",
            "",
            "",
            "58e2fccefa7e3061367f1d57a4e7455a",
        );
    }

    #[test]
    fn mcgrew_viega_case_2_one_block() {
        kat(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "",
            "00000000000000000000000000000000",
            "0388dace60b6a392f328c2b971b2fe78",
            "ab6e47d42cec13bdf53a67b21257bddf",
        );
    }

    #[test]
    fn mcgrew_viega_case_3_four_blocks() {
        kat(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
            "4d5c2af327cd64a62cf35abd2ba6fab4",
        );
    }

    #[test]
    fn mcgrew_viega_case_4_aad_and_partial_block() {
        kat(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
            "5bc94fbc3221a5db94fae95ae7121a47",
        );
    }

    #[test]
    fn tampered_tag_ciphertext_and_aad_all_fail() {
        let key = [7u8; 16];
        let nonce = [3u8; 12];
        let sealed = seal(&key, &nonce, b"aad", b"hello, record layer");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 1;
            assert!(open(&key, &nonce, b"aad", &bad).is_err(), "byte {i}");
        }
        assert!(open(&key, &nonce, b"aae", &sealed).is_err(), "bad aad");
        assert!(open(&key, &[4u8; 12], b"aad", &sealed).is_err(), "nonce");
    }

    /// The NIST SP 800-38D bit-by-bit reference multiplication, used to
    /// pin the Karatsuba/fold implementation independently of the KATs.
    fn gf_mul_reference(x: &[u8; 16], y: &[u8; 16]) -> [u8; 16] {
        let mut z = [0u8; 16];
        let mut v = *y;
        for i in 0..128 {
            if x[i / 8] >> (7 - i % 8) & 1 == 1 {
                for (zb, vb) in z.iter_mut().zip(&v) {
                    *zb ^= vb;
                }
            }
            let lsb = v[15] & 1;
            for j in (1..16).rev() {
                v[j] = v[j] >> 1 | v[j - 1] << 7;
            }
            v[0] >>= 1;
            if lsb == 1 {
                v[0] ^= 0xe1;
            }
        }
        z
    }

    #[test]
    fn scalar_ghash_matches_bitwise_reference() {
        let mut rng = crate::drbg::HmacDrbg::new(b"ghash-ref");
        for _ in 0..50 {
            let mut h = [0u8; 16];
            let mut x = [0u8; 16];
            rng.fill_bytes(&mut h);
            rng.fill_bytes(&mut x);
            let mut g = Ghash::new(&h);
            g.use_clmul = false;
            g.update_block(&x);
            let mut got = [0u8; 16];
            got[..8].copy_from_slice(&g.y1.to_be_bytes());
            got[8..].copy_from_slice(&g.y0.to_be_bytes());
            assert_eq!(got, gf_mul_reference(&x, &h));
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn clmul_and_scalar_ghash_agree() {
        if !clmul_available() {
            return;
        }
        let mut rng = crate::drbg::HmacDrbg::new(b"ghash-clmul");
        for _ in 0..200 {
            let mut h = [0u8; 16];
            let mut x = [0u8; 16];
            rng.fill_bytes(&mut h);
            rng.fill_bytes(&mut x);
            let mut hw = Ghash::new(&h);
            let mut sw = Ghash::new(&h);
            sw.use_clmul = false;
            assert!(hw.use_clmul);
            hw.update_block(&x);
            sw.update_block(&x);
            assert_eq!((hw.y1, hw.y0), (sw.y1, sw.y0));
        }
    }

    #[test]
    fn roundtrip_all_lengths_through_two_blocks() {
        let key = [0x42u8; 16];
        let nonce = [0x24u8; 12];
        for len in 0..=33 {
            let pt: Vec<u8> = (0..len as u8).collect();
            let sealed = seal(&key, &nonce, b"hdr", &pt);
            assert_eq!(sealed.len(), pt.len() + TAG_LEN);
            assert_eq!(open(&key, &nonce, b"hdr", &sealed).unwrap(), pt);
        }
    }
}
