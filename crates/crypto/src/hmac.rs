//! HMAC-SHA256 (RFC 2104), pinned to the RFC 4231 test vectors.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256.
///
/// Both hash states absorbed the (padded) key, so the struct is
/// secret-bearing: it wipes itself on drop.
// ctlint: secret
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Initialize with `key` (any length; keys longer than the block size
    /// are hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = crate::sha256::sha256(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        // The padded-key copies are as sensitive as the key itself.
        crate::wipe::wipe_bytes(&mut k);
        crate::wipe::wipe_bytes(&mut ipad);
        crate::wipe::wipe_bytes(&mut opad);
        HmacSha256 { inner, outer }
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalize and return the 32-byte tag.
    pub fn finish(mut self) -> [u8; DIGEST_LEN] {
        // `mem::take` rather than moving the fields out: `HmacSha256` has a
        // `Drop` impl, and the taken-out blank states still get wiped by it.
        let inner = std::mem::take(&mut self.inner);
        let inner_digest = inner.finish();
        self.outer.update(&inner_digest);
        std::mem::take(&mut self.outer).finish()
    }
}

impl crate::wipe::Wipe for HmacSha256 {
    fn wipe(&mut self) {
        self.inner.wipe();
        self.outer.wipe();
    }
}

impl Drop for HmacSha256 {
    fn drop(&mut self) {
        use crate::wipe::Wipe;
        self.wipe();
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    h.update(msg);
    h.finish()
}

/// Verify an HMAC-SHA256 tag in constant time. Accepts truncated tags of at
/// least 16 bytes (some TLS MAC constructions truncate).
pub fn verify_hmac_sha256(key: &[u8], msg: &[u8], tag: &[u8]) -> bool {
    if tag.len() < 16 || tag.len() > DIGEST_LEN {
        return false;
    }
    let full = hmac_sha256(key, msg);
    crate::ct::ct_eq(&full[..tag.len()], tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 4231 test case 7: long key and long data.
    #[test]
    fn rfc4231_case7_long_key_long_data() {
        let key = [0xaau8; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac_sha256(b"k", b"m", &tag));
        assert!(verify_hmac_sha256(b"k", b"m", &tag[..16]));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"k", b"m", &bad));
        assert!(!verify_hmac_sha256(b"k", b"m2", &tag));
        assert!(!verify_hmac_sha256(b"k2", b"m", &tag));
        assert!(
            !verify_hmac_sha256(b"k", b"m", &tag[..8]),
            "too-short tag rejected"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"key");
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finish(), hmac_sha256(b"key", b"part one part two"));
    }
}
