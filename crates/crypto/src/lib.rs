//! # ts-crypto — cryptographic primitives for the TLS crypto-shortcuts study
//!
//! This crate implements, from scratch, every primitive the reproduction's
//! TLS 1.2 stack needs. The study requires *white-box* access to handshake
//! secrets (ephemeral Diffie-Hellman values, session ticket encryption keys,
//! master secrets), which production libraries such as rustls deliberately
//! hide — so we own the whole stack.
//!
//! Implemented primitives, each pinned to published test vectors:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4)
//! * [`hmac`] — HMAC-SHA256 (RFC 4231)
//! * [`prf`] — the TLS 1.2 pseudo-random function `P_SHA256` (RFC 5246 §5)
//!   and HKDF (RFC 5869) for the TLS 1.3 PSK module
//! * [`aes`] — the AES-128 block cipher (FIPS 197), with an AES-NI fast
//!   path behind runtime CPUID detection (see [`dispatch`])
//! * [`cbc`] — AES-128-CBC with PKCS#7 padding (NIST SP 800-38A)
//! * [`gcm`] — AES-128-GCM (NIST SP 800-38D) with a CLMUL GHASH fast path
//! * [`chacha20`] / [`poly1305`] / [`aead`] — ChaCha20-Poly1305 (RFC 7539),
//!   with an AVX2 8-way keystream fast path
//! * [`bignum`] — arbitrary-precision unsigned integers with Knuth-D
//!   division and Montgomery modular exponentiation
//! * [`dh`] — finite-field Diffie-Hellman over named groups (RFC 3526 plus
//!   small "simulation" groups for fast large-population runs)
//! * [`x25519`] — Curve25519 ECDH (RFC 7748)
//! * [`rsa`] — RSA key generation (Miller-Rabin) and PKCS#1 v1.5
//!   signatures with SHA-256
//! * [`drbg`] — a deterministic HMAC-DRBG (SP 800-90A flavoured) so every
//!   simulation run is reproducible from a seed
//! * [`ct`] — constant-time comparison helpers
//!
//! ## Security stance
//!
//! These implementations are correct (vector-pinned and property-tested) but
//! are written for a *measurement simulation*: they favour clarity over
//! side-channel hardening. Do not lift them into production use.

// `deny` rather than `forbid`: the sanctioned exceptions are the
// volatile-write zeroization primitive in [`wipe`] and the SIMD kernels in
// [`aes`], [`gcm`], and [`chacha20`] — each opts back in with a scoped
// `#[allow(unsafe_code)]`, runtime CPUID gating, and safety comments.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod aes;
pub mod bignum;
pub mod cbc;
pub mod chacha20;
pub mod ct;
pub mod dh;
pub mod dispatch;
pub mod drbg;
pub mod error;
pub mod gcm;
pub mod hmac;
pub mod poly1305;
pub mod prf;
pub mod rsa;
pub mod sha256;
pub mod wipe;
pub mod x25519;

pub use error::CryptoError;
