//! The Poly1305 one-time authenticator (RFC 7539 §2.5).
//!
//! Implemented with three 64-bit limbs (44/44/42-bit radix folded into a
//! simpler 2^64 radix using `u128` intermediates). Bulk input takes a
//! two-block batch path — `h = (h + b1)·r² + b2·r` — which halves the
//! carry chains per byte; r² is precomputed at key setup. Because every
//! block multiply fully reduces mod 2^130 - 5, the batch path is
//! bit-identical to the one-block path.

/// Tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Poly1305 state for incremental MAC computation.
pub struct Poly1305 {
    // r (clamped), r² mod p, and the accumulator, as 130-bit values in
    // three 64-bit limbs of 44, 44 and 42 bits.
    r: [u64; 3],
    r_sq: [u64; 3],
    h: [u64; 3],
    s: [u64; 2],
    buf: [u8; 16],
    buf_len: usize,
}

/// Accumulate `h * r` (mod-p folded) into the 128-bit column sums `d`.
/// The caller carries afterwards; two accumulations fit without overflow
/// (terms are < 2^97, so six of them stay far below 2^128).
fn muladd(h: &[u64; 3], r: &[u64; 3], d: &mut [u128; 3]) {
    let [h0, h1, h2] = h.map(|x| x as u128);
    let [r0, r1, r2] = r.map(|x| x as u128);
    // 5 * r_i pre-scaled for the reduction: x * 2^130 ≡ 5x.
    let s1 = r1 * 20; // 5 * 4: limbs are 44 bits so 2^130 = 2^(44+44+42);
    let s2 = r2 * 20; // carrying r1/r2 above limb 2 multiplies by 5*2^2.
    d[0] += h0 * r0 + h1 * s2 + h2 * s1;
    d[1] += h0 * r1 + h1 * r0 + h2 * s2;
    d[2] += h0 * r2 + h1 * r1 + h2 * r0;
}

/// Carry-propagate column sums back to 44/44/42-bit limbs.
fn carry(d: [u128; 3]) -> [u64; 3] {
    let [d0, mut d1, mut d2] = d;
    let mut c = (d0 >> 44) as u64;
    let mut out0 = (d0 as u64) & 0xfffffffffff;
    d1 += c as u128;
    c = (d1 >> 44) as u64;
    let mut out1 = (d1 as u64) & 0xfffffffffff;
    d2 += c as u128;
    c = (d2 >> 42) as u64;
    let out2 = (d2 as u64) & 0x3ffffffffff;
    out0 += c * 5;
    let c2 = out0 >> 44;
    out0 &= 0xfffffffffff;
    out1 += c2;
    [out0, out1, out2]
}

/// Split a 16-byte block into 44/44/42-bit limbs, with the 2^128 bit set
/// when `hibit` is 1 (full block).
fn block_limbs(block: &[u8; 16], hibit: u64) -> [u64; 3] {
    let t0 = u64::from_le_bytes(block[0..8].try_into().expect("8 bytes"));
    let t1 = u64::from_le_bytes(block[8..16].try_into().expect("8 bytes"));
    [
        t0 & 0xfffffffffff,
        ((t0 >> 44) | (t1 << 20)) & 0xfffffffffff,
        ((t1 >> 24) & 0x3ffffffffff) | (hibit << 40),
    ]
}

impl Poly1305 {
    /// Initialize with a 32-byte one-time key (r || s).
    pub fn new(key: &[u8; 32]) -> Self {
        let t0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
        let t1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
        // Clamp r per the RFC and split into 44/44/42-bit limbs.
        let r0 = t0 & 0xffc0fffffff;
        let r1 = ((t0 >> 44) | (t1 << 20)) & 0xfffffc0ffff;
        let r2 = (t1 >> 24) & 0x00ffffffc0f;
        let s0 = u64::from_le_bytes(key[16..24].try_into().expect("8 bytes"));
        let s1 = u64::from_le_bytes(key[24..32].try_into().expect("8 bytes"));
        let r = [r0, r1, r2];
        let mut d = [0u128; 3];
        muladd(&r, &r, &mut d);
        Poly1305 {
            r,
            r_sq: carry(d),
            h: [0; 3],
            s: [s0, s1],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, 1);
                self.buf_len = 0;
            }
        }
        // Two-block batch: h = (h + b1)·r² + b2·r, one carry chain per
        // 32 bytes. Bit-identical to processing b1 then b2 (see module doc).
        while data.len() >= 32 {
            let b1: [u8; 16] = data[..16].try_into().expect("16 bytes");
            let b2: [u8; 16] = data[16..32].try_into().expect("16 bytes");
            let m1 = block_limbs(&b1, 1);
            let m2 = block_limbs(&b2, 1);
            self.h[0] += m1[0];
            self.h[1] += m1[1];
            self.h[2] += m1[2];
            let mut d = [0u128; 3];
            muladd(&self.h, &self.r_sq, &mut d);
            muladd(&m2, &self.r, &mut d);
            self.h = carry(d);
            data = &data[32..];
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.process_block(&block, 1);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn process_block(&mut self, block: &[u8; 16], hibit: u64) {
        // Add block (plus 2^128 if full block) to h, then h *= r
        // (mod 2^130 - 5), schoolbook with 128-bit intermediates.
        let m = block_limbs(block, hibit);
        self.h[0] += m[0];
        self.h[1] += m[1];
        self.h[2] += m[2];
        let mut d = [0u128; 3];
        muladd(&self.h, &self.r, &mut d);
        self.h = carry(d);
    }

    /// Finalize and produce the 16-byte tag.
    pub fn finish(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Final partial block: append 0x01 then zero-pad; hibit = 0.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, 0);
        }
        // Full carry and reduction mod 2^130 - 5.
        let [mut h0, mut h1, mut h2] = self.h;
        let mut c = h1 >> 44;
        h1 &= 0xfffffffffff;
        h2 += c;
        c = h2 >> 42;
        h2 &= 0x3ffffffffff;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= 0xfffffffffff;
        h1 += c;
        c = h1 >> 44;
        h1 &= 0xfffffffffff;
        h2 += c;
        c = h2 >> 42;
        h2 &= 0x3ffffffffff;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= 0xfffffffffff;
        h1 += c;
        // Compute h + -p = h - (2^130 - 5).
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 44;
        g0 &= 0xfffffffffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 44;
        g1 &= 0xfffffffffff;
        let g2 = h2.wrapping_add(c).wrapping_sub(1 << 42);
        // Select h if h < p, else g.
        let mask = (g2 >> 63).wrapping_sub(1); // all-ones if g2 did not borrow
        let h0 = (h0 & !mask) | (g0 & mask);
        let h1 = (h1 & !mask) | (g1 & mask);
        let h2 = (h2 & !mask) | (g2 & mask);
        // h += s (mod 2^128).
        let t0 = h0 | (h1 << 44);
        let t1 = (h1 >> 20) | (h2 << 24);
        let (t0, carry) = t0.overflowing_add(self.s[0]);
        let t1 = t1.wrapping_add(self.s[1]).wrapping_add(carry as u64);
        let mut tag = [0u8; TAG_LEN];
        tag[..8].copy_from_slice(&t0.to_le_bytes());
        tag[8..].copy_from_slice(&t1.to_le_bytes());
        tag
    }
}

/// One-shot Poly1305 MAC.
pub fn poly1305(key: &[u8; 32], msg: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(msg);
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 7539 §2.5.2 test vector.
    #[test]
    fn rfc7539_vector() {
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    // RFC 7539 Appendix A.3 test vector #1: all-zero key, all-zero text.
    #[test]
    fn rfc7539_a3_vector1() {
        let key = [0u8; 32];
        let msg = [0u8; 64];
        assert_eq!(
            hex(&poly1305(&key, &msg)),
            "00000000000000000000000000000000"
        );
    }

    // RFC 7539 Appendix A.3 test vector #2.
    #[test]
    fn rfc7539_a3_vector2() {
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        assert_eq!(
            hex(&poly1305(&key, msg)),
            "36e5f6b5c5e06070f0efca96227a863e"
        );
    }

    // RFC 7539 Appendix A.3 test vector #3 (r = key part, s = 0).
    #[test]
    fn rfc7539_a3_vector3() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        assert_eq!(
            hex(&poly1305(&key, msg)),
            "f3477e7cd95417af89a6b8794c310cf0"
        );
    }

    #[test]
    fn batched_and_single_block_paths_agree() {
        // Feeding 16 bytes at a time can only take the one-block path;
        // one-shot over >= 32 bytes takes the two-block batch. The tags
        // must be bit-identical for every length and key.
        let mut keybyte = 0u8;
        for len in [32usize, 33, 47, 48, 64, 100, 255, 1024, 1039] {
            keybyte = keybyte.wrapping_add(41);
            let mut key = [0u8; 32];
            for (i, k) in key.iter_mut().enumerate() {
                *k = keybyte.wrapping_add(i as u8).wrapping_mul(3);
            }
            let msg: Vec<u8> = (0..len).map(|i| (i * 7 % 251) as u8).collect();
            let batched = poly1305(&key, &msg);
            let mut p = Poly1305::new(&key);
            for chunk in msg.chunks(16) {
                p.update(chunk);
            }
            assert_eq!(p.finish(), batched, "len {len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [3u8; 32];
        let msg: Vec<u8> = (0..255u8).collect();
        let want = poly1305(&key, &msg);
        for split in [0usize, 1, 15, 16, 17, 100, 255] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finish(), want, "split {split}");
        }
    }
}
