//! The Poly1305 one-time authenticator (RFC 7539 §2.5).
//!
//! Implemented with three 64-bit limbs (44/44/42-bit radix folded into a
//! simpler 2^64 radix using `u128` intermediates). Clarity over speed.

/// Tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Poly1305 state for incremental MAC computation.
pub struct Poly1305 {
    // r (clamped) and the accumulator, as 130-bit values in three 64-bit
    // limbs of 44, 44 and 42 bits.
    r: [u64; 3],
    h: [u64; 3],
    s: [u64; 2],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Initialize with a 32-byte one-time key (r || s).
    pub fn new(key: &[u8; 32]) -> Self {
        let t0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
        let t1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
        // Clamp r per the RFC and split into 44/44/42-bit limbs.
        let r0 = t0 & 0xffc0fffffff;
        let r1 = ((t0 >> 44) | (t1 << 20)) & 0xfffffc0ffff;
        let r2 = (t1 >> 24) & 0x00ffffffc0f;
        let s0 = u64::from_le_bytes(key[16..24].try_into().expect("8 bytes"));
        let s1 = u64::from_le_bytes(key[24..32].try_into().expect("8 bytes"));
        Poly1305 {
            r: [r0, r1, r2],
            h: [0; 3],
            s: [s0, s1],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, 1);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.process_block(&block, 1);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn process_block(&mut self, block: &[u8; 16], hibit: u64) {
        let t0 = u64::from_le_bytes(block[0..8].try_into().expect("8 bytes"));
        let t1 = u64::from_le_bytes(block[8..16].try_into().expect("8 bytes"));
        // Add block (plus 2^128 if full block) to h.
        let m0 = t0 & 0xfffffffffff;
        let m1 = ((t0 >> 44) | (t1 << 20)) & 0xfffffffffff;
        let m2 = ((t1 >> 24) & 0x3ffffffffff) | (hibit << 40);
        self.h[0] += m0;
        self.h[1] += m1;
        self.h[2] += m2;
        // h *= r (mod 2^130 - 5), schoolbook with 128-bit intermediates.
        let [h0, h1, h2] = self.h.map(|x| x as u128);
        let [r0, r1, r2] = self.r.map(|x| x as u128);
        // 5 * r_i pre-scaled for the reduction: x * 2^130 ≡ 5x.
        let s1 = r1 * 20; // 5 * 4: limbs are 44 bits so 2^130 = 2^(44+44+42);
        let s2 = r2 * 20; // carrying r1/r2 above limb 2 multiplies by 5*2^2.
        let d0 = h0 * r0 + h1 * s2 + h2 * s1;
        let mut d1 = h0 * r1 + h1 * r0 + h2 * s2;
        let mut d2 = h0 * r2 + h1 * r1 + h2 * r0;
        // Carry propagation.
        let mut c = (d0 >> 44) as u64;
        let mut out0 = (d0 as u64) & 0xfffffffffff;
        d1 += c as u128;
        c = (d1 >> 44) as u64;
        let mut out1 = (d1 as u64) & 0xfffffffffff;
        d2 += c as u128;
        c = (d2 >> 42) as u64;
        let out2 = (d2 as u64) & 0x3ffffffffff;
        out0 += c * 5;
        let c2 = out0 >> 44;
        out0 &= 0xfffffffffff;
        out1 += c2;
        self.h = [out0, out1, out2];
    }

    /// Finalize and produce the 16-byte tag.
    pub fn finish(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Final partial block: append 0x01 then zero-pad; hibit = 0.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, 0);
        }
        // Full carry and reduction mod 2^130 - 5.
        let [mut h0, mut h1, mut h2] = self.h;
        let mut c = h1 >> 44;
        h1 &= 0xfffffffffff;
        h2 += c;
        c = h2 >> 42;
        h2 &= 0x3ffffffffff;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= 0xfffffffffff;
        h1 += c;
        c = h1 >> 44;
        h1 &= 0xfffffffffff;
        h2 += c;
        c = h2 >> 42;
        h2 &= 0x3ffffffffff;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= 0xfffffffffff;
        h1 += c;
        // Compute h + -p = h - (2^130 - 5).
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 44;
        g0 &= 0xfffffffffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 44;
        g1 &= 0xfffffffffff;
        let g2 = h2.wrapping_add(c).wrapping_sub(1 << 42);
        // Select h if h < p, else g.
        let mask = (g2 >> 63).wrapping_sub(1); // all-ones if g2 did not borrow
        let h0 = (h0 & !mask) | (g0 & mask);
        let h1 = (h1 & !mask) | (g1 & mask);
        let h2 = (h2 & !mask) | (g2 & mask);
        // h += s (mod 2^128).
        let t0 = h0 | (h1 << 44);
        let t1 = (h1 >> 20) | (h2 << 24);
        let (t0, carry) = t0.overflowing_add(self.s[0]);
        let t1 = t1.wrapping_add(self.s[1]).wrapping_add(carry as u64);
        let mut tag = [0u8; TAG_LEN];
        tag[..8].copy_from_slice(&t0.to_le_bytes());
        tag[8..].copy_from_slice(&t1.to_le_bytes());
        tag
    }
}

/// One-shot Poly1305 MAC.
pub fn poly1305(key: &[u8; 32], msg: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(msg);
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 7539 §2.5.2 test vector.
    #[test]
    fn rfc7539_vector() {
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    // RFC 7539 Appendix A.3 test vector #1: all-zero key, all-zero text.
    #[test]
    fn rfc7539_a3_vector1() {
        let key = [0u8; 32];
        let msg = [0u8; 64];
        assert_eq!(
            hex(&poly1305(&key, &msg)),
            "00000000000000000000000000000000"
        );
    }

    // RFC 7539 Appendix A.3 test vector #2.
    #[test]
    fn rfc7539_a3_vector2() {
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        assert_eq!(
            hex(&poly1305(&key, msg)),
            "36e5f6b5c5e06070f0efca96227a863e"
        );
    }

    // RFC 7539 Appendix A.3 test vector #3 (r = key part, s = 0).
    #[test]
    fn rfc7539_a3_vector3() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        assert_eq!(
            hex(&poly1305(&key, msg)),
            "f3477e7cd95417af89a6b8794c310cf0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [3u8; 32];
        let msg: Vec<u8> = (0..255u8).collect();
        let want = poly1305(&key, &msg);
        for split in [0usize, 1, 15, 16, 17, 100, 255] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finish(), want, "split {split}");
        }
    }
}
