//! The TLS 1.2 pseudo-random function (RFC 5246 §5) and HKDF (RFC 5869).
//!
//! TLS 1.2 derives the master secret and the key block from the premaster
//! secret via `PRF(secret, label, seed) = P_SHA256(secret, label + seed)`.
//! The TLS 1.3 PSK module uses HKDF-Extract/Expand instead.

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// `P_SHA256(secret, seed)` expanded to `out.len()` bytes (RFC 5246 §5).
pub fn p_sha256(secret: &[u8], seed: &[u8], out: &mut [u8]) {
    // A(0) = seed; A(i) = HMAC(secret, A(i-1))
    // output = HMAC(secret, A(1) + seed) + HMAC(secret, A(2) + seed) + ...
    let mut a = hmac_sha256(secret, seed);
    let mut offset = 0;
    while offset < out.len() {
        let mut msg = Vec::with_capacity(DIGEST_LEN + seed.len());
        msg.extend_from_slice(&a);
        msg.extend_from_slice(seed);
        let block = hmac_sha256(secret, &msg);
        let take = (out.len() - offset).min(DIGEST_LEN);
        out[offset..offset + take].copy_from_slice(&block[..take]);
        offset += take;
        a = hmac_sha256(secret, &a);
    }
}

/// The TLS 1.2 PRF: `PRF(secret, label, seed)` producing `len` bytes.
pub fn prf(secret: &[u8], label: &[u8], seed: &[u8], len: usize) -> Vec<u8> {
    let mut label_seed = Vec::with_capacity(label.len() + seed.len());
    label_seed.extend_from_slice(label);
    label_seed.extend_from_slice(seed);
    let mut out = vec![0u8; len];
    p_sha256(secret, &label_seed, &mut out);
    out
}

/// HKDF-Extract with SHA-256 (RFC 5869 §2.2).
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand with SHA-256 (RFC 5869 §2.3). Panics if `len > 255 * 32`.
pub fn hkdf_expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF-Expand output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        t = block.to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block[..take]);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // Widely circulated TLS 1.2 PRF (SHA-256) test vector
    // (e.g. from the IETF TLS list / mozilla NSS test suite).
    #[test]
    fn tls12_prf_vector() {
        let secret = unhex("9bbe436ba940f017b17652849a71db35");
        let seed = unhex("a0ba9f936cda311827a6f796ffd5198c");
        let out = prf(&secret, b"test label", &seed, 100);
        assert_eq!(
            hex(&out),
            "e3f229ba727be17b8d122620557cd453c2aab21d07c3d495329b52d4e61edb5a\
             6b301791e90d35c9c9a46b4e14baf9af0fa022f7077def17abfd3797c0564bab\
             4fbc91666e9def9b97fce34f796789baa48082d122ee42c5a72e5a5110fff701\
             87347b66"
        );
    }

    // RFC 5869 test case 1.
    #[test]
    fn hkdf_rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (empty salt and info).
    #[test]
    fn hkdf_rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let prk = hkdf_extract(&[], &ikm);
        let okm = hkdf_expand(&prk, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn prf_deterministic_and_length_exact() {
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            let a = prf(b"secret", b"label", b"seed", len);
            let b = prf(b"secret", b"label", b"seed", len);
            assert_eq!(a, b);
            assert_eq!(a.len(), len);
        }
    }

    #[test]
    fn prf_separates_inputs() {
        let base = prf(b"secret", b"label", b"seed", 32);
        assert_ne!(base, prf(b"secreT", b"label", b"seed", 32));
        assert_ne!(base, prf(b"secret", b"labeL", b"seed", 32));
        assert_ne!(base, prf(b"secret", b"label", b"seeD", 32));
        // label/seed boundary must matter... P_SHA256 concatenates, so the
        // pair ("label", "seed") equals ("labels", "eed") by construction.
        // Document that callers must use fixed labels (TLS does).
        assert_eq!(base, prf(b"secret", b"labels", b"eed", 32));
    }
}
