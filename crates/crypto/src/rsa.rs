//! RSA key generation and PKCS#1 v1.5 signatures with SHA-256.
//!
//! TLS servers in the study authenticate with RSA certificates regardless of
//! key-exchange method (RSA, DHE_RSA, ECDHE_RSA suites). Key sizes are
//! configurable; the simulation defaults to 512-bit keys so that populating
//! tens of thousands of synthetic domains stays fast, while 1024/2048-bit
//! keys are supported and tested.

use crate::bignum::{gen_prime, Montgomery, Ub, MONT_CACHE_HIT};
use crate::drbg::HmacDrbg;
use crate::error::CryptoError;
use crate::sha256::sha256;
use crate::wipe::Wipe;
use std::sync::OnceLock;

/// The DER-encoded DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
const SHA256_DIGEST_INFO: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// An RSA public key `(n, e)`.
///
/// Carries a lazily built [`Montgomery`] context for `n`, so repeated
/// operations against the same key instance (the server identity signing
/// every handshake's `signed_kex`) pay for `R² mod n` once. The context is
/// pure cache: equality and `Debug` ignore it.
#[derive(Clone)]
pub struct RsaPublicKey {
    /// Modulus.
    pub n: Ub,
    /// Public exponent (65537 for all generated keys).
    pub e: Ub,
    mont: OnceLock<Montgomery>,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl std::fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RsaPublicKey({} bits)", self.n.bit_len())
    }
}

/// The Chinese-remainder secret half of an RSA key: two ~half-width
/// exponentiations replace one full-width one (~3–4× on sign/decrypt).
// ctlint: secret
#[derive(Clone)]
struct RsaCrt {
    /// First prime factor.
    p: Ub,
    /// Second prime factor.
    q: Ub,
    /// `d mod (p-1)`.
    dp: Ub,
    /// `d mod (q-1)`.
    dq: Ub,
    /// `q^{-1} mod p`.
    qinv: Ub,
    /// Montgomery context for `p` (holds copies of the secret prime).
    mont_p: Montgomery,
    /// Montgomery context for `q`.
    mont_q: Montgomery,
}

impl std::fmt::Debug for RsaCrt {
    /// Redacting: none of the CRT components reach a formatter.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RsaCrt(<redacted>)")
    }
}

impl Wipe for RsaCrt {
    fn wipe(&mut self) {
        self.p.wipe();
        self.q.wipe();
        self.dp.wipe();
        self.dq.wipe();
        self.qinv.wipe();
        self.mont_p.wipe();
        self.mont_q.wipe();
    }
}

impl Drop for RsaCrt {
    /// The factorization of `n` is total key compromise (paper §2.3's
    /// record-then-breach attacker); scrub it the moment the key dies.
    fn drop(&mut self) {
        self.wipe();
    }
}

impl RsaCrt {
    /// Derive the CRT components from a freshly generated `(p, q, d)`.
    fn derive(p: Ub, q: Ub, d: &Ub) -> Result<Self, CryptoError> {
        let dp = d.rem(&p.sub(&Ub::one()));
        let dq = d.rem(&q.sub(&Ub::one()));
        let qinv = q.modinv(&p)?;
        let mont_p = Montgomery::new(&p);
        let mont_q = Montgomery::new(&q);
        Ok(RsaCrt {
            p,
            q,
            dp,
            dq,
            qinv,
            mont_p,
            mont_q,
        })
    }

    /// `m^d mod n` by Garner's recombination of the two half-width
    /// exponentiations. Requires `m < n = p*q`.
    fn private_op(&self, m: &Ub) -> Ub {
        MONT_CACHE_HIT.inc();
        let m1 = self.mont_p.modpow(m, &self.dp);
        MONT_CACHE_HIT.inc();
        let m2 = self.mont_q.modpow(m, &self.dq);
        // h = qinv * (m1 - m2) mod p, with m2 brought into [0, p) first.
        // Computed as (m1 + p - m2p) mod p so no comparison branches on
        // the secret intermediates.
        let m2p = m2.rem(&self.p);
        let diff = m1.add(&self.p).sub(&m2p).rem(&self.p);
        let h = self.qinv.mul_mod(&diff, &self.p);
        m2.add(&h.mul(&self.q))
    }
}

/// An RSA private key. Holds the public half too.
#[derive(Clone)]
pub struct RsaPrivateKey {
    /// The public key.
    pub public: RsaPublicKey,
    /// Private exponent.
    pub d: Ub,
    /// CRT components when the factorization is known (generated keys).
    /// Keys reconstructed from `(n, e, d)` alone fall back to the
    /// full-width exponent path.
    crt: Option<RsaCrt>,
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RsaPrivateKey({} bits)", self.public.n.bit_len())
    }
}

impl RsaPublicKey {
    /// Construct from modulus and public exponent.
    pub fn new(n: Ub, e: Ub) -> Self {
        RsaPublicKey {
            n,
            e,
            mont: OnceLock::new(),
        }
    }

    /// The per-key Montgomery context, built on first use.
    fn mont(&self) -> &Montgomery {
        MONT_CACHE_HIT.inc();
        self.mont.get_or_init(|| Montgomery::new(&self.n))
    }

    /// Modulus length in bytes.
    pub fn modulus_len(&self) -> usize {
        (self.n.bit_len() + 7) / 8
    }

    /// Verify a PKCS#1 v1.5 SHA-256 signature over `msg`.
    pub fn verify(&self, msg: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        if signature.len() != self.modulus_len() {
            return Err(CryptoError::BadSignature);
        }
        let s = Ub::from_bytes_be(signature);
        if s.cmp_to(&self.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::BadSignature);
        }
        let em = self
            .mont()
            .modpow(&s, &self.e)
            .to_bytes_be_padded(self.modulus_len());
        let expected = pkcs1_v15_encode(msg, self.modulus_len())?;
        if crate::ct::ct_eq(&em, &expected) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// RSA public-key *encryption* (PKCS#1 v1.5 type 2) — used by the
    /// legacy non-PFS `TLS_RSA_*` key exchange, where the client encrypts
    /// the premaster secret to the server's certificate key.
    pub fn encrypt(&self, msg: &[u8], rng: &mut HmacDrbg) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        if msg.len() + 11 > k {
            return Err(CryptoError::BadLength("RSA plaintext too long"));
        }
        let mut em = vec![0u8; k];
        em[1] = 0x02;
        let pad_len = k - 3 - msg.len();
        // Non-zero random padding, drawn in batches: each `fill_bytes` is
        // a full HMAC-DRBG generate round, so per-byte draws would cost
        // more than the modexp itself. Zero bytes (~1/256) are discarded
        // and the shortfall redrawn.
        let mut filled = 0;
        let mut buf = [0u8; 64];
        while filled < pad_len {
            let need = (pad_len - filled).min(buf.len());
            rng.fill_bytes(&mut buf[..need]);
            for &b in &buf[..need] {
                if b != 0 && filled < pad_len {
                    em[2 + filled] = b;
                    filled += 1;
                }
            }
        }
        em[2 + pad_len] = 0x00;
        em[3 + pad_len..].copy_from_slice(msg);
        let m = Ub::from_bytes_be(&em);
        Ok(self.mont().modpow(&m, &self.e).to_bytes_be_padded(k))
    }
}

impl RsaPrivateKey {
    /// Generate a key with modulus of `bits` bits and e = 65537.
    pub fn generate(bits: usize, rng: &mut HmacDrbg) -> Result<Self, CryptoError> {
        assert!(bits >= 128 && bits % 2 == 0, "unsupported RSA size");
        let e = Ub::from_u64(65537);
        for _ in 0..64 {
            let p = gen_prime(bits / 2, |b| rng.fill_bytes(b));
            let q = gen_prime(bits / 2, |b| rng.fill_bytes(b));
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let phi = p.sub(&Ub::one()).mul(&q.sub(&Ub::one()));
            let d = match e.modinv(&phi) {
                Ok(d) => d,
                Err(_) => continue, // gcd(e, phi) != 1; rare
            };
            let crt = match RsaCrt::derive(p, q, &d) {
                Ok(crt) => Some(crt),
                Err(_) => None, // unreachable for distinct primes; fall back
            };
            return Ok(RsaPrivateKey {
                public: RsaPublicKey::new(n, e),
                d,
                crt,
            });
        }
        Err(CryptoError::KeygenFailure)
    }

    /// `m^d mod n`: two half-width CRT exponentiations when the
    /// factorization is available, one full-width otherwise.
    fn private_op(&self, m: &Ub) -> Ub {
        match &self.crt {
            Some(crt) => crt.private_op(m),
            None => m.modpow(&self.d, &self.public.n),
        }
    }

    /// Sign `msg` with PKCS#1 v1.5 / SHA-256.
    pub fn sign(&self, msg: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let em = pkcs1_v15_encode(msg, k)?;
        let m = Ub::from_bytes_be(&em);
        Ok(self.private_op(&m).to_bytes_be_padded(k))
    }

    /// RSA private-key decryption (PKCS#1 v1.5 type 2).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        if ciphertext.len() != k {
            return Err(CryptoError::BadLength("RSA ciphertext length"));
        }
        let c = Ub::from_bytes_be(ciphertext);
        if c.cmp_to(&self.public.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::BadLength("RSA ciphertext out of range"));
        }
        let em = self.private_op(&c).to_bytes_be_padded(k);
        if em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::BadPadding);
        }
        // Find the 0x00 separator after at least 8 padding bytes.
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(CryptoError::BadPadding)?;
        if sep < 8 {
            return Err(CryptoError::BadPadding);
        }
        Ok(em[2 + sep + 1..].to_vec())
    }
}

/// EMSA-PKCS1-v1_5 encoding of SHA-256(msg) into `k` bytes.
fn pkcs1_v15_encode(msg: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let digest = sha256(msg);
    let t_len = SHA256_DIGEST_INFO.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::BadLength("RSA modulus too small for SHA-256"));
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.extend(std::iter::repeat(0xff).take(k - t_len - 3));
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO);
    em.extend_from_slice(&digest);
    debug_assert_eq!(em.len(), k);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key(bits: usize, seed: &[u8]) -> RsaPrivateKey {
        let mut rng = HmacDrbg::new(seed);
        RsaPrivateKey::generate(bits, &mut rng).expect("keygen")
    }

    #[test]
    fn sign_verify_roundtrip_512() {
        let key = test_key(512, b"rsa-512");
        let sig = key.sign(b"hello TLS").unwrap();
        assert_eq!(sig.len(), 64);
        key.public.verify(b"hello TLS", &sig).unwrap();
    }

    #[test]
    fn sign_verify_roundtrip_1024() {
        let key = test_key(1024, b"rsa-1024");
        let sig = key.sign(b"server key exchange params").unwrap();
        assert_eq!(sig.len(), 128);
        key.public
            .verify(b"server key exchange params", &sig)
            .unwrap();
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = test_key(512, b"rsa-wrong-msg");
        let sig = key.sign(b"msg A").unwrap();
        assert_eq!(
            key.public.verify(b"msg B", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = test_key(512, b"rsa-tamper");
        let mut sig = key.sign(b"msg").unwrap();
        sig[10] ^= 1;
        assert!(key.public.verify(b"msg", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let k1 = test_key(512, b"rsa-k1");
        let k2 = test_key(512, b"rsa-k2");
        let sig = k1.sign(b"msg").unwrap();
        assert!(k2.public.verify(b"msg", &sig).is_err());
    }

    #[test]
    fn verify_rejects_bad_lengths() {
        let key = test_key(512, b"rsa-len");
        let sig = key.sign(b"msg").unwrap();
        assert!(key.public.verify(b"msg", &sig[..63]).is_err());
        let mut long = sig.clone();
        long.push(0);
        assert!(key.public.verify(b"msg", &long).is_err());
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = test_key(512, b"rsa-enc");
        let mut rng = HmacDrbg::new(b"enc-rng");
        let pms = b"premaster secret bytes 48 long.................";
        let ct = key.public.encrypt(pms, &mut rng).unwrap();
        assert_eq!(ct.len(), 64);
        assert_eq!(key.decrypt(&ct).unwrap(), pms);
    }

    #[test]
    fn encrypt_rejects_oversized_plaintext() {
        let key = test_key(512, b"rsa-too-big");
        let mut rng = HmacDrbg::new(b"r");
        let big = vec![1u8; 64 - 10];
        assert!(key.public.encrypt(&big, &mut rng).is_err());
    }

    #[test]
    fn decrypt_rejects_garbage() {
        let key = test_key(512, b"rsa-garbage");
        assert!(key.decrypt(&[0u8; 64]).is_err());
        assert!(key.decrypt(&[0u8; 63]).is_err());
        assert!(key.decrypt(&[0xffu8; 64]).is_err());
    }

    #[test]
    fn crt_sign_matches_full_exponent_sign() {
        // RSA is a deterministic function of (m, d, n): Garner recombination
        // must reproduce the plain-exponent signature bit for bit.
        let key = test_key(512, b"rsa-crt");
        assert!(key.crt.is_some(), "generated keys carry CRT components");
        let plain = RsaPrivateKey {
            public: key.public.clone(),
            d: key.d.clone(),
            crt: None,
        };
        for msg in [b"a".as_slice(), b"server key exchange params", &[0xAB; 100]] {
            assert_eq!(key.sign(msg).unwrap(), plain.sign(msg).unwrap());
        }
    }

    #[test]
    fn crt_decrypt_matches_full_exponent_decrypt() {
        let key = test_key(512, b"rsa-crt-dec");
        let plain = RsaPrivateKey {
            public: key.public.clone(),
            d: key.d.clone(),
            crt: None,
        };
        let mut rng = HmacDrbg::new(b"crt-dec-rng");
        let pms = b"premaster secret bytes 48 long.................";
        let ct = key.public.encrypt(pms, &mut rng).unwrap();
        assert_eq!(key.decrypt(&ct).unwrap(), pms);
        assert_eq!(plain.decrypt(&ct).unwrap(), pms);
    }

    #[test]
    fn crt_components_wipe_clean() {
        let key = test_key(512, b"rsa-wipe");
        let mut crt = key.crt.clone().unwrap();
        crt.wipe();
        assert!(crt.p.is_zero());
        assert!(crt.q.is_zero());
        assert!(crt.dp.is_zero());
        assert!(crt.dq.is_zero());
        assert!(crt.qinv.is_zero());
        crt.wipe(); // idempotent
    }

    #[test]
    fn keygen_is_deterministic_per_seed() {
        let k1 = test_key(512, b"same-seed");
        let k2 = test_key(512, b"same-seed");
        assert_eq!(k1.public.n.to_hex(), k2.public.n.to_hex());
        let k3 = test_key(512, b"other-seed");
        assert_ne!(k1.public.n.to_hex(), k3.public.n.to_hex());
    }

    #[test]
    fn exact_modulus_bit_length() {
        for bits in [256usize, 512] {
            let key = test_key(bits, format!("bits-{bits}").as_bytes());
            assert_eq!(key.public.n.bit_len(), bits);
        }
    }
}
