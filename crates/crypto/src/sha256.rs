//! SHA-256 (FIPS 180-4).
//!
//! A straightforward, allocation-free implementation of the SHA-256
//! compression function with an incremental [`Sha256`] hasher and a one-shot
//! [`sha256`] convenience function. Pinned to the FIPS 180-4 / NIST CAVP
//! short-message vectors in the tests below.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes (used by HMAC).
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use ts_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(hex(&h.finish()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
/// fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::wipe::Wipe for Sha256 {
    /// Reset to the blank IV, volatile-zeroing the absorbed state first.
    /// A `Sha256` that has absorbed key material (HMAC pads, PRF inputs)
    /// is as sensitive as the key; owners like `HmacSha256` wipe on drop.
    fn wipe(&mut self) {
        crate::wipe::wipe_u32s(&mut self.state);
        crate::wipe::wipe_bytes(&mut self.buf);
        self.state = H0;
        self.buf_len = 0;
        self.total_len = 0;
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Finalize and return the 32-byte digest. Consumes the hasher.
    pub fn finish(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian length.
        self.update_padding(bit_len);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self, bit_len: u64) {
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        // Number of padding bytes so that (buf_len + pad_len + 8) % 64 == 0.
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        // Bypass total_len accounting: feed blocks directly.
        let mut input = &pad[..pad_len + 8];
        let take = (BLOCK_LEN - self.buf_len).min(input.len());
        self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
        self.buf_len += take;
        input = &input[take..];
        if self.buf_len == BLOCK_LEN {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        if !input.is_empty() {
            debug_assert_eq!(input.len(), BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(input);
            self.compress(&b);
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        #[cfg(target_arch = "x86_64")]
        if ni::available() {
            ni::compress(&mut self.state, block);
            return;
        }
        self.compress_scalar(block);
    }

    fn compress_scalar(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        // Fully unrolled rounds with rotating variable names: the eight
        // per-round register shuffles of the loop form don't reliably
        // optimize out, and this function carries every PRF, HMAC, DRBG
        // and transcript byte in the workspace.
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
             $i:expr) => {{
                let t1 = $h
                    .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
                    .wrapping_add(($e & $f) ^ (!$e & $g))
                    .wrapping_add(K[$i])
                    .wrapping_add(w[$i]);
                let t2 = ($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
                    .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(t2);
            }};
        }
        macro_rules! round8 {
            ($base:expr) => {
                round!(a, b, c, d, e, f, g, h, $base);
                round!(h, a, b, c, d, e, f, g, $base + 1);
                round!(g, h, a, b, c, d, e, f, $base + 2);
                round!(f, g, h, a, b, c, d, e, $base + 3);
                round!(e, f, g, h, a, b, c, d, $base + 4);
                round!(d, e, f, g, h, a, b, c, $base + 5);
                round!(c, d, e, f, g, h, a, b, $base + 6);
                round!(b, c, d, e, f, g, h, a, $base + 7);
            };
        }
        round8!(0);
        round8!(8);
        round8!(16);
        round8!(24);
        round8!(32);
        round8!(40);
        round8!(48);
        round8!(56);
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// SHA-NI hardware compression, used when CPUID reports support.
///
/// Every byte the workspace hashes — PRF, HMAC, DRBG, transcripts, ticket
/// MACs — funnels through one compression function, so this is the single
/// highest-leverage hardware hook. The instruction sequence is the
/// standard Intel `sha256rnds2`/`sha256msg1`/`sha256msg2` ladder; output
/// is bit-identical to [`Sha256::compress_scalar`] (the FIPS vectors below
/// exercise whichever path the host selects, and
/// `ni_and_scalar_paths_agree` pins them against each other).
#[cfg(target_arch = "x86_64")]
mod ni {
    // The sanctioned unsafe exception (see lib.rs): scoped, behind runtime
    // feature detection, with safety comments.
    #![allow(unsafe_code)]

    use super::{BLOCK_LEN, K};
    use core::arch::x86_64::*;

    /// Does this CPU have the SHA extensions (plus the SSSE3/SSE4.1 the
    /// shuffle/blend steps need)? Detected once per process.
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("sha")
                && std::arch::is_x86_feature_detected!("ssse3")
                && std::arch::is_x86_feature_detected!("sse4.1")
        })
    }

    pub fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
        // SAFETY: `available()` gates every call site on CPUID.
        unsafe { compress_block(state, block) }
    }

    /// Four rounds: add the round constants to the schedule quad, then two
    /// `sha256rnds2` (each consumes two constants from lanes 0-1).
    macro_rules! rounds4 {
        ($abef:ident, $cdgh:ident, $wk:expr, $i:expr) => {{
            let kv = _mm_set_epi32(
                K[4 * $i + 3] as i32,
                K[4 * $i + 2] as i32,
                K[4 * $i + 1] as i32,
                K[4 * $i] as i32,
            );
            let t = _mm_add_epi32($wk, kv);
            $cdgh = _mm_sha256rnds2_epu32($cdgh, $abef, t);
            let t_hi = _mm_shuffle_epi32(t, 0x0E);
            $abef = _mm_sha256rnds2_epu32($abef, $cdgh, t_hi);
        }};
    }

    /// Extend the message schedule by one quad (w[i..i+4] from the four
    /// preceding quads) and run its four rounds.
    macro_rules! schedule_rounds4 {
        ($abef:ident, $cdgh:ident,
         $w0:ident, $w1:ident, $w2:ident, $w3:ident => $w4:ident, $i:expr) => {{
            let t1 = _mm_sha256msg1_epu32($w0, $w1);
            let t2 = _mm_alignr_epi8($w3, $w2, 4);
            $w4 = _mm_sha256msg2_epu32(_mm_add_epi32(t1, t2), $w3);
            rounds4!($abef, $cdgh, $w4, $i);
        }};
    }

    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    unsafe fn compress_block(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
        // Big-endian word load mask for the message shuffle.
        let be_mask = _mm_set_epi64x(0x0C0D_0E0F_0809_0A0B, 0x0405_0607_0001_0203);

        // Repack (a,b,c,d),(e,f,g,h) into the ABEF/CDGH lane order the
        // sha256rnds2 instruction works on.
        let abcd = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let efgh = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        let cdab = _mm_shuffle_epi32(abcd, 0xB1);
        let hgfe = _mm_shuffle_epi32(efgh, 0x1B);
        let mut abef = _mm_alignr_epi8(cdab, hgfe, 8);
        let mut cdgh = _mm_blend_epi16(hgfe, cdab, 0xF0);
        let abef_in = abef;
        let cdgh_in = cdgh;

        let load = |off: usize| {
            // SAFETY: off + 16 <= BLOCK_LEN at every call below, so the
            // unaligned load stays inside the borrowed block; the sha/sse
            // `target_feature` set is vouched for by the caller's CPUID
            // check via `available()`.
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(off) as *const __m128i),
                be_mask,
            )
        };
        let mut w0 = load(0);
        let mut w1 = load(16);
        let mut w2 = load(32);
        let mut w3 = load(48);
        let mut w4;

        rounds4!(abef, cdgh, w0, 0);
        rounds4!(abef, cdgh, w1, 1);
        rounds4!(abef, cdgh, w2, 2);
        rounds4!(abef, cdgh, w3, 3);
        schedule_rounds4!(abef, cdgh, w0, w1, w2, w3 => w4, 4);
        schedule_rounds4!(abef, cdgh, w1, w2, w3, w4 => w0, 5);
        schedule_rounds4!(abef, cdgh, w2, w3, w4, w0 => w1, 6);
        schedule_rounds4!(abef, cdgh, w3, w4, w0, w1 => w2, 7);
        schedule_rounds4!(abef, cdgh, w4, w0, w1, w2 => w3, 8);
        schedule_rounds4!(abef, cdgh, w0, w1, w2, w3 => w4, 9);
        schedule_rounds4!(abef, cdgh, w1, w2, w3, w4 => w0, 10);
        schedule_rounds4!(abef, cdgh, w2, w3, w4, w0 => w1, 11);
        schedule_rounds4!(abef, cdgh, w3, w4, w0, w1 => w2, 12);
        schedule_rounds4!(abef, cdgh, w4, w0, w1, w2 => w3, 13);
        schedule_rounds4!(abef, cdgh, w0, w1, w2, w3 => w4, 14);
        schedule_rounds4!(abef, cdgh, w1, w2, w3, w4 => w0, 15);
        let _ = w0;

        abef = _mm_add_epi32(abef, abef_in);
        cdgh = _mm_add_epi32(cdgh, cdgh_in);

        // Unpack ABEF/CDGH back to (a,b,c,d),(e,f,g,h).
        let feba = _mm_shuffle_epi32(abef, 0x1B);
        let dchg = _mm_shuffle_epi32(cdgh, 0xB1);
        let abcd_out = _mm_blend_epi16(feba, dchg, 0xF0);
        let efgh_out = _mm_alignr_epi8(dchg, feba, 8);
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, abcd_out);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, efgh_out);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    /// Digest computed strictly through the scalar compression function,
    /// padding done by hand — bypasses the hardware dispatch entirely.
    fn scalar_only_digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut padded = data.to_vec();
        padded.push(0x80);
        while padded.len() % BLOCK_LEN != 56 {
            padded.push(0);
        }
        padded.extend_from_slice(&((data.len() as u64) * 8).to_be_bytes());
        let mut h = Sha256::new();
        for block in padded.chunks_exact(BLOCK_LEN) {
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            h.compress_scalar(&b);
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in h.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    #[test]
    fn hardware_and_scalar_paths_agree() {
        // Every block-boundary crossing and varied bit patterns:
        // deterministic pseudo-random bytes, lengths 0..=257. On hosts
        // without SHA extensions this degenerates to scalar-vs-scalar.
        let mut byte = 7u8;
        for len in 0..=257usize {
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    byte = byte.wrapping_mul(167).wrapping_add(13);
                    byte
                })
                .collect();
            assert_eq!(scalar_only_digest(&data), sha256(&data), "len {len}");
        }
    }

    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_two_block() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_splits() {
        let msg: Vec<u8> = (0..200u8).collect();
        let want = sha256(&msg);
        for split in 0..msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finish(), want, "split at {split}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        // Messages of length 55, 56, 63, 64, 65 exercise both padding paths.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let msg = vec![0x5au8; len];
            let d1 = sha256(&msg);
            let mut h = Sha256::new();
            for byte in &msg {
                h.update(std::slice::from_ref(byte));
            }
            assert_eq!(h.finish(), d1, "len {len}");
        }
    }
}
