//! Best-effort zeroization of key material.
//!
//! The study's threat model (paper §2) is an adversary who records traffic
//! and *later* compromises a server: any key material still readable in
//! memory — freed or not — extends the compromise window. Every
//! secret-bearing type in the workspace therefore wipes itself on drop,
//! enforced by the `ts-lint` `missing-wipe` rule.
//!
//! [`wipe_bytes`] writes zeros through [`core::ptr::write_volatile`] and
//! fences the compiler afterwards, so the stores cannot be elided as
//! dead-before-free. This is the same construction the `zeroize` crate
//! uses; it does not defend against OS paging or hardware remanence, which
//! are out of scope here.

use core::sync::atomic::{compiler_fence, Ordering};

/// Overwrite a byte buffer with zeros through volatile stores.
// SAFETY-scoped exception to the crate-wide `deny(unsafe_code)`: see the
// crate docs. The pointer writes cover exactly `buf.len()` bytes of a live
// unique borrow, so they are in-bounds, aligned (u8), and race-free.
#[allow(unsafe_code)]
pub fn wipe_bytes(buf: &mut [u8]) {
    let ptr = buf.as_mut_ptr();
    for i in 0..buf.len() {
        // SAFETY: `i < buf.len()`, so `ptr.add(i)` is within the unique
        // borrow; volatile keeps the store observable.
        unsafe { core::ptr::write_volatile(ptr.add(i), 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

/// Overwrite a `u32` buffer with zeros through volatile stores (bignum
/// limbs, hash state words).
#[allow(unsafe_code)]
pub fn wipe_u32s(buf: &mut [u32]) {
    let ptr = buf.as_mut_ptr();
    for i in 0..buf.len() {
        // SAFETY: as in `wipe_bytes`; u32 stores through a unique borrow.
        unsafe { core::ptr::write_volatile(ptr.add(i), 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

/// Overwrite a `u64` buffer with zeros through volatile stores (bignum
/// limbs after the u64-limb migration, CRT exponents).
#[allow(unsafe_code)]
pub fn wipe_u64s(buf: &mut [u64]) {
    let ptr = buf.as_mut_ptr();
    for i in 0..buf.len() {
        // SAFETY: as in `wipe_bytes`; u64 stores through a unique borrow.
        unsafe { core::ptr::write_volatile(ptr.add(i), 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

/// Types that can scrub their secret contents in place.
///
/// Implementors should wipe every byte of key material they own and leave
/// the value in a harmless (all-zero / empty) state. Containers delegate to
/// their fields. `wipe` is idempotent.
///
/// Implementing `Wipe` does not wipe automatically — pair it with a `Drop`
/// impl (`fn drop(&mut self) { self.wipe() }`) unless every field already
/// wipes itself on drop.
pub trait Wipe {
    /// Zero all secret material held by `self`.
    fn wipe(&mut self);
}

impl Wipe for [u8] {
    fn wipe(&mut self) {
        wipe_bytes(self);
    }
}

impl<const N: usize> Wipe for [u8; N] {
    fn wipe(&mut self) {
        wipe_bytes(self);
    }
}

impl Wipe for Vec<u8> {
    /// Zeros the *entire capacity* currently spanned by `len`, then
    /// truncates. Bytes beyond `len` from earlier truncations are the
    /// caller's responsibility (wipe before truncating).
    fn wipe(&mut self) {
        wipe_bytes(self.as_mut_slice());
        self.clear();
    }
}

impl<T: Wipe> Wipe for Option<T> {
    fn wipe(&mut self) {
        if let Some(inner) = self.as_mut() {
            inner.wipe();
        }
    }
}

impl<T: Wipe> Wipe for Vec<T> {
    fn wipe(&mut self) {
        for item in self.iter_mut() {
            item.wipe();
        }
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wipes_arrays_and_vecs() {
        let mut a = [0xAB_u8; 48];
        a.wipe();
        assert_eq!(a, [0u8; 48]);

        let mut v = vec![0xCD_u8; 33];
        let ptr = v.as_ptr();
        v.wipe();
        assert!(v.is_empty());
        // The backing store was zeroed before the truncation. Reading via
        // the retained capacity is safe through the vec itself:
        v.resize(33, 0);
        assert_eq!(v.as_ptr(), ptr, "wipe must not reallocate");
        assert!(v.iter().all(|&b| b == 0));
    }

    #[test]
    fn wipes_u32_words() {
        let mut w = [0xDEADBEEF_u32; 8];
        wipe_u32s(&mut w);
        assert_eq!(w, [0u32; 8]);
    }

    #[test]
    fn wipes_u64_limbs() {
        let mut w = [0xDEADBEEF_CAFEBABE_u64; 8];
        wipe_u64s(&mut w);
        assert_eq!(w, [0u64; 8]);
    }

    #[test]
    fn wipes_through_option_and_nested_vec() {
        let mut o = Some([0xFF_u8; 16]);
        o.wipe();
        assert_eq!(o, Some([0u8; 16]));

        let mut vv: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![4, 5]];
        vv.wipe();
        assert!(vv.is_empty());
    }

    #[test]
    fn wipe_is_idempotent() {
        let mut a = [7u8; 4];
        a.wipe();
        a.wipe();
        assert_eq!(a, [0u8; 4]);
    }
}
