//! X25519 elliptic-curve Diffie-Hellman (RFC 7748).
//!
//! The ECDHE side of the study. Curve25519 is implemented with a
//! Montgomery ladder over GF(2^255 - 19) using ten 26/25-bit limbs packed
//! in `u64`s (the classic "ref10"-style radix-2^25.5 representation).
//! Pinned to the RFC 7748 §5.2 test vectors and the iterated-ladder vector.

/// Length of scalars and public values.
pub const KEY_LEN: usize = 32;

/// Field element in GF(2^255 - 19): ten limbs, radix 2^25.5.
#[derive(Clone, Copy)]
struct Fe([i64; 10]);

impl Fe {
    const ZERO: Fe = Fe([0; 10]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0, 0, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        // Little-endian; top bit masked per RFC 7748.
        let load3 = |b: &[u8]| -> i64 { b[0] as i64 | (b[1] as i64) << 8 | (b[2] as i64) << 16 };
        let load4 = |b: &[u8]| -> i64 { load3(b) | (b[3] as i64) << 24 };
        let mut h = [0i64; 10];
        h[0] = load4(&bytes[0..4]) & 0x3ffffff;
        h[1] = (load4(&bytes[3..7]) >> 2) & 0x1ffffff;
        h[2] = (load4(&bytes[6..10]) >> 3) & 0x3ffffff;
        h[3] = (load4(&bytes[9..13]) >> 5) & 0x1ffffff;
        h[4] = (load4(&bytes[12..16]) >> 6) & 0x3ffffff;
        h[5] = load4(&bytes[16..20]) & 0x1ffffff;
        h[6] = (load4(&bytes[19..23]) >> 1) & 0x3ffffff;
        h[7] = (load4(&bytes[22..26]) >> 3) & 0x1ffffff;
        h[8] = (load4(&bytes[25..29]) >> 4) & 0x3ffffff;
        h[9] = (load4(&bytes[28..32]) >> 6) & 0x1ffffff; // top bit dropped
        Fe(h)
    }

    fn to_bytes(mut self) -> [u8; 32] {
        self = self.carry();
        // Reduce fully mod 2^255 - 19.
        let mut h = self.0;
        // q = floor(h / (2^255 - 19)) ∈ {0, 1}; compute via adding 19 and
        // seeing if it overflows 2^255.
        let mut q = (19 * h[9] + (1 << 24)) >> 25;
        for i in 0..10 {
            let shift = if i % 2 == 0 { 26 } else { 25 };
            q = (h[i] + q) >> shift;
        }
        h[0] += 19 * q;
        // Carry chain clearing each limb to canonical range.
        for i in 0..9 {
            let shift = if i % 2 == 0 { 26 } else { 25 };
            let carry = h[i] >> shift;
            h[i + 1] += carry;
            h[i] -= carry << shift;
        }
        let carry = h[9] >> 25;
        h[9] -= carry << 25;
        // h is now canonical; pack little-endian.
        let mut out = [0u8; 32];
        let mut acc: u64 = 0;
        let mut acc_bits = 0;
        let mut idx = 0;
        for i in 0..10 {
            let bits = if i % 2 == 0 { 26 } else { 25 };
            acc |= (h[i] as u64) << acc_bits;
            acc_bits += bits;
            while acc_bits >= 8 {
                out[idx] = acc as u8;
                idx += 1;
                acc >>= 8;
                acc_bits -= 8;
            }
        }
        if idx < 32 {
            out[idx] = acc as u8;
        }
        out
    }

    fn add(&self, other: &Fe) -> Fe {
        let mut out = [0i64; 10];
        for i in 0..10 {
            out[i] = self.0[i] + other.0[i];
        }
        Fe(out)
    }

    fn sub(&self, other: &Fe) -> Fe {
        // Add a multiple of p before subtracting to keep limbs positive.
        const P2: [i64; 10] = [
            0x7ffffda, 0x3fffffe, 0x7fffffe, 0x3fffffe, 0x7fffffe, 0x3fffffe, 0x7fffffe, 0x3fffffe,
            0x7fffffe, 0x3fffffe,
        ]; // 2p in this radix
        let mut out = [0i64; 10];
        for i in 0..10 {
            out[i] = self.0[i] + P2[i] - other.0[i];
        }
        Fe(out).carry()
    }

    fn carry(mut self) -> Fe {
        for _ in 0..2 {
            for i in 0..9 {
                let shift = if i % 2 == 0 { 26 } else { 25 };
                let c = self.0[i] >> shift;
                self.0[i] -= c << shift;
                self.0[i + 1] += c;
            }
            let c = self.0[9] >> 25;
            self.0[9] -= c << 25;
            self.0[0] += 19 * c;
        }
        self
    }

    fn mul(&self, other: &Fe) -> Fe {
        let a = &self.0;
        let b = &other.0;
        // Products with the 2^25.5 radix corrections: odd*odd limb pairs
        // pick up a factor of 2; wraparound terms pick up 19.
        let mut t = [0i128; 19];
        for i in 0..10 {
            for j in 0..10 {
                let mut m = a[i] as i128 * b[j] as i128;
                if i % 2 == 1 && j % 2 == 1 {
                    m *= 2;
                }
                t[i + j] += m;
            }
        }
        // Fold t[10..19] back with factor 19 (since 2^255 ≡ 19).
        let mut h = [0i128; 10];
        for i in 0..10 {
            h[i] = t[i];
        }
        for i in 10..19 {
            h[i - 10] += 19 * t[i];
        }
        // Carry to bring limbs into range.
        let mut out = [0i64; 10];
        let mut carry: i128 = 0;
        for i in 0..10 {
            let shift = if i % 2 == 0 { 26 } else { 25 };
            let v = h[i] + carry;
            carry = v >> shift;
            out[i] = (v - (carry << shift)) as i64;
        }
        // carry * 2^255 ≡ carry * 19
        let mut fe = Fe(out);
        fe.0[0] += (carry * 19) as i64;
        fe.carry()
    }

    fn square(&self) -> Fe {
        self.mul(self)
    }

    fn mul_small(&self, k: i64) -> Fe {
        let mut out = [0i64; 10];
        for i in 0..10 {
            out[i] = self.0[i] * k;
        }
        Fe(out).carry()
    }

    /// Inversion via Fermat: a^(p-2).
    fn invert(&self) -> Fe {
        let mut result = Fe::ONE;
        let mut base = *self;
        // p - 2 = 2^255 - 21, binary: 253 ones, then 01011.
        // Simple square-and-multiply over the fixed exponent bits.
        let exp_bits: Vec<bool> = {
            // Little-endian bits of 2^255 - 21.
            // 2^255 - 21 = (2^255 - 19) - 2 ... compute directly:
            // binary of p-2: bit 255 unset; bits 254..5 set? Use bignum-free
            // approach: p - 2 = 2^255 - 21; -21 mod 2^255 flips low bits.
            // 21 = 10101b. 2^255 - 21 = (2^255 - 32) + 11 =
            // 0b0111...1101011 with 250 leading ones.
            let mut bits = vec![true; 255];
            // low 5 bits of (2^255 - 21): since 2^255 ≡ 0 mod 32, low 5
            // bits are (32 - 21) = 11 = 01011.
            bits[0] = true;
            bits[1] = true;
            bits[2] = false;
            bits[3] = true;
            bits[4] = false;
            bits
        };
        for &bit in exp_bits.iter() {
            if bit {
                result = result.mul(&base);
            }
            base = base.square();
        }
        result
    }
}

fn cswap(swap: u8, a: &mut Fe, b: &mut Fe) {
    let mask = -(swap as i64);
    for i in 0..10 {
        let x = mask & (a.0[i] ^ b.0[i]);
        a.0[i] ^= x;
        b.0[i] ^= x;
    }
}

/// Clamp a 32-byte scalar per RFC 7748 §5.
pub fn clamp_scalar(scalar: &mut [u8; 32]) {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
}

/// The X25519 function: scalar multiplication on Curve25519.
pub fn x25519(scalar: &[u8; 32], point: &[u8; 32]) -> [u8; 32] {
    let mut k = *scalar;
    clamp_scalar(&mut k);
    let x1 = Fe::from_bytes(point);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u8;
    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1;
        swap ^= k_t;
        cswap(swap, &mut x2, &mut x3);
        cswap(swap, &mut z2, &mut z3);
        swap = k_t;
        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).carry().square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&e.mul_small(121665)).carry());
    }
    cswap(swap, &mut x2, &mut x3);
    cswap(swap, &mut z2, &mut z3);
    x2.mul(&z2.invert()).to_bytes()
}

/// The canonical base point (u = 9).
pub const BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Compute the public key for a secret scalar.
pub fn public_key(secret: &[u8; 32]) -> [u8; 32] {
    x25519(secret, &BASEPOINT)
}

/// An X25519 key pair.
// ctlint: secret
#[derive(Clone)]
pub struct X25519KeyPair {
    /// The (clamped-on-use) secret scalar `d_A`.
    pub secret: [u8; 32],
    /// The public point `d_A · G`.
    // ctlint: public
    pub public: [u8; 32],
}

impl std::fmt::Debug for X25519KeyPair {
    /// Redacting: the scalar never reaches a formatter.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "X25519KeyPair(secret=<redacted>)")
    }
}

impl crate::wipe::Wipe for X25519KeyPair {
    fn wipe(&mut self) {
        crate::wipe::wipe_bytes(&mut self.secret);
    }
}

impl Drop for X25519KeyPair {
    /// Cached ECDHE scalars are the paper's headline exposure; scrub on
    /// eviction from the reuse pool (or any other drop).
    fn drop(&mut self) {
        use crate::wipe::Wipe;
        self.wipe();
    }
}

impl X25519KeyPair {
    /// Generate from a DRBG.
    pub fn generate(rng: &mut crate::drbg::HmacDrbg) -> Self {
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        let public = public_key(&secret);
        X25519KeyPair { secret, public }
    }

    /// Shared secret with a peer public value.
    pub fn shared_secret(&self, peer_public: &[u8; 32]) -> [u8; 32] {
        x25519(&self.secret, peer_public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(&scalar, &point);
        assert_eq!(
            hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = x25519(&scalar, &point);
        assert_eq!(
            hex(&out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    // RFC 7748 §6.1 Diffie-Hellman vector.
    #[test]
    fn rfc7748_dh_vector() {
        let alice_sk = unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_sk = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pk = public_key(&alice_sk);
        assert_eq!(
            hex(&alice_pk),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        let bob_pk = public_key(&bob_sk);
        assert_eq!(
            hex(&bob_pk),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let k1 = x25519(&alice_sk, &bob_pk);
        let k2 = x25519(&bob_sk, &alice_pk);
        assert_eq!(k1, k2);
        assert_eq!(
            hex(&k1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    // RFC 7748 §5.2 iterated vectors: 1 and 1000 iterations.
    #[test]
    fn rfc7748_iterated() {
        let once = x25519(&BASEPOINT, &BASEPOINT);
        assert_eq!(
            hex(&once),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
        let mut k = BASEPOINT;
        let mut u = BASEPOINT;
        for _ in 0..1000 {
            let r = x25519(&k, &u);
            u = k;
            k = r;
        }
        assert_eq!(
            hex(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    #[test]
    fn keypair_exchange_agrees() {
        let mut rng = crate::drbg::HmacDrbg::new(b"x25519");
        let a = X25519KeyPair::generate(&mut rng);
        let b = X25519KeyPair::generate(&mut rng);
        assert_eq!(a.shared_secret(&b.public), b.shared_secret(&a.public));
        assert_ne!(a.public, b.public);
    }

    #[test]
    fn clamping_makes_cofactor_safe() {
        let mut s = [0xffu8; 32];
        clamp_scalar(&mut s);
        assert_eq!(s[0] & 7, 0);
        assert_eq!(s[31] & 0x80, 0);
        assert_eq!(s[31] & 0x40, 0x40);
    }

    #[test]
    fn fe_roundtrip() {
        // Canonical field elements round-trip through from_bytes/to_bytes.
        let mut rng = crate::drbg::HmacDrbg::new(b"fe");
        for _ in 0..20 {
            let mut b = [0u8; 32];
            rng.fill_bytes(&mut b);
            b[31] &= 0x7f; // < 2^255
                           // Values ≥ p don't round-trip (they reduce); skip unlikely case
                           // by masking the top byte down further.
            b[31] &= 0x3f;
            let fe = Fe::from_bytes(&b);
            assert_eq!(fe.to_bytes(), b);
        }
    }
}
