//! X25519 elliptic-curve Diffie-Hellman (RFC 7748).
//!
//! The ECDHE side of the study. Curve25519 is implemented with a
//! Montgomery ladder over GF(2^255 - 19) using five 51-bit limbs in `u64`s
//! with `u128` products (the "donna-64" representation) — half the limb
//! count and a quarter of the inner-loop multiplies of the earlier
//! radix-2^25.5 form, with no data-dependent branches in the limb loops.
//! Pinned to the RFC 7748 §5.2 test vectors and the iterated-ladder vector.
//!
//! Limb-bound discipline (the invariants the carry chains rely on):
//! reduced elements have limbs < 2^51 + ε; [`Fe::add`] and [`Fe::sub`]
//! emit limbs < 2^53 without re-carrying; [`Fe::mul`]/[`Fe::square`]
//! accept limbs < 2^53 and emit reduced elements.

/// Length of scalars and public values.
pub const KEY_LEN: usize = 32;

/// 51-bit limb mask.
const MASK: u64 = (1 << 51) - 1;

/// Field element in GF(2^255 - 19): five limbs, radix 2^51.
#[derive(Clone, Copy)]
struct Fe([u64; 5]);

/// Full 64×64→128 product.
#[inline(always)]
fn m(a: u64, b: u64) -> u128 {
    a as u128 * b as u128
}

/// Carry-reduce the five wide column sums of a product into a reduced
/// element, folding the top carry back through 2^255 ≡ 19.
#[inline(always)]
fn carry_wide(r: [u128; 5]) -> Fe {
    let mut out = [0u64; 5];
    let mut c: u64 = 0;
    for i in 0..5 {
        let v = r[i] + c as u128;
        out[i] = (v as u64) & MASK;
        c = (v >> 51) as u64;
    }
    let t0 = out[0] + c * 19;
    out[0] = t0 & MASK;
    out[1] += t0 >> 51;
    Fe(out)
}

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        // Little-endian; top bit masked per RFC 7748.
        let load = |b: &[u8]| -> u64 { u64::from_le_bytes(b.try_into().expect("8 bytes")) };
        Fe([
            load(&bytes[0..8]) & MASK,
            (load(&bytes[6..14]) >> 3) & MASK,
            (load(&bytes[12..20]) >> 6) & MASK,
            (load(&bytes[19..27]) >> 1) & MASK,
            (load(&bytes[24..32]) >> 12) & MASK, // top bit dropped
        ])
    }

    fn to_bytes(self) -> [u8; 32] {
        // Bring limbs near-canonical, then subtract p exactly once if the
        // value is ≥ p: q is the carry out of (value + 19) at bit 255.
        let mut t = self.carry().0;
        let mut q = (t[0] + 19) >> 51;
        q = (t[1] + q) >> 51;
        q = (t[2] + q) >> 51;
        q = (t[3] + q) >> 51;
        q = (t[4] + q) >> 51;
        t[0] += 19 * q;
        for i in 0..4 {
            let c = t[i] >> 51;
            t[i] &= MASK;
            t[i + 1] += c;
        }
        t[4] &= MASK;
        // t is now canonical; pack 5×51 bits little-endian.
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0;
        let mut idx = 0;
        for &limb in t.iter() {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 {
                out[idx] = acc as u8;
                idx += 1;
                acc >>= 8;
                acc_bits -= 8;
            }
        }
        if idx < 32 {
            out[idx] = acc as u8;
        }
        out
    }

    fn add(&self, other: &Fe) -> Fe {
        let mut out = [0u64; 5];
        for i in 0..5 {
            out[i] = self.0[i] + other.0[i];
        }
        Fe(out)
    }

    fn sub(&self, other: &Fe) -> Fe {
        // Add 2p before subtracting to keep limbs non-negative; consumers
        // tolerate the < 2^53 limbs without an extra carry pass.
        const P2: [u64; 5] = [
            0xfffffffffffda, // 2^52 - 38
            0xffffffffffffe, // 2^52 - 2
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
        ]; // 2p in this radix
        let mut out = [0u64; 5];
        for i in 0..5 {
            out[i] = self.0[i] + P2[i] - other.0[i];
        }
        Fe(out)
    }

    fn carry(mut self) -> Fe {
        for _ in 0..2 {
            for i in 0..4 {
                let c = self.0[i] >> 51;
                self.0[i] &= MASK;
                self.0[i + 1] += c;
            }
            let c = self.0[4] >> 51;
            self.0[4] &= MASK;
            self.0[0] += 19 * c;
        }
        self
    }

    fn mul(&self, other: &Fe) -> Fe {
        let [a0, a1, a2, a3, a4] = self.0;
        let [b0, b1, b2, b3, b4] = other.0;
        // Wraparound columns pick up the 2^255 ≡ 19 factor; pre-scaling
        // the ≤ 2^53 operands by 19 stays comfortably inside u64.
        let b1_19 = b1 * 19;
        let b2_19 = b2 * 19;
        let b3_19 = b3 * 19;
        let b4_19 = b4 * 19;
        carry_wide([
            m(a0, b0) + m(a1, b4_19) + m(a2, b3_19) + m(a3, b2_19) + m(a4, b1_19),
            m(a0, b1) + m(a1, b0) + m(a2, b4_19) + m(a3, b3_19) + m(a4, b2_19),
            m(a0, b2) + m(a1, b1) + m(a2, b0) + m(a3, b4_19) + m(a4, b3_19),
            m(a0, b3) + m(a1, b2) + m(a2, b1) + m(a3, b0) + m(a4, b4_19),
            m(a0, b4) + m(a1, b3) + m(a2, b2) + m(a3, b1) + m(a4, b0),
        ])
    }

    fn square(&self) -> Fe {
        let [a0, a1, a2, a3, a4] = self.0;
        let a0_2 = a0 * 2;
        let a1_2 = a1 * 2;
        let a1_38 = a1 * 38;
        let a2_38 = a2 * 38;
        let a3_38 = a3 * 38;
        let a3_19 = a3 * 19;
        let a4_19 = a4 * 19;
        carry_wide([
            m(a0, a0) + m(a1_38, a4) + m(a2_38, a3),
            m(a0_2, a1) + m(a2_38, a4) + m(a3_19, a3),
            m(a0_2, a2) + m(a1, a1) + m(a3_38, a4),
            m(a0_2, a3) + m(a1_2, a2) + m(a4_19, a4),
            m(a0_2, a4) + m(a1_2, a3) + m(a2, a2),
        ])
    }

    fn mul_small(&self, k: u64) -> Fe {
        let mut out = [0u64; 5];
        let mut c: u128 = 0;
        for i in 0..5 {
            let v = m(self.0[i], k) + c;
            out[i] = (v as u64) & MASK;
            c = v >> 51;
        }
        let t0 = out[0] as u128 + c * 19;
        out[0] = (t0 as u64) & MASK;
        out[1] += (t0 >> 51) as u64;
        Fe(out)
    }

    /// Inversion via Fermat: a^(p-2).
    fn invert(&self) -> Fe {
        let mut result = Fe::ONE;
        let mut base = *self;
        // p - 2 = 2^255 - 21: little-endian bits are 11010 then 250 ones
        // (2^255 ≡ 0 mod 32, so the low 5 bits are 32 - 21 = 01011b).
        for i in 0..255 {
            if i != 2 && i != 4 {
                result = result.mul(&base);
            }
            base = base.square();
        }
        result
    }
}

fn cswap(swap: u8, a: &mut Fe, b: &mut Fe) {
    let mask = (swap as u64).wrapping_neg();
    for i in 0..5 {
        let x = mask & (a.0[i] ^ b.0[i]);
        a.0[i] ^= x;
        b.0[i] ^= x;
    }
}

/// Clamp a 32-byte scalar per RFC 7748 §5.
pub fn clamp_scalar(scalar: &mut [u8; 32]) {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
}

/// The X25519 function: scalar multiplication on Curve25519.
pub fn x25519(scalar: &[u8; 32], point: &[u8; 32]) -> [u8; 32] {
    let mut k = *scalar;
    clamp_scalar(&mut k);
    let x1 = Fe::from_bytes(point);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u8;
    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1;
        swap ^= k_t;
        cswap(swap, &mut x2, &mut x3);
        cswap(swap, &mut z2, &mut z3);
        swap = k_t;
        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).carry().square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&e.mul_small(121665)).carry());
    }
    cswap(swap, &mut x2, &mut x3);
    cswap(swap, &mut z2, &mut z3);
    x2.mul(&z2.invert()).to_bytes()
}

/// Four independent X25519 operations with their Montgomery ladders
/// interleaved lane-wise.
///
/// Each ladder step runs the same field-op sequence on four independent
/// operand sets, so the four carry chains overlap in the out-of-order
/// core instead of serialising, and the four final inversions collapse
/// into one via Montgomery's batch-inversion trick (one Fermat inversion
/// plus six multiplies instead of four inversions). Produces output
/// bit-identical to four serial [`x25519`] calls — the campaign burst
/// paths rely on that when prefilling ephemeral-key pools.
pub fn x25519_batch4(scalars: &[[u8; 32]; 4], points: &[[u8; 32]; 4]) -> [[u8; 32]; 4] {
    use core::array::from_fn;
    let mut k = *scalars;
    for s in k.iter_mut() {
        clamp_scalar(s);
    }
    let x1: [Fe; 4] = from_fn(|l| Fe::from_bytes(&points[l]));
    let mut x2 = [Fe::ONE; 4];
    let mut z2 = [Fe::ZERO; 4];
    let mut x3 = x1;
    let mut z3 = [Fe::ONE; 4];
    let mut swap = [0u8; 4];
    for t in (0..255).rev() {
        for l in 0..4 {
            let k_t = (k[l][t / 8] >> (t % 8)) & 1;
            swap[l] ^= k_t;
            cswap(swap[l], &mut x2[l], &mut x3[l]);
            cswap(swap[l], &mut z2[l], &mut z3[l]);
            swap[l] = k_t;
        }
        // One ladder step, four lanes abreast (same formulas as x25519).
        let a: [Fe; 4] = from_fn(|l| x2[l].add(&z2[l]));
        let aa: [Fe; 4] = from_fn(|l| a[l].square());
        let b: [Fe; 4] = from_fn(|l| x2[l].sub(&z2[l]));
        let bb: [Fe; 4] = from_fn(|l| b[l].square());
        let e: [Fe; 4] = from_fn(|l| aa[l].sub(&bb[l]));
        let c: [Fe; 4] = from_fn(|l| x3[l].add(&z3[l]));
        let d: [Fe; 4] = from_fn(|l| x3[l].sub(&z3[l]));
        let da: [Fe; 4] = from_fn(|l| d[l].mul(&a[l]));
        let cb: [Fe; 4] = from_fn(|l| c[l].mul(&b[l]));
        x3 = from_fn(|l| da[l].add(&cb[l]).carry().square());
        z3 = from_fn(|l| x1[l].mul(&da[l].sub(&cb[l]).square()));
        x2 = from_fn(|l| aa[l].mul(&bb[l]));
        z2 = from_fn(|l| e[l].mul(&aa[l].add(&e[l].mul_small(121665)).carry()));
    }
    for l in 0..4 {
        cswap(swap[l], &mut x2[l], &mut x3[l]);
        cswap(swap[l], &mut z2[l], &mut z3[l]);
    }
    // Montgomery batch inversion. A zero z2 (degenerate low-order input)
    // would poison the shared prefix products, so zero lanes are swapped
    // for ONE during the chain and forced back to zero after — matching
    // serial x25519, where invert(0) = 0 by Fermat. (The zero check is not
    // constant time; it only triggers for public degenerate inputs.)
    let lane_zero: [bool; 4] = from_fn(|l| z2[l].to_bytes() == [0u8; 32]);
    let safe: [Fe; 4] = from_fn(|l| if lane_zero[l] { Fe::ONE } else { z2[l] });
    let mut prefix = safe;
    for l in 1..4 {
        prefix[l] = prefix[l - 1].mul(&safe[l]);
    }
    let mut inv_acc = prefix[3].invert();
    let mut z2_inv = [Fe::ZERO; 4];
    for l in (1..4).rev() {
        z2_inv[l] = inv_acc.mul(&prefix[l - 1]);
        inv_acc = inv_acc.mul(&safe[l]);
    }
    z2_inv[0] = inv_acc;
    from_fn(|l| {
        if lane_zero[l] {
            [0u8; 32]
        } else {
            x2[l].mul(&z2_inv[l]).to_bytes()
        }
    })
}

/// Compute four public keys at once (the batched ladder over the base
/// point). Bit-identical to four [`public_key`] calls.
pub fn public_key_batch4(secrets: &[[u8; 32]; 4]) -> [[u8; 32]; 4] {
    x25519_batch4(secrets, &[BASEPOINT; 4])
}

/// The canonical base point (u = 9).
pub const BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Compute the public key for a secret scalar.
pub fn public_key(secret: &[u8; 32]) -> [u8; 32] {
    x25519(secret, &BASEPOINT)
}

/// An X25519 key pair.
// ctlint: secret
#[derive(Clone)]
pub struct X25519KeyPair {
    /// The (clamped-on-use) secret scalar `d_A`.
    pub secret: [u8; 32],
    /// The public point `d_A · G`.
    // ctlint: public
    pub public: [u8; 32],
}

impl std::fmt::Debug for X25519KeyPair {
    /// Redacting: the scalar never reaches a formatter.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "X25519KeyPair(secret=<redacted>)")
    }
}

impl crate::wipe::Wipe for X25519KeyPair {
    fn wipe(&mut self) {
        crate::wipe::wipe_bytes(&mut self.secret);
    }
}

impl Drop for X25519KeyPair {
    /// Cached ECDHE scalars are the paper's headline exposure; scrub on
    /// eviction from the reuse pool (or any other drop).
    fn drop(&mut self) {
        use crate::wipe::Wipe;
        self.wipe();
    }
}

impl X25519KeyPair {
    /// Generate from a DRBG.
    pub fn generate(rng: &mut crate::drbg::HmacDrbg) -> Self {
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        let public = public_key(&secret);
        X25519KeyPair { secret, public }
    }

    /// Generate four key pairs at once through the batched ladder.
    ///
    /// Draws the four secrets sequentially — the same DRBG order as four
    /// [`X25519KeyPair::generate`] calls — then derives all four publics
    /// with [`public_key_batch4`], so the resulting pairs are bit-identical
    /// to the serial path. The ephemeral-key pools in `ts-tls` use this to
    /// amortise ladder work across campaign handshake bursts.
    pub fn generate_batch4(rng: &mut crate::drbg::HmacDrbg) -> [Self; 4] {
        let mut secrets = [[0u8; 32]; 4];
        for s in secrets.iter_mut() {
            rng.fill_bytes(s);
        }
        let publics = public_key_batch4(&secrets);
        core::array::from_fn(|l| X25519KeyPair {
            secret: secrets[l],
            public: publics[l],
        })
    }

    /// Shared secret with a peer public value.
    pub fn shared_secret(&self, peer_public: &[u8; 32]) -> [u8; 32] {
        x25519(&self.secret, peer_public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(&scalar, &point);
        assert_eq!(
            hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = x25519(&scalar, &point);
        assert_eq!(
            hex(&out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    // RFC 7748 §6.1 Diffie-Hellman vector.
    #[test]
    fn rfc7748_dh_vector() {
        let alice_sk = unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_sk = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pk = public_key(&alice_sk);
        assert_eq!(
            hex(&alice_pk),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        let bob_pk = public_key(&bob_sk);
        assert_eq!(
            hex(&bob_pk),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let k1 = x25519(&alice_sk, &bob_pk);
        let k2 = x25519(&bob_sk, &alice_pk);
        assert_eq!(k1, k2);
        assert_eq!(
            hex(&k1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    // RFC 7748 §5.2 iterated vectors: 1 and 1000 iterations.
    #[test]
    fn rfc7748_iterated() {
        let once = x25519(&BASEPOINT, &BASEPOINT);
        assert_eq!(
            hex(&once),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
        let mut k = BASEPOINT;
        let mut u = BASEPOINT;
        for _ in 0..1000 {
            let r = x25519(&k, &u);
            u = k;
            k = r;
        }
        assert_eq!(
            hex(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    #[test]
    fn batch4_matches_serial_ladder() {
        // Lanes 0-1: the RFC 7748 §5.2 vectors; lanes 2-3: DRBG-random
        // operands. The batch must agree with four serial calls bit for bit.
        let mut rng = crate::drbg::HmacDrbg::new(b"x25519-batch");
        let mut scalars = [[0u8; 32]; 4];
        let mut points = [[0u8; 32]; 4];
        scalars[0] = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        points[0] = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        scalars[1] = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        points[1] = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        for l in 2..4 {
            rng.fill_bytes(&mut scalars[l]);
            rng.fill_bytes(&mut points[l]);
            points[l][31] &= 0x7f;
        }
        let batched = x25519_batch4(&scalars, &points);
        for l in 0..4 {
            assert_eq!(batched[l], x25519(&scalars[l], &points[l]), "lane {l}");
        }
    }

    #[test]
    fn batch4_handles_degenerate_zero_lane() {
        // Lane 1 feeds the all-zero point (z2 ends up zero). Its zero
        // output must not poison the batch inversion for the other lanes.
        let mut scalars = [[0u8; 32]; 4];
        let mut points = [[9u8; 32]; 4];
        for (l, s) in scalars.iter_mut().enumerate() {
            s[0] = 40 + l as u8;
            s[31] = 1;
        }
        points[1] = [0u8; 32];
        for p in points.iter_mut() {
            p[31] &= 0x7f;
        }
        let batched = x25519_batch4(&scalars, &points);
        for l in 0..4 {
            assert_eq!(batched[l], x25519(&scalars[l], &points[l]), "lane {l}");
        }
        assert_eq!(batched[1], [0u8; 32]);
    }

    #[test]
    fn generate_batch4_matches_serial_draw_order() {
        let mut serial_rng = crate::drbg::HmacDrbg::new(b"pool");
        let mut batch_rng = crate::drbg::HmacDrbg::new(b"pool");
        let serial: Vec<X25519KeyPair> = (0..4)
            .map(|_| X25519KeyPair::generate(&mut serial_rng))
            .collect();
        let batched = X25519KeyPair::generate_batch4(&mut batch_rng);
        for l in 0..4 {
            assert_eq!(batched[l].secret, serial[l].secret, "secret lane {l}");
            assert_eq!(batched[l].public, serial[l].public, "public lane {l}");
        }
    }

    #[test]
    fn keypair_exchange_agrees() {
        let mut rng = crate::drbg::HmacDrbg::new(b"x25519");
        let a = X25519KeyPair::generate(&mut rng);
        let b = X25519KeyPair::generate(&mut rng);
        assert_eq!(a.shared_secret(&b.public), b.shared_secret(&a.public));
        assert_ne!(a.public, b.public);
    }

    #[test]
    fn clamping_makes_cofactor_safe() {
        let mut s = [0xffu8; 32];
        clamp_scalar(&mut s);
        assert_eq!(s[0] & 7, 0);
        assert_eq!(s[31] & 0x80, 0);
        assert_eq!(s[31] & 0x40, 0x40);
    }

    #[test]
    fn fe_roundtrip() {
        // Canonical field elements round-trip through from_bytes/to_bytes.
        let mut rng = crate::drbg::HmacDrbg::new(b"fe");
        for _ in 0..20 {
            let mut b = [0u8; 32];
            rng.fill_bytes(&mut b);
            b[31] &= 0x7f; // < 2^255
                           // Values ≥ p don't round-trip (they reduce); skip unlikely case
                           // by masking the top byte down further.
            b[31] &= 0x3f;
            let fe = Fe::from_bytes(&b);
            assert_eq!(fe.to_bytes(), b);
        }
    }
}
