//! Randomized cross-checks for the u64-limb multiprecision rewrite.
//!
//! Every optimized path (Montgomery CIOS multiplication, dedicated
//! squaring, fixed-window exponentiation, byte codecs, Knuth division) is
//! pinned against an independent reference computed from the slow,
//! obviously-correct operations. Operands come from a seeded [`HmacDrbg`]
//! so failures reproduce exactly.

use ts_crypto::bignum::{Montgomery, Ub};
use ts_crypto::drbg::HmacDrbg;

fn random_ub(rng: &mut HmacDrbg, max_bytes: usize) -> Ub {
    let len = (rng.next_u64() as usize % max_bytes) + 1;
    let mut bytes = vec![0u8; len];
    rng.fill_bytes(&mut bytes);
    Ub::from_bytes_be(&bytes)
}

/// A random odd modulus of at least two bytes (Montgomery requires odd).
fn random_odd_modulus(rng: &mut HmacDrbg, max_bytes: usize) -> Ub {
    loop {
        let mut bytes = vec![0u8; (rng.next_u64() as usize % max_bytes).max(2)];
        rng.fill_bytes(&mut bytes);
        bytes[0] |= 0x80; // full bit length
        let last = bytes.len() - 1;
        bytes[last] |= 1; // odd
        let n = Ub::from_bytes_be(&bytes);
        if n.cmp_to(&Ub::one()) == std::cmp::Ordering::Greater {
            return n;
        }
    }
}

/// Bit-by-bit square-and-multiply via `mul_mod` — the reference the
/// windowed Montgomery ladder must match.
fn modpow_reference(base: &Ub, exp: &Ub, modulus: &Ub) -> Ub {
    let mut result = Ub::one().rem(modulus);
    let mut acc = base.rem(modulus);
    for i in 0..exp.bit_len() {
        if exp.bit(i) {
            result = result.mul_mod(&acc, modulus);
        }
        acc = acc.mul_mod(&acc, modulus);
    }
    result
}

#[test]
fn mul_mod_matches_mul_then_rem() {
    let mut rng = HmacDrbg::new(b"crosscheck-mulmod");
    for _ in 0..200 {
        let n = random_odd_modulus(&mut rng, 48);
        let a = random_ub(&mut rng, 64).rem(&n);
        let b = random_ub(&mut rng, 64).rem(&n);
        assert_eq!(
            a.mul_mod(&b, &n).to_hex(),
            a.mul(&b).rem(&n).to_hex(),
            "a={} b={} n={}",
            a.to_hex(),
            b.to_hex(),
            n.to_hex()
        );
    }
}

#[test]
fn divrem_reconstructs_dividend() {
    let mut rng = HmacDrbg::new(b"crosscheck-divrem");
    for _ in 0..200 {
        let a = random_ub(&mut rng, 96);
        let d = random_ub(&mut rng, 40);
        if d.is_zero() {
            continue;
        }
        let (q, r) = a.divrem(&d);
        assert_eq!(
            q.mul(&d).add(&r).to_hex(),
            a.to_hex(),
            "q*d + r != a for a={} d={}",
            a.to_hex(),
            d.to_hex()
        );
        assert_eq!(
            r.cmp_to(&d),
            std::cmp::Ordering::Less,
            "remainder not reduced"
        );
    }
}

#[test]
fn windowed_montgomery_modpow_matches_bit_by_bit() {
    let mut rng = HmacDrbg::new(b"crosscheck-modpow");
    for round in 0..60 {
        let n = random_odd_modulus(&mut rng, 32);
        let base = random_ub(&mut rng, 40);
        let exp = random_ub(&mut rng, 24);
        let mont = Montgomery::new(&n);
        assert_eq!(
            mont.modpow(&base, &exp).to_hex(),
            modpow_reference(&base, &exp, &n).to_hex(),
            "round {round}: base={} exp={} n={}",
            base.to_hex(),
            exp.to_hex(),
            n.to_hex()
        );
    }
}

#[test]
fn generic_modpow_handles_even_moduli_too() {
    // Ub::modpow dispatches: odd modulus → Montgomery, even → plain
    // square-and-multiply. Both arms must agree with the reference.
    let mut rng = HmacDrbg::new(b"crosscheck-evenmod");
    for _ in 0..60 {
        let mut n = random_ub(&mut rng, 24);
        if n.cmp_to(&Ub::from_u64(2)) != std::cmp::Ordering::Greater {
            continue;
        }
        let base = random_ub(&mut rng, 32);
        let exp = random_ub(&mut rng, 16);
        assert_eq!(
            base.modpow(&exp, &n).to_hex(),
            modpow_reference(&base, &exp, &n).to_hex(),
            "modulus {} (odd={})",
            n.to_hex(),
            n.is_odd()
        );
        // Force the opposite parity next iteration by reusing n shifted.
        n = n.shl(1);
        if !n.is_zero() {
            assert_eq!(
                base.modpow(&exp, &n).to_hex(),
                modpow_reference(&base, &exp, &n).to_hex(),
                "even modulus {}",
                n.to_hex()
            );
        }
    }
}

#[test]
fn byte_codec_round_trips() {
    let mut rng = HmacDrbg::new(b"crosscheck-bytes");
    for _ in 0..200 {
        let a = random_ub(&mut rng, 80);
        let bytes = a.to_bytes_be();
        assert_eq!(Ub::from_bytes_be(&bytes).to_hex(), a.to_hex());
        // Leading zeros must be ignored on parse and absent on emit.
        let mut padded = vec![0u8; 7];
        padded.extend_from_slice(&bytes);
        assert_eq!(Ub::from_bytes_be(&padded).to_hex(), a.to_hex());
        if !a.is_zero() {
            assert_ne!(bytes[0], 0, "canonical encoding has no leading zero");
        }
        // Fixed-width padding round-trips through the same parser.
        let wide = a.to_bytes_be_padded(bytes.len() + 5);
        assert_eq!(wide.len(), bytes.len() + 5);
        assert_eq!(Ub::from_bytes_be(&wide).to_hex(), a.to_hex());
    }
}

#[test]
fn cached_group_context_matches_fresh_context() {
    use ts_crypto::dh::DhGroup;
    let mut rng = HmacDrbg::new(b"crosscheck-group");
    for group in [DhGroup::Sim256, DhGroup::Sim512] {
        let p = group.prime();
        let fresh = Montgomery::new(p);
        for _ in 0..20 {
            let base = random_ub(&mut rng, 40);
            let exp = random_ub(&mut rng, 20);
            assert_eq!(
                group.montgomery().modpow(&base, &exp).to_hex(),
                fresh.modpow(&base, &exp).to_hex(),
                "group {group:?}"
            );
        }
    }
}
