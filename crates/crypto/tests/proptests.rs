//! Property-based tests for the crypto substrate: algebraic laws for the
//! bignum, involution/roundtrip laws for the ciphers, and agreement laws
//! for the key exchanges.

use proptest::prelude::*;
use ts_crypto::bignum::Ub;
use ts_crypto::cbc;
use ts_crypto::chacha20;
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::hmac::hmac_sha256;
use ts_crypto::poly1305::{poly1305, Poly1305};
use ts_crypto::sha256::{sha256, Sha256};

fn ub(bytes: &[u8]) -> Ub {
    Ub::from_bytes_be(bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- bignum ring axioms ---

    #[test]
    fn add_commutes(a in proptest::collection::vec(any::<u8>(), 0..24),
                    b in proptest::collection::vec(any::<u8>(), 0..24)) {
        prop_assert_eq!(ub(&a).add(&ub(&b)), ub(&b).add(&ub(&a)));
    }

    #[test]
    fn mul_commutes_and_distributes(
        a in proptest::collection::vec(any::<u8>(), 0..16),
        b in proptest::collection::vec(any::<u8>(), 0..16),
        c in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let (a, b, c) = (ub(&a), ub(&b), ub(&c));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        // a * (b + c) == a*b + a*c
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn add_then_sub_roundtrips(
        a in proptest::collection::vec(any::<u8>(), 0..24),
        b in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let (a, b) = (ub(&a), ub(&b));
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn divrem_invariant(
        a in proptest::collection::vec(any::<u8>(), 0..32),
        d in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let a = ub(&a);
        let d = ub(&d);
        prop_assume!(!d.is_zero());
        let (q, r) = a.divrem(&d);
        prop_assert_eq!(q.mul(&d).add(&r), a, "a == q*d + r");
        prop_assert!(r.cmp_to(&d) == std::cmp::Ordering::Less, "r < d");
    }

    #[test]
    fn shifts_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..24),
                        bits in 0usize..100) {
        let a = ub(&a);
        prop_assert_eq!(a.shl(bits).shr(bits), a);
    }

    #[test]
    fn bytes_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..40)) {
        let n = ub(&a);
        prop_assert_eq!(Ub::from_bytes_be(&n.to_bytes_be()), n.clone());
        prop_assert_eq!(Ub::from_hex(&n.to_hex()), n);
    }

    #[test]
    fn modpow_montgomery_matches_naive(
        base in proptest::collection::vec(any::<u8>(), 1..12),
        exp in 0u64..10_000,
        modulus in proptest::collection::vec(any::<u8>(), 2..12),
    ) {
        let mut m = ub(&modulus);
        if !m.is_odd() {
            m = m.add(&Ub::one()); // force odd so Montgomery path runs
        }
        prop_assume!(m.bit_len() >= 2);
        let base = ub(&base);
        let e = Ub::from_u64(exp);
        let fast = base.modpow(&e, &m);
        // Naive reference via repeated mul_mod.
        let mut reference = Ub::one();
        let b = base.rem(&m);
        for i in (0..e.bit_len()).rev() {
            reference = reference.mul_mod(&reference, &m);
            if e.bit(i) {
                reference = reference.mul_mod(&b, &m);
            }
        }
        prop_assert_eq!(fast, reference);
    }

    // --- hash/MAC incrementality ---

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finish(), sha256(&data));
    }

    #[test]
    fn poly1305_incremental_equals_oneshot(
        key in proptest::collection::vec(any::<u8>(), 32..=32),
        data in proptest::collection::vec(any::<u8>(), 0..300),
        split in 0usize..300,
    ) {
        let key: [u8; 32] = key.try_into().unwrap();
        let split = split.min(data.len());
        let mut p = Poly1305::new(&key);
        p.update(&data[..split]);
        p.update(&data[split..]);
        prop_assert_eq!(p.finish(), poly1305(&key, &data));
    }

    #[test]
    fn hmac_distinguishes_key_and_message(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let tag = hmac_sha256(&key, &msg);
        let mut key2 = key.clone();
        key2[0] ^= 1;
        prop_assert_ne!(hmac_sha256(&key2, &msg), tag);
        let mut msg2 = msg.clone();
        msg2.push(0);
        prop_assert_ne!(hmac_sha256(&key, &msg2), tag);
    }

    // --- cipher roundtrips ---

    #[test]
    fn cbc_roundtrips_all_inputs(
        key in proptest::collection::vec(any::<u8>(), 16..=16),
        iv in proptest::collection::vec(any::<u8>(), 16..=16),
        pt in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let key: [u8; 16] = key.try_into().unwrap();
        let iv: [u8; 16] = iv.try_into().unwrap();
        let ct = cbc::encrypt(&key, &iv, &pt);
        prop_assert_eq!(cbc::decrypt(&key, &iv, &ct).unwrap(), pt);
    }

    #[test]
    fn chacha_xor_is_involutive(
        key in proptest::collection::vec(any::<u8>(), 32..=32),
        nonce in proptest::collection::vec(any::<u8>(), 12..=12),
        counter in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let key: [u8; 32] = key.try_into().unwrap();
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let mut buf = data.clone();
        chacha20::xor_stream(&key, counter, &nonce, &mut buf);
        chacha20::xor_stream(&key, counter, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    // --- SIMD fast path vs scalar reference agreement ---
    //
    // On SIMD-capable hosts these pin the dispatched AES-NI/CLMUL and AVX2
    // paths against the portable scalar references, bit for bit, across
    // lengths straddling every batch boundary. On plain hosts (or with the
    // `portable` feature) both sides take the scalar path and the tests
    // degenerate to self-consistency — still a valid law, never skipped.

    #[test]
    fn gcm_dispatched_and_portable_seals_agree(
        key in proptest::collection::vec(any::<u8>(), 16..=16),
        nonce in proptest::collection::vec(any::<u8>(), 12..=12),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        use ts_crypto::gcm;
        let key: [u8; 16] = key.try_into().unwrap();
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let fast = gcm::seal(&key, &nonce, &aad, &pt);
        let slow = gcm::seal_portable(&key, &nonce, &aad, &pt);
        prop_assert_eq!(&fast, &slow);
        // Cross-open: each implementation accepts the other's output.
        prop_assert_eq!(gcm::open(&key, &nonce, &aad, &slow).unwrap(), pt.clone());
        prop_assert_eq!(gcm::open_portable(&key, &nonce, &aad, &fast).unwrap(), pt);
    }

    #[test]
    fn gcm_agrees_with_chunked_aad_absorption(
        key in proptest::collection::vec(any::<u8>(), 16..=16),
        nonce in proptest::collection::vec(any::<u8>(), 12..=12),
        aad in proptest::collection::vec(any::<u8>(), 0..100),
        pt_len in 0usize..=1024,
    ) {
        // AAD lengths crossing block boundaries (the padded-absorption
        // path) must not perturb hardware/scalar agreement.
        use ts_crypto::gcm;
        let key: [u8; 16] = key.try_into().unwrap();
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let pt: Vec<u8> = (0..pt_len).map(|i| (i % 251) as u8).collect();
        for cut in [0, aad.len() / 2, aad.len()] {
            let fast = gcm::seal(&key, &nonce, &aad[..cut], &pt);
            prop_assert_eq!(fast, gcm::seal_portable(&key, &nonce, &aad[..cut], &pt));
        }
    }

    #[test]
    fn chacha_dispatched_and_portable_streams_agree(
        key in proptest::collection::vec(any::<u8>(), 32..=32),
        nonce in proptest::collection::vec(any::<u8>(), 12..=12),
        counter in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..1600),
    ) {
        let key: [u8; 32] = key.try_into().unwrap();
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let mut fast = data.clone();
        chacha20::xor_stream(&key, counter, &nonce, &mut fast);
        let mut slow = data.clone();
        chacha20::xor_stream_portable(&key, counter, &nonce, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn aes128gcm_aead_roundtrip_and_tamper_detection(
        key in proptest::collection::vec(any::<u8>(), 16..=16),
        nonce in proptest::collection::vec(any::<u8>(), 12..=12),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        pt in proptest::collection::vec(any::<u8>(), 0..200),
        flip in any::<usize>(),
    ) {
        use ts_crypto::aead::{aes128gcm_open, aes128gcm_seal};
        let key: [u8; 16] = key.try_into().unwrap();
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let sealed = aes128gcm_seal(&key, &nonce, &aad, &pt);
        prop_assert_eq!(aes128gcm_open(&key, &nonce, &aad, &sealed).unwrap(), pt);
        let mut bad = sealed.clone();
        let idx = flip % bad.len();
        bad[idx] ^= 1;
        prop_assert!(aes128gcm_open(&key, &nonce, &aad, &bad).is_err());
    }

    #[test]
    fn aead_roundtrip_and_tamper_detection(
        key in proptest::collection::vec(any::<u8>(), 32..=32),
        nonce in proptest::collection::vec(any::<u8>(), 12..=12),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        pt in proptest::collection::vec(any::<u8>(), 0..200),
        flip in any::<usize>(),
    ) {
        use ts_crypto::aead::{chacha20poly1305_open, chacha20poly1305_seal};
        let key: [u8; 32] = key.try_into().unwrap();
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let sealed = chacha20poly1305_seal(&key, &nonce, &aad, &pt);
        prop_assert_eq!(chacha20poly1305_open(&key, &nonce, &aad, &sealed).unwrap(), pt);
        let mut bad = sealed.clone();
        let idx = flip % bad.len();
        bad[idx] ^= 1;
        prop_assert!(chacha20poly1305_open(&key, &nonce, &aad, &bad).is_err());
    }

    // --- key exchange agreement ---

    #[test]
    fn x25519_agreement(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        use ts_crypto::x25519::X25519KeyPair;
        prop_assume!(seed_a != seed_b);
        let mut ra = HmacDrbg::from_seed_label(seed_a, "a");
        let mut rb = HmacDrbg::from_seed_label(seed_b, "b");
        let a = X25519KeyPair::generate(&mut ra);
        let b = X25519KeyPair::generate(&mut rb);
        prop_assert_eq!(a.shared_secret(&b.public), b.shared_secret(&a.public));
    }

    // --- DRBG determinism ---

    #[test]
    fn drbg_streams_deterministic_and_labelled(
        seed in any::<u64>(),
        n in 1usize..200,
    ) {
        let mut a = HmacDrbg::from_seed_label(seed, "x");
        let mut b = HmacDrbg::from_seed_label(seed, "x");
        prop_assert_eq!(a.bytes(n), b.bytes(n));
        let mut c = HmacDrbg::from_seed_label(seed, "y");
        let mut a2 = HmacDrbg::from_seed_label(seed, "x");
        prop_assert_ne!(c.bytes(32), a2.bytes(32));
    }
}
