//! Workspace-wide symbol table and call graph.
//!
//! Built once over every file's structural index, this is what turns the
//! per-file lexical pass into an *interprocedural* analysis: each function
//! body is scanned for call sites (`name(…)` and `.name(…)`), each call is
//! resolved against the table of production function definitions, and the
//! argument spans are kept so the flow engine ([`crate::flow`]) can decide
//! per call which parameters receive tainted data.
//!
//! ## Resolution discipline
//!
//! Matching is by bare name — the scanner has no type inference — so a
//! call edge is considered *resolved* only when the workspace defines
//! exactly one production function of that name. Ambiguous names (`new`,
//! `insert`, `len`, …) resolve to nothing: propagating taint into every
//! same-named method would drown the analysis in false positives, and std
//! methods are not in the table at all. Unique names are the ones that
//! matter in practice (`derive_connection_keys`, `seal_ticket`, the hop
//! helpers a leak hides behind), and for those the edge is exact.
//!
//! Everything is stored in deterministic order (file index, token
//! position), so two builds over the same inputs — at any worker count —
//! are identical. A property test pins this.

use std::collections::BTreeMap;

use crate::index::{matching, FileIndex};
use crate::lexer::TokKind;
use crate::rules::is_keyword;

/// A function definition, addressed by file and position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnId {
    /// Index into the analyzed file slice.
    pub file: usize,
    /// Index into that file's `fns` vector.
    pub fn_idx: usize,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Final path segment of the callee (`seal` for `Ticket::seal(…)`).
    pub callee: String,
    /// True for `.name(…)` method-call syntax (the receiver expression is
    /// not part of the argument spans).
    pub method: bool,
    /// 1-based source line.
    pub line: u32,
    /// Absolute token ranges (into the file's token vector), one per
    /// comma-separated argument.
    pub args: Vec<(usize, usize)>,
}

/// The per-function call-site lists plus the name-resolution table.
pub struct CallGraph {
    /// `fn name → every production definition`, in (file, fn) order.
    pub defs: BTreeMap<String, Vec<FnId>>,
    /// Call sites per function, indexed like the file slice: outer = file,
    /// inner = fn within that file.
    pub calls: Vec<Vec<Vec<CallSite>>>,
}

impl CallGraph {
    /// Build the symbol table and extract every call site. Test functions
    /// get no symbol-table entry (a test helper must not receive workspace
    /// taint) but their bodies are still scanned, cheaply, for totality.
    pub fn build<F: AsRef<FileIndex>>(files: &[F]) -> CallGraph {
        let mut defs: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, func) in f.as_ref().fns.iter().enumerate() {
                if func.in_test {
                    continue;
                }
                defs.entry(func.name.clone()).or_default().push(FnId {
                    file: fi,
                    fn_idx: gi,
                });
            }
        }
        let calls = files
            .iter()
            .map(|f| {
                let f = f.as_ref();
                f.fns
                    .iter()
                    .map(|func| extract_calls(f, func.body.0, func.body.1))
                    .collect()
            })
            .collect();
        CallGraph { defs, calls }
    }

    /// The unique production definition of `name`, if exactly one exists.
    pub fn resolve(&self, name: &str) -> Option<FnId> {
        match self.defs.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }
}

/// Scan a body token range for call sites. A call site is an identifier
/// followed by `(` that is neither a definition (`fn name(`), a macro
/// (`name!(…)` — the formatter family has its own rule), nor a keyword
/// head (`if (…)`, `match (…)`).
fn extract_calls(f: &FileIndex, lo: usize, hi: usize) -> Vec<CallSite> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || is_keyword(&t.text)
            || !toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            i += 1;
            continue;
        }
        if i > lo && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct("!")) {
            i += 1;
            continue;
        }
        let open = i + 1;
        let close = matching(toks, open, hi);
        out.push(CallSite {
            callee: t.text.clone(),
            method: i > lo && toks[i - 1].is_punct("."),
            line: t.line,
            args: split_args(toks, open + 1, close),
        });
        // Arguments may contain further calls: continue *inside* the
        // argument list, not after it.
        i += 1;
    }
    out
}

/// Split `lo..hi` (the inside of an argument list) at depth-0 commas.
fn split_args(toks: &[crate::lexer::Token], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if lo >= hi {
        return out;
    }
    let mut start = lo;
    let mut depth = 0usize;
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "," if depth == 0 => {
                    out.push((start, i));
                    start = i + 1;
                }
                _ => {}
            }
        }
        i += 1;
    }
    if start < hi {
        out.push((start, hi));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::scan_file;

    #[test]
    fn free_and_method_calls_are_extracted() {
        let idx = scan_file(
            "t.rs",
            "fn caller(x: u8) { helper(x, 2); obj.method(x); Path::seg(x); }",
        );
        let g = CallGraph::build(&[idx]);
        let sites = &g.calls[0][0];
        let names: Vec<&str> = sites.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, vec!["helper", "method", "seg"]);
        assert_eq!(sites[0].args.len(), 2);
        assert!(sites[1].method);
        assert!(!sites[2].method);
    }

    #[test]
    fn definitions_and_macros_are_not_call_sites() {
        let idx = scan_file(
            "t.rs",
            "fn outer() { fn inner(v: u8) {} inner(3); println!(\"x\"); }",
        );
        let g = CallGraph::build(&[idx]);
        let outer = g.calls[0]
            .iter()
            .flatten()
            .filter(|c| c.callee == "inner")
            .count();
        // `fn inner(` is a definition; only the invocation counts. The
        // nested body produces its own FnDef whose (empty) call list also
        // lives in the same file slot.
        assert_eq!(outer, 1);
        assert!(g.calls[0].iter().flatten().all(|c| c.callee != "println"));
    }

    #[test]
    fn ambiguous_names_do_not_resolve() {
        let a = scan_file("a.rs", "fn dup() {} fn uniq() {}");
        let b = scan_file("b.rs", "fn dup() {}");
        let g = CallGraph::build(&[a, b]);
        assert!(g.resolve("dup").is_none());
        assert!(g.resolve("uniq").is_some());
        assert!(g.resolve("missing").is_none());
    }

    #[test]
    fn test_fns_are_not_in_the_symbol_table() {
        let idx = scan_file(
            "t.rs",
            "#[cfg(test)]\nmod tests { fn helper() {} }\nfn caller() { helper(); }",
        );
        let g = CallGraph::build(&[idx]);
        assert!(g.resolve("helper").is_none());
    }

    #[test]
    fn nested_call_arguments_are_scanned() {
        let idx = scan_file("t.rs", "fn f(x: u8) { outer(inner(x), 1); }");
        let g = CallGraph::build(&[idx]);
        let names: Vec<&str> = g.calls[0][0].iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }
}
