//! Concurrency analysis: lock-order graph, atomics-ordering, fan-out
//! discipline, and SIMD dispatch gating.
//!
//! The shared state this workspace grew — the 8-way sharded
//! `SessionCache`, the epoch-pinned `Arc<StekSet>` snapshots, the
//! batched-kernel fresh pools — is exactly the state the paper's harm
//! argument rests on, so its locking discipline is checked statically
//! rather than asserted in comments. Four rules, all built on the
//! token-stream index and the workspace call graph:
//!
//! * **`lock-order`** — every `Mutex`/`RwLock` *acquisition* is keyed to
//!   the struct field (or local/static) it locks. A guard bound with
//!   `let g = x.lock();` is tracked as *held* from the end of that
//!   statement to the end of its enclosing block (or an explicit
//!   `drop(g)`). Acquiring `B` while `A` is held — directly, or inside
//!   any function reachable through a resolved call — adds the edge
//!   `A → B` to the global lock-acquisition graph. The graph must be
//!   acyclic (the classical sufficient condition for deadlock freedom);
//!   a self-edge means the same lock field can be acquired twice, which
//!   for an array-of-locks field (`SessionCache` shards) is flagged too:
//!   the home-shard-first + fixed-order fallback works precisely because
//!   it never holds two shards at once, and this rule is what proves it.
//!   Guard-less temporaries (`self.shards[i].lock().insert(…)`) release
//!   within the statement and create no held-across edges.
//! * **`atomic-ordering`** — an atomic field annotated
//!   `// ctlint: publishes(other_field, …)` gates the visibility of the
//!   named sibling data (the `PinnedStekSet` epoch pattern). Any
//!   `Relaxed` operation on such a field fires: publication needs
//!   `Release`/`Acquire` pairing, and `Relaxed` lets a reader observe
//!   the flag before the payload it stands for.
//! * **`lock-across-callback`** — a live guard at a `parallel_map` /
//!   `scope` / `spawn` fan-out call. A worker closure re-entering the
//!   guarded structure deadlocks; even when it doesn't, the guard
//!   serialises the whole fan-out.
//! * **`simd-dispatch-gate`** — every `#[target_feature]` kernel must be
//!   reachable only through a dispatch path that crossed a CPUID detect
//!   (`*available()` / `is_x86_feature_detected!`), checked by walking
//!   the call graph backwards from the kernel; and every unsafe block
//!   that calls a kernel (or uses `_mm*` intrinsics directly) must have
//!   a `// SAFETY:` comment that *states the gate* rather than
//!   restating the code.
//!
//! Waivers live under `[[concurrency]]` in `ctlint.toml`, with the same
//! mandatory-reason / stale-entry contract as `[[lifetime]]`.
//!
//! Everything here is deterministic by construction: models are keyed by
//! name in `BTreeMap`s, edge witnesses are minimised over (path, line),
//! and the interprocedural acquisition sets are a monotone fixpoint whose
//! result is independent of file order — a property test shuffles the
//! file list to pin this.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FnId};
use crate::diag::{Diagnostic, Rule};
use crate::index::{matching, FileIndex, FnDef};
use crate::lexer::{TokKind, Token};
use crate::rules::is_keyword;

/// Fan-out entry points a guard must never be held across.
const FANOUT_CALLS: &[&str] = &["parallel_map", "spawn", "scope"];

/// Atomic operations whose `Ordering` argument the publishes rule audits.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Substrings a SAFETY comment on a SIMD-calling unsafe block must
/// mention (lower-cased match) to count as stating the gate invariant.
const GATE_MARKERS: &[&str] = &["available", "feature_detected", "cpuid"];

fn is_vendored(path: &str) -> bool {
    path.starts_with("vendor/") || path.contains("/vendor/")
}

/// The inferred concurrency model: what `ts-lint --model` prints and what
/// the rules run against.
#[derive(Debug, Default)]
pub struct ConcurrencyModel {
    /// Qualified lock key (`Owner.field`) → declaration site
    /// (`path:line`), for locks that are struct fields. Locals, statics
    /// and call-returned locks participate in the graph under bare keys
    /// but have no declaration entry.
    pub lock_decls: BTreeMap<String, String>,
    /// Function display name (`Type::fn` or `fn`) → every lock key the
    /// function may acquire, directly or through resolved calls. Only
    /// non-empty sets are kept.
    pub held_sets: BTreeMap<String, BTreeSet<String>>,
    /// Lock-acquisition graph: `(held, acquired)` → first witness site
    /// (`path:line`, minimised so the dump is file-order independent).
    pub edges: BTreeMap<(String, String), String>,
    /// Publisher atomics: qualified field key → the sibling data it
    /// publishes (from `// ctlint: publishes(…)`).
    pub publishers: BTreeMap<String, BTreeSet<String>>,
}

impl ConcurrencyModel {
    /// Build the model for `files` (diagnostics are discarded — use
    /// [`check`] to collect them).
    pub fn build<F: AsRef<FileIndex>>(files: &[F], graph: &CallGraph) -> ConcurrencyModel {
        analyze(files, graph).0
    }

    /// Deterministic text form, name-sorted like the secret/hash model
    /// dumps. Byte-identical for any file order or worker count.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("lock fields:\n");
        for (key, site) in &self.lock_decls {
            out.push_str(&format!("  {key}  {site}\n"));
        }
        out.push_str("lock graph:\n");
        for ((from, to), site) in &self.edges {
            out.push_str(&format!("  {from} -> {to}  {site}\n"));
        }
        out.push_str("held-lock sets:\n");
        for (func, locks) in &self.held_sets {
            let locks: Vec<&str> = locks.iter().map(String::as_str).collect();
            out.push_str(&format!("  {func}  {{{}}}\n", locks.join(", ")));
        }
        out.push_str("atomic publishers:\n");
        for (key, published) in &self.publishers {
            let p: Vec<&str> = published.iter().map(String::as_str).collect();
            out.push_str(&format!("  {key}  publishes({})\n", p.join(", ")));
        }
        out
    }
}

/// Run the concurrency family over all files, appending raw diagnostics.
pub fn check<F: AsRef<FileIndex>>(files: &[F], graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    diags.extend(analyze(files, graph).1);
}

// ---------------------------------------------------------------------------
// Lock field table

/// Struct fields whose declared type mentions `Mutex` or `RwLock`.
struct LockFields {
    /// field name → owning production types (sorted).
    owners: BTreeMap<String, BTreeSet<String>>,
    /// `Owner.field` → declaration site.
    decls: BTreeMap<String, String>,
    /// Field names declared as `RwLock` (eligible for `.read()`/`.write()`
    /// acquisition detection; `.lock()` is accepted on anything).
    rw_names: BTreeSet<String>,
}

impl LockFields {
    fn build<F: AsRef<FileIndex>>(files: &[F]) -> LockFields {
        let mut lf = LockFields {
            owners: BTreeMap::new(),
            decls: BTreeMap::new(),
            rw_names: BTreeSet::new(),
        };
        for f in files {
            let f = f.as_ref();
            if is_vendored(&f.path) {
                continue;
            }
            for ty in &f.types {
                if ty.in_test {
                    continue;
                }
                for field in &ty.fields {
                    let is_mutex = field.type_idents.iter().any(|t| t == "Mutex");
                    let is_rw = field.type_idents.iter().any(|t| t == "RwLock");
                    if !is_mutex && !is_rw {
                        continue;
                    }
                    lf.owners
                        .entry(field.name.clone())
                        .or_default()
                        .insert(ty.name.clone());
                    lf.decls
                        .entry(format!("{}.{}", ty.name, field.name))
                        .or_insert_with(|| format!("{}:{}", f.path, ty.line));
                    if is_rw {
                        lf.rw_names.insert(field.name.clone());
                    }
                }
            }
        }
        lf
    }

    /// Qualify a field name into a lock key: the enclosing impl's type
    /// wins, then a workspace-unique owner, then the bare name.
    fn key_for(&self, field: &str, self_type: Option<&str>) -> Option<String> {
        let owners = self.owners.get(field)?;
        if let Some(st) = self_type {
            if owners.contains(st) {
                return Some(format!("{st}.{field}"));
            }
        }
        if owners.len() == 1 {
            let only = owners.iter().next().expect("non-empty owner set");
            return Some(format!("{only}.{field}"));
        }
        Some(field.to_string())
    }
}

// ---------------------------------------------------------------------------
// Receiver resolution

/// The syntactic receiver of a `.method()` call, reduced to its most
/// specific segment.
enum Receiver {
    /// `…name.method()` — a field access or a plain local.
    Name(String),
    /// `self.0.method()` — a tuple field of the impl type.
    TupleField(String),
    /// `name(…).method()` — the return value of a call.
    CallResult(String),
}

/// Find the opener matching the close delimiter at `close`, scanning
/// backwards no further than `lo`.
fn matching_back(toks: &[Token], close: usize, lo: usize) -> Option<usize> {
    let (close_t, open_t) = match toks[close].text.as_str() {
        ")" => (")", "("),
        "]" => ("]", "["),
        "}" => ("}", "{"),
        _ => return None,
    };
    let mut depth = 0usize;
    let mut k = close;
    loop {
        if toks[k].kind == TokKind::Punct {
            if toks[k].text == close_t {
                depth += 1;
            } else if toks[k].text == open_t {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        if k == lo {
            return None;
        }
        k -= 1;
    }
}

/// Resolve the receiver chain ending at `dot` (the `.` before the method
/// name), walking backwards over index expressions and path separators.
fn receiver_of(toks: &[Token], lo: usize, dot: usize) -> Option<Receiver> {
    let mut k = dot;
    while k > lo {
        k -= 1;
        let t = &toks[k];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "]" => k = matching_back(toks, k, lo)?,
                ")" => {
                    let open = matching_back(toks, k, lo)?;
                    if open > lo && toks[open - 1].kind == TokKind::Ident {
                        return Some(Receiver::CallResult(toks[open - 1].text.clone()));
                    }
                    return None;
                }
                "." | "::" => {}
                _ => return None,
            },
            TokKind::Number => {
                if k >= 2 && toks[k - 1].is_punct(".") && toks[k - 2].is_ident("self") {
                    return Some(Receiver::TupleField(t.text.clone()));
                }
                return None;
            }
            TokKind::Ident => {
                if t.text == "self" {
                    return None;
                }
                return Some(Receiver::Name(t.text.clone()));
            }
            _ => return None,
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Per-function scan

/// A guard binding (`let g = x.lock();`) being tracked for liveness.
struct GuardBinding {
    name: String,
    key: String,
    /// Brace depth the binding was made at — the guard dies when that
    /// block closes.
    depth: usize,
    /// Token index of the binding statement's `;` — the guard is live
    /// strictly after it (the acquisition inside its own initialiser must
    /// not see itself as held).
    start: usize,
    alive: bool,
}

/// Everything extracted from one function body.
#[derive(Default)]
struct FnScan {
    /// Lock keys acquired directly in this body.
    direct: BTreeSet<String>,
    /// `(held, acquired, line)` for intra-body nested acquisitions.
    edges: Vec<(String, String, u32)>,
    /// `(held set, callee name, line)` at call sites with live guards,
    /// for interprocedural edge propagation.
    held_calls: Vec<(BTreeSet<String>, String, u32)>,
    /// Raw diagnostics (`lock-across-callback`, `atomic-ordering`).
    diags: Vec<Diagnostic>,
}

/// Try to interpret the token at `i` as a lock acquisition
/// (`.lock()` / `.read()` / `.write()`, zero arguments). Returns the lock
/// key and the index of the call's closing paren.
fn acquisition_at(
    toks: &[Token],
    i: usize,
    lo: usize,
    hi: usize,
    self_type: Option<&str>,
    lf: &LockFields,
    aliases: &BTreeMap<String, String>,
) -> Option<(String, usize)> {
    let method = toks[i].text.as_str();
    if !matches!(method, "lock" | "read" | "write")
        || toks[i].kind != TokKind::Ident
        || i == lo
        || !toks[i - 1].is_punct(".")
        || !toks.get(i + 1).is_some_and(|t| t.is_punct("("))
    {
        return None;
    }
    let close = matching(toks, i + 1, hi);
    if close != i + 2 {
        // `.read(buf)` / `.write(buf)` are I/O, `.lock(x)` is something
        // else entirely — a lock acquisition takes no arguments.
        return None;
    }
    let recv = receiver_of(toks, lo, i - 1)?;
    let key = match recv {
        Receiver::Name(n) => {
            if let Some(aliased) = aliases.get(&n) {
                aliased.clone()
            } else if let Some(k) = lf.key_for(&n, self_type) {
                if method != "lock" && !lf.rw_names.contains(&n) {
                    return None;
                }
                k
            } else if method == "lock" {
                // A local or static mutex: participates under its bare
                // name. `.read()`/`.write()` on unknown receivers are
                // overwhelmingly I/O, so only known RwLock fields count.
                n
            } else {
                return None;
            }
        }
        Receiver::TupleField(n) => {
            if method != "lock" {
                return None;
            }
            match self_type {
                Some(st) => format!("{st}.{n}"),
                None => format!("self.{n}"),
            }
        }
        Receiver::CallResult(n) => {
            if method != "lock" {
                return None;
            }
            n
        }
    };
    Some((key, close))
}

/// Pre-pass: locals bound by `for pat in …field…` loops over a lock
/// field alias that field (`for (i, shard) in self.shards.iter()` makes
/// `shard` an alias of `SharedSessionCache.shards`).
fn collect_aliases(
    toks: &[Token],
    lo: usize,
    hi: usize,
    self_type: Option<&str>,
    lf: &LockFields,
) -> BTreeMap<String, String> {
    let mut aliases = BTreeMap::new();
    let mut i = lo;
    while i < hi {
        if !toks[i].is_ident("for") {
            i += 1;
            continue;
        }
        // pattern: tokens until a depth-0 `in`
        let pat_start = i + 1;
        let mut j = pat_start;
        let mut depth = 0usize;
        while j < hi {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            if depth == 0 && t.is_ident("in") {
                break;
            }
            j += 1;
        }
        if j >= hi {
            break;
        }
        let pat = (pat_start, j);
        // iterated expression: tokens until the loop's `{`
        let expr_start = j + 1;
        let mut k = expr_start;
        let mut depth = 0usize;
        while k < hi {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        // a lock field mentioned in the expression aliases the pattern
        let mut key = None;
        for t in &toks[expr_start..k] {
            if t.kind == TokKind::Ident {
                if let Some(k2) = lf.key_for(&t.text, self_type) {
                    key = Some(k2);
                    break;
                }
            }
        }
        if let Some(key) = key {
            for t in &toks[pat.0..pat.1] {
                if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                    aliases.insert(t.text.clone(), key.clone());
                }
            }
        }
        i = k;
    }
    aliases
}

/// Find the `;` ending the statement whose expression starts at `from`.
fn stmt_end(toks: &[Token], from: usize, hi: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = from;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return Some(i),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Scan one production function body.
#[allow(clippy::too_many_arguments)]
fn scan_fn<F: AsRef<FileIndex>>(
    files: &[F],
    fi: usize,
    func: &FnDef,
    lf: &LockFields,
    publishers: &BTreeMap<String, BTreeSet<String>>,
    graph: &CallGraph,
) -> FnScan {
    let f = files[fi].as_ref();
    let toks = &f.tokens;
    let (lo, hi) = func.body;
    let self_type = func.self_type.as_deref();
    let aliases = collect_aliases(toks, lo, hi, self_type, lf);

    let mut scan = FnScan::default();
    let mut guards: Vec<GuardBinding> = Vec::new();
    let mut depth = 0usize;

    let live_keys = |guards: &[GuardBinding], at: usize| -> BTreeSet<String> {
        guards
            .iter()
            .filter(|g| g.alive && g.start < at)
            .map(|g| g.key.clone())
            .collect()
    };

    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    for g in guards.iter_mut() {
                        if g.depth >= depth {
                            g.alive = false;
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }

        // `let name = …lock();` — a guard binding (skip `if let`/`while
        // let`, whose scrutinee guard is a statement-scoped temporary).
        if t.text == "let"
            && (i == lo || !(toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while")))
        {
            if let Some(binding) = guard_binding(toks, i, lo, hi, self_type, lf, &aliases, depth) {
                guards.push(binding);
            }
            i += 1;
            continue;
        }

        // Acquisition events (`.lock()` etc.).
        if let Some((key, _close)) = acquisition_at(toks, i, lo, hi, self_type, lf, &aliases) {
            for held in live_keys(&guards, i) {
                scan.edges.push((held, key.clone(), t.line));
            }
            scan.direct.insert(key);
            i += 1;
            continue;
        }

        // Atomic operations on publisher fields.
        if ATOMIC_METHODS.contains(&t.text.as_str())
            && i > lo
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            if let Some(Receiver::Name(field)) = receiver_of(toks, lo, i - 1) {
                let qualified = publishers
                    .keys()
                    .find(|k| k.rsplit('.').next() == Some(field.as_str()))
                    .cloned();
                if let Some(qualified) = qualified {
                    let close = matching(toks, i + 1, hi);
                    if toks[i + 2..close].iter().any(|a| a.is_ident("Relaxed")) {
                        let published: Vec<String> =
                            publishers[&qualified].iter().cloned().collect();
                        scan.diags.push(Diagnostic {
                            rule: Rule::AtomicOrdering,
                            file: f.path.clone(),
                            line: t.line,
                            ident: field.clone(),
                            message: format!(
                                "`{qualified}` publishes {{{}}} but `{}` uses \
                                 `Ordering::Relaxed` — relaxed operations do not order \
                                 the publication; use Acquire on loads and \
                                 Release/AcqRel on stores",
                                published.join(", "),
                                t.text,
                            ),
                        });
                    }
                }
            }
            i += 1;
            continue;
        }

        // `drop(guard)` releases a tracked guard early.
        if t.text == "drop"
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|n| n.is_punct(")"))
        {
            let name = &toks[i + 2].text;
            if let Some(g) = guards.iter_mut().rev().find(|g| &g.name == name) {
                g.alive = false;
            }
            i += 4;
            continue;
        }

        // Other call sites: fan-out discipline + interprocedural edges.
        if !is_keyword(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !(i > lo && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct("!")))
        {
            let held = live_keys(&guards, i);
            if !held.is_empty() {
                if FANOUT_CALLS.contains(&t.text.as_str()) {
                    for key in &held {
                        scan.diags.push(Diagnostic {
                            rule: Rule::LockAcrossCallback,
                            file: f.path.clone(),
                            line: t.line,
                            ident: key.clone(),
                            message: format!(
                                "lock `{key}` is held across the `{}` fan-out — worker \
                                 closures that touch the guarded structure deadlock; \
                                 release the guard before fanning out",
                                t.text,
                            ),
                        });
                    }
                }
                scan.held_calls.push((held, t.text.clone(), t.line));
            }
            i += 1;
            continue;
        }

        i += 1;
    }
    let _ = graph;
    scan
}

/// Parse `let [mut] name [: ty] = expr;` where `expr` ends in a lock
/// acquisition (optionally chained through `.unwrap()` / `.expect(…)` /
/// `?`) into a guard binding.
#[allow(clippy::too_many_arguments)]
fn guard_binding(
    toks: &[Token],
    let_pos: usize,
    lo: usize,
    hi: usize,
    self_type: Option<&str>,
    lf: &LockFields,
    aliases: &BTreeMap<String, String>,
    depth: usize,
) -> Option<GuardBinding> {
    let mut j = let_pos + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name_tok = toks.get(j).filter(|t| t.kind == TokKind::Ident)?;
    let name = name_tok.text.clone();
    j += 1;
    // Optional `: Type` annotation up to the depth-0 `=` (generic-aware).
    let eq = if toks.get(j).is_some_and(|t| t.is_punct("=")) {
        j
    } else if toks.get(j).is_some_and(|t| t.is_punct(":")) {
        let mut depth = 0i64;
        let mut k = j + 1;
        loop {
            let t = toks.get(k)?;
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    ">>" => depth -= 2,
                    "=" if depth <= 0 => break k,
                    ";" if depth <= 0 => return None,
                    _ => {}
                }
            }
            k += 1;
            if k >= hi {
                return None;
            }
        }
    } else {
        return None;
    };
    let end = stmt_end(toks, eq + 1, hi)?;
    // The last acquisition in the initialiser…
    let mut last: Option<(String, usize)> = None;
    let mut k = eq + 1;
    while k < end {
        if let Some(found) = acquisition_at(toks, k, lo, end, self_type, lf, aliases) {
            last = Some(found);
        }
        k += 1;
    }
    let (key, close) = last?;
    // …must be the value the binding receives: only `.unwrap()`,
    // `.expect(…)` and `?` may follow it before the `;`.
    let mut tail = close + 1;
    loop {
        if tail == end {
            return Some(GuardBinding {
                name,
                key,
                depth,
                start: end,
                alive: true,
            });
        }
        if toks[tail].is_punct("?") {
            tail += 1;
            continue;
        }
        if toks[tail].is_punct(".")
            && toks
                .get(tail + 1)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
            && toks.get(tail + 2).is_some_and(|t| t.is_punct("("))
        {
            tail = matching(toks, tail + 2, end) + 1;
            continue;
        }
        return None;
    }
}

// ---------------------------------------------------------------------------
// Whole-workspace analysis

fn fn_display(func: &FnDef) -> String {
    match &func.self_type {
        Some(st) => format!("{st}::{}", func.name),
        None => func.name.clone(),
    }
}

fn analyze<F: AsRef<FileIndex>>(
    files: &[F],
    graph: &CallGraph,
) -> (ConcurrencyModel, Vec<Diagnostic>) {
    let lf = LockFields::build(files);
    let mut diags = Vec::new();

    // Publisher atomics from `// ctlint: publishes(…)` annotations.
    let mut publishers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in files {
        let f = f.as_ref();
        if is_vendored(&f.path) {
            continue;
        }
        for ty in &f.types {
            if ty.in_test {
                continue;
            }
            for field in &ty.fields {
                if let Some(list) = &field.publishes {
                    publishers
                        .entry(format!("{}.{}", ty.name, field.name))
                        .or_default()
                        .extend(list.iter().cloned());
                }
            }
        }
    }

    // Per-function scans (production functions in non-vendored files).
    let mut scans: BTreeMap<FnId, FnScan> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        let fr = f.as_ref();
        if is_vendored(&fr.path) {
            continue;
        }
        for (gi, func) in fr.fns.iter().enumerate() {
            if func.in_test {
                continue;
            }
            let id = FnId {
                file: fi,
                fn_idx: gi,
            };
            scans.insert(id, scan_fn(files, fi, func, &lf, &publishers, graph));
        }
    }

    // Interprocedural acquisition sets: monotone fixpoint over the call
    // graph (result independent of iteration order).
    let mut acq: BTreeMap<FnId, BTreeSet<String>> = scans
        .iter()
        .map(|(id, s)| (*id, s.direct.clone()))
        .collect();
    loop {
        let mut changed = false;
        let snapshot = acq.clone();
        for (id, set) in acq.iter_mut() {
            for cs in &graph.calls[id.file][id.fn_idx] {
                if let Some(target) = graph.resolve(&cs.callee) {
                    if let Some(t_set) = snapshot.get(&target) {
                        for k in t_set {
                            changed |= set.insert(k.clone());
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Assemble the global lock-acquisition graph with minimised witnesses.
    let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, path: &str, line: u32| {
        let site = format!("{path}:{line}");
        edges
            .entry((from.to_string(), to.to_string()))
            .and_modify(|s| {
                if site < *s {
                    *s = site.clone();
                }
            })
            .or_insert(site);
    };
    for (id, scan) in &scans {
        let path = &files[id.file].as_ref().path;
        for (from, to, line) in &scan.edges {
            add_edge(from, to, path, *line);
        }
        for (held, callee, line) in &scan.held_calls {
            if let Some(target) = graph.resolve(callee) {
                if let Some(t_set) = acq.get(&target) {
                    for from in held {
                        for to in t_set {
                            add_edge(from, to, path, *line);
                        }
                    }
                }
            }
        }
    }

    diags.extend(scans.values().flat_map(|s| s.diags.iter().cloned()));

    // Cycle detection over the lock graph.
    diags.extend(lock_cycles(&edges));

    // SIMD dispatch gating.
    simd_gate(files, graph, &mut diags);

    // Model assembly.
    let mut held_sets: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (id, set) in &acq {
        if set.is_empty() {
            continue;
        }
        let func = &files[id.file].as_ref().fns[id.fn_idx];
        held_sets
            .entry(fn_display(func))
            .or_default()
            .extend(set.iter().cloned());
    }
    let model = ConcurrencyModel {
        lock_decls: lf.decls,
        held_sets,
        edges,
        publishers,
    };
    (model, diags)
}

/// Report every strongly connected component of the lock graph that
/// contains a cycle (including self-edges), deterministically.
fn lock_cycles(edges: &BTreeMap<(String, String), String>) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().insert(to);
        adj.entry(to).or_default();
    }
    // Iterative Tarjan SCC over name-sorted nodes.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Explicit DFS stack: (node, neighbour iterator position).
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ni)) = work.last_mut() {
            if *ni == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let neighbours: Vec<usize> = adj[nodes[v]].iter().map(|t| index_of[t]).collect();
            if *ni < neighbours.len() {
                let w = neighbours[*ni];
                *ni += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
                work.pop();
                if let Some(&mut (u, _)) = work.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }

    let mut out = Vec::new();
    for comp in sccs {
        let mut members: Vec<&str> = comp.iter().map(|&i| nodes[i]).collect();
        members.sort_unstable();
        let cyclic =
            members.len() > 1 || (members.len() == 1 && adj[members[0]].contains(members[0]));
        if !cyclic {
            continue;
        }
        let member_set: BTreeSet<&str> = members.iter().copied().collect();
        // Witness: the smallest internal edge site.
        let witness = edges
            .iter()
            .filter(|((a, b), _)| {
                member_set.contains(a.as_str()) && member_set.contains(b.as_str())
            })
            .map(|(_, site)| site.clone())
            .min()
            .unwrap_or_default();
        let (file, line) = witness
            .rsplit_once(':')
            .map(|(f, l)| (f.to_string(), l.parse().unwrap_or(0)))
            .unwrap_or((witness.clone(), 0));
        // A deterministic cycle path for the message: walk min-neighbour
        // edges inside the component starting from the smallest member.
        let head = members[0];
        let mut path = vec![head];
        let mut cur = head;
        loop {
            let next = adj[cur]
                .iter()
                .copied()
                .filter(|t| member_set.contains(t))
                .find(|t| !path.contains(t))
                .or_else(|| {
                    adj[cur]
                        .iter()
                        .copied()
                        .find(|t| *t == head || member_set.contains(t))
                });
            match next {
                Some(t) if t == head || path.contains(&t) => {
                    path.push(t);
                    break;
                }
                Some(t) => {
                    path.push(t);
                    cur = t;
                }
                None => break,
            }
        }
        let cycle = path.join(" -> ");
        out.push(Diagnostic {
            rule: Rule::LockOrder,
            file,
            line,
            ident: head.to_string(),
            message: format!(
                "lock-order cycle: {cycle} — the lock-acquisition graph must stay \
                 acyclic (fix the acquisition order; a [[concurrency]] waiver is a \
                 last resort)"
            ),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// SIMD dispatch gating

/// Does this function's body mention a CPUID detect?
fn gated(f: &FileIndex, func: &FnDef) -> bool {
    f.tokens[func.body.0..func.body.1].iter().any(|t| {
        t.kind == TokKind::Ident
            && (t.text.ends_with("available") || t.text.contains("feature_detected"))
    })
}

fn simd_gate<F: AsRef<FileIndex>>(files: &[F], graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    // Kernel table: production #[target_feature] functions.
    let mut kernels: Vec<(FnId, String)> = Vec::new();
    let mut kernel_names: BTreeSet<&str> = BTreeSet::new();
    for (fi, f) in files.iter().enumerate() {
        let fr = f.as_ref();
        if is_vendored(&fr.path) {
            continue;
        }
        for (gi, func) in fr.fns.iter().enumerate() {
            if func.target_feature && !func.in_test {
                kernels.push((
                    FnId {
                        file: fi,
                        fn_idx: gi,
                    },
                    func.name.clone(),
                ));
                kernel_names.insert(&fr.fns[gi].name);
            }
        }
    }
    if kernels.is_empty() {
        return;
    }

    // callee name → production callers, with the call-site line.
    let mut callers: BTreeMap<&str, Vec<(FnId, u32)>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        let fr = f.as_ref();
        if is_vendored(&fr.path) {
            continue;
        }
        for (gi, func) in fr.fns.iter().enumerate() {
            if func.in_test {
                continue;
            }
            for cs in &graph.calls[fi][gi] {
                callers.entry(cs.callee.as_str()).or_default().push((
                    FnId {
                        file: fi,
                        fn_idx: gi,
                    },
                    cs.line,
                ));
            }
        }
    }

    // Rule (a): walking back from every kernel, some ancestor on the
    // dispatch path must cross a CPUID detect.
    for (kid, kname) in &kernels {
        let Some(direct) = callers.get(kname.as_str()) else {
            continue; // only test code dispatches it
        };
        let direct: Vec<(FnId, u32)> = direct.iter().copied().filter(|(c, _)| *c != *kid).collect();
        if direct.is_empty() {
            continue;
        }
        let mut visited: BTreeSet<FnId> = BTreeSet::new();
        let mut queue: Vec<FnId> = direct.iter().map(|(c, _)| *c).collect();
        queue.sort_unstable();
        let mut found_gate = false;
        while let Some(c) = queue.pop() {
            if !visited.insert(c) {
                continue;
            }
            let cf = files[c.file].as_ref();
            let cfn = &cf.fns[c.fn_idx];
            if gated(cf, cfn) {
                found_gate = true;
                break;
            }
            if let Some(ups) = callers.get(cfn.name.as_str()) {
                for (u, _) in ups {
                    if !visited.contains(u) {
                        queue.push(*u);
                    }
                }
            }
        }
        if !found_gate {
            let witness = direct
                .iter()
                .map(|(c, line)| (files[c.file].as_ref().path.clone(), *line))
                .min()
                .expect("non-empty caller set");
            diags.push(Diagnostic {
                rule: Rule::SimdDispatchGate,
                file: witness.0,
                line: witness.1,
                ident: kname.clone(),
                message: format!(
                    "#[target_feature] kernel `{kname}` is reachable without a CPUID \
                     dispatch gate — no caller path crosses an `*available()` / \
                     `is_x86_feature_detected!` check before invoking it"
                ),
            });
        }
    }

    // Rule (b): an unsafe block that enters SIMD (kernel call or raw
    // `_mm*` intrinsic) must carry a SAFETY comment stating the gate.
    for f in files {
        let fr = f.as_ref();
        if is_vendored(&fr.path) {
            continue;
        }
        for ub in &fr.unsafe_blocks {
            if ub.in_test {
                continue;
            }
            let simd_entry = fr.tokens[ub.body.0..ub.body.1]
                .iter()
                .zip(
                    fr.tokens[ub.body.0 + 1..ub.body.1]
                        .iter()
                        .map(Some)
                        .chain([None]),
                )
                .find_map(|(t, next)| {
                    if t.kind != TokKind::Ident {
                        return None;
                    }
                    if t.text.starts_with("_mm") {
                        return Some(t.text.clone());
                    }
                    if kernel_names.contains(t.text.as_str())
                        && next.is_some_and(|n| n.is_punct("("))
                    {
                        return Some(t.text.clone());
                    }
                    None
                });
            let Some(entry) = simd_entry else {
                continue;
            };
            let text = ub.safety_text.to_lowercase();
            if !GATE_MARKERS.iter().any(|m| text.contains(m)) {
                diags.push(Diagnostic {
                    rule: Rule::SimdDispatchGate,
                    file: fr.path.clone(),
                    line: ub.line,
                    ident: entry.clone(),
                    message: format!(
                        "unsafe SIMD block (`{entry}`) needs a `// SAFETY:` comment \
                         stating the CPUID feature-gate invariant (which detect gates \
                         this path), not a restatement of the code"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::scan_file;

    fn run(sources: &[(&str, &str)]) -> (ConcurrencyModel, Vec<Diagnostic>) {
        let files: Vec<FileIndex> = sources.iter().map(|(p, s)| scan_file(p, s)).collect();
        let graph = CallGraph::build(&files);
        analyze(&files, &graph)
    }

    #[test]
    fn opposite_order_acquisition_is_a_cycle() {
        let src = r#"
            struct S { a: Mutex<u8>, b: Mutex<u8> }
            impl S {
                fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
                fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }
            }
        "#;
        let (model, diags) = run(&[("x.rs", src)]);
        assert!(model.edges.contains_key(&("S.a".into(), "S.b".into())));
        assert!(model.edges.contains_key(&("S.b".into(), "S.a".into())));
        let cycles: Vec<_> = diags.iter().filter(|d| d.rule == Rule::LockOrder).collect();
        assert_eq!(cycles.len(), 1, "{diags:?}");
        assert!(
            cycles[0].message.contains("S.a -> S.b"),
            "{}",
            cycles[0].message
        );
    }

    #[test]
    fn consistent_order_is_clean_and_modelled() {
        let src = r#"
            struct S { a: Mutex<u8>, b: Mutex<u8> }
            impl S {
                fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
                fn also_ab(&self) { let ga = self.a.lock(); self.b.lock().checked_add(1); }
            }
        "#;
        let (model, diags) = run(&[("x.rs", src)]);
        assert!(diags.iter().all(|d| d.rule != Rule::LockOrder), "{diags:?}");
        assert_eq!(model.edges.len(), 1);
        assert!(model.held_sets["S::ab"].contains("S.a"));
    }

    #[test]
    fn interprocedural_cycle_through_a_helper() {
        let src = r#"
            struct S { a: Mutex<u8>, b: Mutex<u8> }
            impl S {
                fn outer(&self) { let ga = self.a.lock(); self.helper_b(); }
                fn helper_b(&self) { let gb = self.b.lock(); }
                fn other(&self) { let gb = self.b.lock(); self.helper_a(); }
                fn helper_a(&self) { let ga = self.a.lock(); }
            }
        "#;
        let (model, diags) = run(&[("x.rs", src)]);
        assert!(
            model.edges.contains_key(&("S.a".into(), "S.b".into())),
            "{:?}",
            model.edges
        );
        assert!(diags.iter().any(|d| d.rule == Rule::LockOrder), "{diags:?}");
    }

    #[test]
    fn temporaries_and_dropped_guards_do_not_hold() {
        let src = r#"
            struct S { a: Mutex<u8>, b: Mutex<u8> }
            impl S {
                fn ok(&self) {
                    self.a.lock().checked_add(1);
                    let ga = self.b.lock();
                    drop(ga);
                    let gb = self.a.lock();
                }
            }
        "#;
        let (model, diags) = run(&[("x.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(model.edges.is_empty(), "{:?}", model.edges);
    }

    #[test]
    fn block_scope_ends_a_guard() {
        let src = r#"
            struct S { a: Mutex<u8>, b: Mutex<u8> }
            impl S {
                fn scoped(&self) {
                    { let ga = self.a.lock(); }
                    let gb = self.b.lock();
                }
            }
        "#;
        let (model, _) = run(&[("x.rs", src)]);
        assert!(model.edges.is_empty(), "{:?}", model.edges);
    }

    #[test]
    fn same_field_double_hold_is_a_self_cycle() {
        let src = r#"
            struct S { shards: Vec<Mutex<u8>> }
            impl S {
                fn both(&self, i: usize, j: usize) {
                    let gi = self.shards[i].lock();
                    let gj = self.shards[j].lock();
                }
            }
        "#;
        let (_, diags) = run(&[("x.rs", src)]);
        let cy: Vec<_> = diags.iter().filter(|d| d.rule == Rule::LockOrder).collect();
        assert_eq!(cy.len(), 1, "{diags:?}");
        assert_eq!(cy[0].ident, "S.shards");
    }

    #[test]
    fn loop_alias_resolves_to_the_field() {
        let src = r#"
            struct S { shards: Vec<Mutex<u8>> }
            impl S {
                fn sweep(&self) {
                    for shard in self.shards.iter() {
                        shard.lock().checked_add(1);
                    }
                }
            }
        "#;
        let (model, diags) = run(&[("x.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(model.held_sets["S::sweep"].contains("S.shards"));
    }

    #[test]
    fn relaxed_on_publisher_field_fires() {
        let src = r#"
            struct S {
                // ctlint: publishes(snapshot)
                epoch: AtomicU64,
                snapshot: Mutex<u8>,
            }
            impl S {
                fn bad(&self) -> u64 { self.epoch.load(Ordering::Relaxed) }
                fn good(&self) -> u64 { self.epoch.load(Ordering::Acquire) }
            }
        "#;
        let (model, diags) = run(&[("x.rs", src)]);
        assert!(model.publishers.contains_key("S.epoch"));
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::AtomicOrdering)
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].ident, "epoch");
    }

    #[test]
    fn guard_across_parallel_map_fires() {
        let src = r#"
            struct S { state: Mutex<u8> }
            impl S {
                fn bad(&self, items: &[u8]) {
                    let g = self.state.lock();
                    parallel_map(items, 4, |_c, xs| xs.to_vec());
                }
                fn good(&self, items: &[u8]) {
                    { let g = self.state.lock(); }
                    parallel_map(items, 4, |_c, xs| xs.to_vec());
                }
            }
        "#;
        let (_, diags) = run(&[("x.rs", src)]);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::LockAcrossCallback)
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].ident, "S.state");
    }

    #[test]
    fn ungated_kernel_fires_and_gated_is_clean() {
        let bad = r#"
            #[target_feature(enable = "avx2")]
            unsafe fn kern8(x: &mut [u8]) {}
            fn wrapper(x: &mut [u8]) {
                // SAFETY: the dispatcher checked CPUID.
                unsafe { kern8(x) }
            }
            fn root(x: &mut [u8]) { wrapper(x); }
        "#;
        let (_, diags) = run(&[("bad.rs", bad)]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::SimdDispatchGate && d.ident == "kern8"),
            "{diags:?}"
        );

        let good = r#"
            fn kern_available() -> bool { true }
            #[target_feature(enable = "avx2")]
            unsafe fn kern8(x: &mut [u8]) {}
            fn wrapper(x: &mut [u8]) {
                // SAFETY: kern_available() gates every call site on CPUID.
                unsafe { kern8(x) }
            }
            fn root(x: &mut [u8]) {
                if kern_available() { wrapper(x); }
            }
        "#;
        let (_, diags) = run(&[("good.rs", good)]);
        assert!(
            diags.iter().all(|d| d.rule != Rule::SimdDispatchGate),
            "{diags:?}"
        );
    }

    #[test]
    fn simd_safety_comment_must_state_the_gate() {
        let src = r#"
            fn kern_available() -> bool { true }
            #[target_feature(enable = "avx2")]
            unsafe fn kern8(x: &mut [u8]) {}
            fn wrapper(x: &mut [u8]) {
                // SAFETY: pointer arithmetic is in bounds.
                unsafe { kern8(x) }
            }
            fn root(x: &mut [u8]) { if kern_available() { wrapper(x); } }
        "#;
        let (_, diags) = run(&[("x.rs", src)]);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::SimdDispatchGate)
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].message.contains("SAFETY"), "{}", hits[0].message);
    }

    #[test]
    fn model_render_is_file_order_independent() {
        let a = (
            "a.rs",
            "struct A { m: Mutex<u8> }\nimpl A { fn f(&self) { let g = self.m.lock(); other(); } }",
        );
        let b = ("b.rs", "struct B { n: Mutex<u8> }\nimpl B { fn g(&self) { self.n.lock().checked_add(1); } }\nfn other() {}");
        let (m1, _) = run(&[a, b]);
        let (m2, _) = run(&[b, a]);
        assert_eq!(m1.render(), m2.render());
    }
}
