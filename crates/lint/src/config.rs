//! Lint configuration: the built-in secret seed list plus `ctlint.toml`.
//!
//! `ctlint.toml` is parsed with a small hand-rolled reader (no external TOML
//! crate in the offline build). Two table shapes are understood:
//!
//! ```toml
//! # Extra secret marks, merged with the built-in seed list.
//! [secrets]
//! types = ["MySecretType"]
//! functions = ["derive_my_secret"]
//!
//! # Extra telemetry sink names (merged with the built-in
//! # observe/emit/record list). A secret-tainted argument reaching any of
//! # these fires `telemetry-sink`.
//! [telemetry]
//! sinks = ["count_outcome"]
//!
//! # One [[allow]] block per deliberate secret-hygiene exception. Every
//! # entry MUST match at least one finding or the lint fails ("stale
//! # allow") — suppressions cannot outlive the code they excuse.
//! [[allow]]
//! rule = "secret-index"        # a hygiene-family rule id
//! file = "crates/crypto/src/aes.rs"   # suffix match on the path
//! ident = "SBOX"               # the diagnostic's anchor identifier
//! reason = "AES S-box lookups are deliberate; see DESIGN.md"
//!
//! # [[determinism]] blocks excuse determinism-family findings (wall-clock
//! # boundaries, order-insensitive hash-map drains, …) with the exact same
//! # mandatory-reason / stale-entry-fails semantics. The sections are
//! # deliberately separate: a determinism waiver can never silence a
//! # secret-hygiene finding and vice versa.
//! [[determinism]]
//! rule = "wall-clock"
//! file = "crates/telemetry/src/span.rs"
//! ident = "Instant"
//! reason = "the sanctioned wall-timer boundary"
//!
//! # [[lifetime]] blocks excuse `secret-lifetime` findings — the crypto
//! # shortcuts (session caches, STEK history) the simulation deliberately
//! # models because the paper measures their harm. Same contract: a
//! # mandatory reason, and a stale entry fails the lint.
//! [[lifetime]]
//! rule = "secret-lifetime"
//! file = "crates/tls/src/cache.rs"
//! ident = "entries"
//! reason = "session-ID resumption IS the measured shortcut"
//!
//! # [[concurrency]] blocks excuse concurrency-family findings
//! # (`lock-order`, `atomic-ordering`, `lock-across-callback`,
//! # `simd-dispatch-gate`). Same contract: a mandatory reason, and a
//! # stale entry fails the lint.
//! [[concurrency]]
//! rule = "atomic-ordering"
//! file = "crates/example/src/counter.rs"
//! ident = "epoch"
//! reason = "single-writer flag; readers tolerate staleness by design"
//! ```
//!
//! `reason` is mandatory: an exception without a recorded justification is a
//! config error.

use crate::diag::{Diagnostic, Rule, RuleFamily};

/// One `[[allow]]` or `[[determinism]]` entry from `ctlint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Which config section this entry came from. The entry may only
    /// silence rules of the matching family.
    pub section: RuleFamily,
    /// Rule id this entry silences.
    pub rule: String,
    /// Path suffix the finding's file must end with.
    pub file: String,
    /// Anchor identifier the finding must carry.
    pub ident: String,
    /// Mandatory one-line justification.
    pub reason: String,
}

impl Allow {
    /// Does this entry cover `d`?
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule.id() && d.file.ends_with(&self.file) && self.ident == d.ident
    }

    /// Compact display form for stale-entry errors — names the section so
    /// a dead entry is findable in `ctlint.toml` without grepping both.
    pub fn describe(&self) -> String {
        format!(
            "{} rule={} file={} ident={}",
            self.section.section(),
            self.rule,
            self.file,
            self.ident
        )
    }
}

/// Full analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Type names treated as secret-bearing even without a
    /// `// ctlint: secret` annotation. Annotations in source extend this.
    pub secret_types: Vec<String>,
    /// Functions whose return value is secret-tainted wherever it lands.
    pub secret_fns: Vec<String>,
    /// Call names treated as telemetry sinks: a secret-tainted argument
    /// reaching one of these fires [`Rule::TelemetrySink`]. Counters,
    /// histograms and event streams only ever carry public scalars and
    /// `&'static str` labels (the no-secret-bytes rule in ts-telemetry).
    pub telemetry_sinks: Vec<String>,
    /// Deliberate, justified exceptions.
    pub allows: Vec<Allow>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // The seed list: key-material types of the TLS stack under
            // study. `// ctlint: secret` annotations in source add to it.
            secret_types: [
                "ConnectionKeys",
                "DirectionKeys",
                "Stek",
                "DhKeyPair",
                "X25519KeyPair",
                "HmacDrbg",
                "HmacSha256",
                "SessionState",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            secret_fns: ["master_secret", "key_block", "shared_secret", "prf"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            // The ts-telemetry entry points. Deliberately NOT `inc`/`add`:
            // those names collide with bignum limb arithmetic, which is
            // tainted by design.
            telemetry_sinks: ["observe", "emit", "record"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            allows: Vec::new(),
        }
    }
}

/// A `ctlint.toml` parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in `ctlint.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ctlint.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parse `ctlint.toml` text and merge it over the defaults.
    pub fn from_toml(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        // Which table the cursor is inside: none, [secrets], or the index
        // of the current [[allow]] entry.
        enum Section {
            None,
            Secrets,
            Telemetry,
            Allow(usize),
        }
        let mut section = Section::None;
        let mut partial: Vec<PartialAllow> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                partial.push(PartialAllow::new(RuleFamily::Hygiene));
                section = Section::Allow(partial.len() - 1);
            } else if line == "[[determinism]]" {
                partial.push(PartialAllow::new(RuleFamily::Determinism));
                section = Section::Allow(partial.len() - 1);
            } else if line == "[[lifetime]]" {
                partial.push(PartialAllow::new(RuleFamily::Lifetime));
                section = Section::Allow(partial.len() - 1);
            } else if line == "[[concurrency]]" {
                partial.push(PartialAllow::new(RuleFamily::Concurrency));
                section = Section::Allow(partial.len() - 1);
            } else if line == "[secrets]" {
                section = Section::Secrets;
            } else if line == "[telemetry]" {
                section = Section::Telemetry;
            } else if line.starts_with('[') {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown table {line}"),
                });
            } else {
                let (key, value) = split_kv(&line).ok_or_else(|| ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                })?;
                match &section {
                    Section::None => {
                        return Err(ConfigError {
                            line: lineno,
                            message: "key outside any table".to_string(),
                        });
                    }
                    Section::Secrets => {
                        let items = parse_string_array(value).ok_or_else(|| ConfigError {
                            line: lineno,
                            message: format!("`{key}` must be an array of strings"),
                        })?;
                        match key {
                            "types" => cfg.secret_types.extend(items),
                            "functions" => cfg.secret_fns.extend(items),
                            other => {
                                return Err(ConfigError {
                                    line: lineno,
                                    message: format!("unknown [secrets] key `{other}`"),
                                });
                            }
                        }
                    }
                    Section::Telemetry => {
                        let items = parse_string_array(value).ok_or_else(|| ConfigError {
                            line: lineno,
                            message: format!("`{key}` must be an array of strings"),
                        })?;
                        match key {
                            "sinks" => cfg.telemetry_sinks.extend(items),
                            other => {
                                return Err(ConfigError {
                                    line: lineno,
                                    message: format!("unknown [telemetry] key `{other}`"),
                                });
                            }
                        }
                    }
                    Section::Allow(i) => {
                        let s = parse_string(value).ok_or_else(|| ConfigError {
                            line: lineno,
                            message: format!("`{key}` must be a quoted string"),
                        })?;
                        let p = &mut partial[*i];
                        match key {
                            "rule" => p.rule = Some((s, lineno)),
                            "file" => p.file = Some(s),
                            "ident" => p.ident = Some(s),
                            "reason" => p.reason = Some(s),
                            other => {
                                return Err(ConfigError {
                                    line: lineno,
                                    message: format!(
                                        "unknown {} key `{other}`",
                                        p.section.section()
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }

        for p in partial {
            cfg.allows.push(p.finish()?);
        }
        Ok(cfg)
    }

    /// True if `name` is a configured secret type (seed list + toml).
    pub fn is_secret_type(&self, name: &str) -> bool {
        self.secret_types.iter().any(|t| t == name)
    }
}

struct PartialAllow {
    section: RuleFamily,
    rule: Option<(String, usize)>,
    file: Option<String>,
    ident: Option<String>,
    reason: Option<String>,
}

impl PartialAllow {
    fn new(section: RuleFamily) -> Self {
        PartialAllow {
            section,
            rule: None,
            file: None,
            ident: None,
            reason: None,
        }
    }

    fn finish(self) -> Result<Allow, ConfigError> {
        let sec = self.section.section();
        let (rule, line) = self.rule.ok_or_else(|| ConfigError {
            line: 0,
            message: format!("{sec} entry missing `rule`"),
        })?;
        let known = Rule::all().iter().copied().find(|r| r.id() == rule);
        let known = match known {
            Some(r) => r,
            None => {
                return Err(ConfigError {
                    line,
                    message: format!("unknown rule id `{rule}`"),
                })
            }
        };
        // Family check: `[[allow]]` may only name hygiene rules,
        // `[[determinism]]` only determinism rules. Cross-section entries
        // would otherwise silently work, eroding the split.
        if known.family() != self.section {
            return Err(ConfigError {
                line,
                message: format!(
                    "rule `{rule}` belongs in {}, not {sec}",
                    known.family().section()
                ),
            });
        }
        let missing = |field: &str| ConfigError {
            line,
            message: format!("{sec} entry for rule `{rule}` missing `{field}`"),
        };
        let reason = self.reason.ok_or_else(|| missing("reason"))?;
        if reason.trim().is_empty() {
            return Err(ConfigError {
                line,
                message: format!("{sec} entry for rule `{rule}` has an empty reason"),
            });
        }
        let file = self.file.ok_or_else(|| missing("file"))?;
        let ident = self.ident.ok_or_else(|| missing("ident"))?;
        Ok(Allow {
            section: self.section,
            rule,
            file,
            ident,
            reason,
        })
    }
}

/// Drop a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_kv(line: &str) -> Option<(&str, &str)> {
    let eq = line.find('=')?;
    Some((line[..eq].trim(), line[eq + 1..].trim()))
}

fn parse_string(v: &str) -> Option<String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Some(v[1..v.len() - 1].to_string())
    } else {
        None
    }
}

fn parse_string_array(v: &str) -> Option<Vec<String>> {
    let v = v.trim();
    let inner = v.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_list_has_the_stack_key_types() {
        let cfg = Config::default();
        assert!(cfg.is_secret_type("Stek"));
        assert!(cfg.is_secret_type("ConnectionKeys"));
        assert!(!cfg.is_secret_type("Cdf"));
    }

    #[test]
    fn parses_allows_and_secrets() {
        let cfg = Config::from_toml(
            r#"
            # comment
            [secrets]
            types = ["Extra"]          # inline comment
            functions = ["hkdf_extract"]

            [[allow]]
            rule = "secret-index"
            file = "crates/crypto/src/aes.rs"
            ident = "SBOX"
            reason = "table AES is deliberate"
            "#,
        )
        .unwrap();
        assert!(cfg.is_secret_type("Extra"));
        assert!(cfg.is_secret_type("Stek"));
        assert!(cfg.secret_fns.iter().any(|f| f == "hkdf_extract"));
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].ident, "SBOX");
    }

    #[test]
    fn telemetry_sinks_extend_the_builtin_list() {
        let cfg = Config::from_toml("[telemetry]\nsinks = [\"count_outcome\"]\n").unwrap();
        for builtin in ["observe", "emit", "record"] {
            assert!(
                cfg.telemetry_sinks.iter().any(|s| s == builtin),
                "{builtin}"
            );
        }
        assert!(cfg.telemetry_sinks.iter().any(|s| s == "count_outcome"));
    }

    #[test]
    fn unknown_telemetry_key_is_an_error() {
        let err = Config::from_toml("[telemetry]\nsink = [\"x\"]\n").unwrap_err();
        assert!(err.message.contains("unknown [telemetry] key"), "{err}");
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let err = Config::from_toml(
            "[[allow]]\nrule = \"secret-leak\"\nfile = \"x.rs\"\nident = \"K\"\n",
        )
        .unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_rule_id_is_an_error() {
        let err = Config::from_toml(
            "[[allow]]\nrule = \"no-such\"\nfile = \"x\"\nident = \"y\"\nreason = \"z\"\n",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown rule id"), "{err}");
    }

    #[test]
    fn parses_determinism_section() {
        let cfg = Config::from_toml(
            "[[determinism]]\nrule = \"wall-clock\"\nfile = \"span.rs\"\nident = \"Instant\"\nreason = \"wall timer boundary\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].section, RuleFamily::Determinism);
        assert_eq!(cfg.allows[0].rule, "wall-clock");
    }

    #[test]
    fn parses_concurrency_section() {
        let cfg = Config::from_toml(
            "[[concurrency]]\nrule = \"lock-order\"\nfile = \"cache.rs\"\nident = \"shards\"\nreason = \"fixed-index fallback order\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].section, RuleFamily::Concurrency);
        assert_eq!(cfg.allows[0].rule, "lock-order");
    }

    #[test]
    fn concurrency_rule_in_allow_section_is_an_error() {
        let err = Config::from_toml(
            "[[allow]]\nrule = \"atomic-ordering\"\nfile = \"x.rs\"\nident = \"epoch\"\nreason = \"r\"\n",
        )
        .unwrap_err();
        assert!(err.message.contains("belongs in [[concurrency]]"), "{err}");
    }

    #[test]
    fn determinism_rule_in_allow_section_is_an_error() {
        let err = Config::from_toml(
            "[[allow]]\nrule = \"wall-clock\"\nfile = \"x.rs\"\nident = \"Instant\"\nreason = \"r\"\n",
        )
        .unwrap_err();
        assert!(err.message.contains("belongs in [[determinism]]"), "{err}");
    }

    #[test]
    fn hygiene_rule_in_determinism_section_is_an_error() {
        let err = Config::from_toml(
            "[[determinism]]\nrule = \"secret-leak\"\nfile = \"x.rs\"\nident = \"K\"\nreason = \"r\"\n",
        )
        .unwrap_err();
        assert!(err.message.contains("belongs in [[allow]]"), "{err}");
    }

    #[test]
    fn determinism_entry_without_reason_is_an_error() {
        let err = Config::from_toml(
            "[[determinism]]\nrule = \"wall-clock\"\nfile = \"x.rs\"\nident = \"Instant\"\n",
        )
        .unwrap_err();
        assert!(err.message.contains("[[determinism]]"), "{err}");
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn stale_describe_names_the_originating_section() {
        let cfg = Config::from_toml(
            "[[allow]]\nrule = \"secret-index\"\nfile = \"a.rs\"\nident = \"T\"\nreason = \"r\"\n\
             [[determinism]]\nrule = \"unordered-iteration\"\nfile = \"b.rs\"\nident = \"m\"\nreason = \"r\"\n",
        )
        .unwrap();
        assert!(
            cfg.allows[0].describe().starts_with("[[allow]] "),
            "{}",
            cfg.allows[0].describe()
        );
        assert!(
            cfg.allows[1].describe().starts_with("[[determinism]] "),
            "{}",
            cfg.allows[1].describe()
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::from_toml(
            "[[allow]]\nrule = \"secret-leak\"\nfile = \"a#b.rs\"\nident = \"K\"\nreason = \"ok\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allows[0].file, "a#b.rs");
    }
}
