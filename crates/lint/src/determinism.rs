//! The determinism rule family.
//!
//! The repro's scientific claim is that every table, figure, and
//! `--telemetry-json` snapshot is a *pure function of the seed*: two runs
//! with the same `(seed, size, experiment)` — on different machines, with
//! different worker counts, under different ASLR/`HashMap` randomization —
//! must produce byte-identical output. These rules prove the property
//! statically instead of hoping for it:
//!
//! * **`unordered-iteration`** — a `HashMap`/`HashSet` (std's hash
//!   collections randomize iteration order per process via `RandomState`)
//!   is iterated, drained, or collected such that the visit order can
//!   escape into the surrounding computation. Lookups (`get`, `insert`,
//!   `entry`, indexing, …) never fire: hash maps are fine — even
//!   encouraged, they are the fast path — as long as order never escapes.
//!   Escapes are excused by an explicit sort of the collected result or by
//!   re-keying into another map/set (insertion into a keyed collection is
//!   order-insensitive).
//! * **`wall-clock`** — `Instant::now`/`SystemTime::now` anywhere outside
//!   the sanctioned boundary (the telemetry wall timers and `repro`'s
//!   stderr progress lines, excused via `[[determinism]]` entries in
//!   `ctlint.toml`). Experiment logic must use the simnet virtual clock.
//! * **`ambient-entropy`** — `thread_rng`, `RandomState::new`,
//!   `from_entropy`, `env::var`-derived seeds, `process::id`: any entropy
//!   source that is not a seeded `HmacDrbg` stream.
//! * **`unordered-reduction`** — mutating captured state from inside a
//!   `ts_core::par::parallel_map` closure. Worker threads drain chunks in
//!   real-time order, so cross-chunk accumulation (pushes, string concat,
//!   first-wins inserts, `+=` on floats) depends on the worker count; the
//!   closure must *return* per-chunk values instead (the runtime
//!   re-concatenates them in chunk order).
//!
//! Like the secret-hygiene rules, the analysis is token-based and
//! per-function, with `#[cfg(test)]` code exempt (tests may freely iterate
//! hash maps — they assert on contents, not order). Hash-ness propagates
//! through the workspace type index: a field or function whose declared
//! type mentions `HashMap`/`HashSet` taints the values read from it.

use std::collections::{BTreeSet, HashSet};

use crate::diag::{Diagnostic, Rule};
use crate::index::{matching, FileIndex, FnDef};
use crate::lexer::{TokKind, Token};

/// Std collections with randomized iteration order.
fn is_hash_type(name: &str) -> bool {
    name == "HashMap" || name == "HashSet"
}

/// Ordered (or order-insensitive keyed) collect targets: collecting a hash
/// iterator *into* one of these re-keys the elements, and keyed insertion
/// is order-insensitive.
const ORDERED_COLLECT_TARGETS: &[&str] = &["BTreeMap", "BTreeSet", "HashMap", "HashSet"];

/// Projections that de-taint: point lookups and order-insensitive whole-map
/// operations. A hash map used only through these is deterministic.
const LOOKUP_METHODS: &[&str] = &[
    "get",
    "get_mut",
    "get_key_value",
    "contains_key",
    "contains",
    "insert",
    "remove",
    "remove_entry",
    "entry",
    "len",
    "is_empty",
    "clear",
    "retain",
    "reserve",
    "shrink_to_fit",
    "capacity",
    "extend",
    "append",
    "take",
    "replace",
];

/// Projections that preserve hash-ness without iterating: smart-pointer /
/// lock / Result unwrapping and cloning.
const TRANSPARENT_METHODS: &[&str] = &[
    "clone",
    "to_owned",
    "as_ref",
    "as_mut",
    "borrow",
    "borrow_mut",
    "read",
    "write",
    "lock",
    "unwrap",
    "expect",
];

/// Methods that start iterating the collection — from here on, order is
/// live and something must neutralize it.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Iterator adapters that pass order through unchanged.
const ITER_ADAPTERS: &[&str] = &[
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "cloned",
    "copied",
    "enumerate",
    "zip",
    "chain",
    "take",
    "skip",
    "step_by",
    "inspect",
    "by_ref",
];

/// Order-insensitive terminal consumers: the result is the same whatever
/// order the elements arrive in.
const ORDER_INSENSITIVE_CONSUMERS: &[&str] = &["count", "len", "sum", "min", "max", "all", "any"];

/// Sorting calls that neutralize a `collect` into an ordered container.
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Mutating calls that, applied to a *captured* binding inside a
/// `parallel_map` closure, accumulate cross-chunk state in worker order.
const CAPTURE_MUT_METHODS: &[&str] = &[
    "push", "push_str", "insert", "extend", "append", "remove", "drain", "entry", "clear",
    "truncate", "sort", "swap",
];

/// Compound-assignment operators — `acc += x` on a captured float/string
/// is the classic unordered reduction.
const COMPOUND_ASSIGN: &[&str] = &["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="];

/// The workspace-wide hash-collection model: which field and function
/// names resolve to a hash-keyed collection. Printed by `ts-lint --model`.
pub struct DeterminismModel {
    /// Struct fields whose declared type mentions `HashMap`/`HashSet`
    /// (possibly behind `RwLock`, `Arc`, …). Reading one of these yields a
    /// hash-tainted value.
    pub hash_fields: BTreeSet<String>,
    /// Functions whose return type mentions `HashMap`/`HashSet`; their
    /// call results are hash-tainted at the call site.
    pub hash_fns: BTreeSet<String>,
}

impl DeterminismModel {
    /// Build the model from the file indexes. Vendored code is excluded:
    /// matching is by bare name, and e.g. proptest's `generate` (returns a
    /// `HashSet` strategy value) must not taint the workspace's unrelated
    /// `generate` functions.
    pub fn build<F: AsRef<FileIndex>>(files: &[F]) -> DeterminismModel {
        let mut hash_fields = BTreeSet::new();
        let mut hash_fns = BTreeSet::new();
        for f in files {
            let f = f.as_ref();
            if is_vendored(&f.path) {
                continue;
            }
            for t in &f.types {
                if t.in_test {
                    continue;
                }
                for fd in &t.fields {
                    if fd.type_idents.iter().any(|n| is_hash_type(n)) {
                        hash_fields.insert(fd.name.clone());
                    }
                }
            }
            for func in &f.fns {
                if func.in_test {
                    continue;
                }
                if func.return_idents.iter().any(|n| is_hash_type(n)) {
                    hash_fns.insert(func.name.clone());
                }
            }
        }
        DeterminismModel {
            hash_fields,
            hash_fns,
        }
    }
}

fn is_vendored(path: &str) -> bool {
    path.starts_with("vendor/") || path.contains("/vendor/")
}

/// Run the determinism family over all files, appending raw diagnostics.
pub fn check<F: AsRef<FileIndex>>(files: &[F], diags: &mut Vec<Diagnostic>) {
    let model = DeterminismModel::build(files);
    for f in files {
        let f = f.as_ref();
        for func in &f.fns {
            if func.in_test {
                continue;
            }
            let toks = &f.tokens[func.body.0..func.body.1];
            check_wall_clock(f, toks, diags);
            check_ambient_entropy(f, toks, diags);
            check_unordered_iteration(f, func, toks, &model, diags);
            check_unordered_reduction(f, toks, diags);
        }
    }
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

fn check_wall_clock(f: &FileIndex, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "Instant" && t.text != "SystemTime") {
            continue;
        }
        let calls_now = toks.get(i + 1).is_some_and(|x| x.is_punct("::"))
            && toks.get(i + 2).is_some_and(|x| x.is_ident("now"))
            && toks.get(i + 3).is_some_and(|x| x.is_punct("("));
        if calls_now {
            diags.push(Diagnostic {
                rule: Rule::WallClock,
                file: f.path.clone(),
                line: t.line,
                ident: t.text.clone(),
                message: format!(
                    "`{}::now()` reads the wall clock; experiment logic must use the \
                     simnet virtual clock so results are a pure function of the seed — \
                     timing boundaries need a `[[determinism]]` entry in ctlint.toml",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// ambient-entropy
// ---------------------------------------------------------------------------

fn check_ambient_entropy(f: &FileIndex, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    let mut flag = |i: usize, ident: &str, what: &str| {
        diags.push(Diagnostic {
            rule: Rule::AmbientEntropy,
            file: f.path.clone(),
            line: toks[i].line,
            ident: ident.to_string(),
            message: format!(
                "{what} injects ambient entropy; every random draw must come from a \
                 seeded `HmacDrbg` stream or the run stops being reproducible"
            ),
        });
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is_call = toks.get(i + 1).is_some_and(|x| x.is_punct("("));
        match t.text.as_str() {
            "thread_rng" | "from_entropy" if next_is_call => {
                flag(i, &t.text, "`thread_rng`/`from_entropy`")
            }
            "RandomState" => flag(i, "RandomState", "`RandomState` (per-process hasher seed)"),
            "process" | "env" => {
                let path_call = toks.get(i + 1).is_some_and(|x| x.is_punct("::"))
                    && toks.get(i + 3).is_some_and(|x| x.is_punct("("));
                if !path_call {
                    continue;
                }
                let member = &toks[i + 2];
                if t.text == "process" && member.is_ident("id") {
                    flag(i, "process", "`process::id()`");
                } else if t.text == "env" && (member.is_ident("var") || member.is_ident("var_os")) {
                    flag(i, "env", "an environment-variable read (`env::var`)");
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// unordered-iteration
// ---------------------------------------------------------------------------

/// What a projection chain rooted at a hash-tainted mention resolves to.
enum ChainOutcome {
    /// De-tainted: a point lookup, an order-insensitive consumer, or a
    /// re-keying collect. Nothing to report.
    Clean,
    /// No projection at all — order only escapes if the bare mention is a
    /// `for`-loop iterable.
    Bare,
    /// Iteration started and the chain ended (or hit an order-sensitive
    /// consumer) without neutralizing the order.
    Escapes { line: u32, via: String },
    /// `collect()` into an ordered container — deterministic only if the
    /// bound result is sorted later in the function.
    CollectUnordered { line: u32 },
}

fn check_unordered_iteration(
    f: &FileIndex,
    func: &FnDef,
    toks: &[Token],
    model: &DeterminismModel,
    diags: &mut Vec<Diagnostic>,
) {
    let tainted = hash_bindings(toks, func, model);
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let after_dot = i > 0 && toks[i - 1].is_punct(".");
        let next_is_call = toks.get(i + 1).is_some_and(|x| x.is_punct("("));
        let is_fn_def = i > 0 && toks[i - 1].is_ident("fn");
        let is_call_root = model.hash_fns.contains(&t.text) && next_is_call && !is_fn_def;
        let is_value_root = if after_dot {
            model.hash_fields.contains(&t.text)
        } else {
            tainted.contains(&t.text)
        };
        if !is_call_root && !is_value_root {
            continue;
        }
        let chain_start = if is_call_root && !is_value_root {
            matching(toks, i + 1, toks.len()) + 1
        } else {
            i + 1
        };
        match walk_chain(toks, chain_start) {
            ChainOutcome::Clean => {}
            ChainOutcome::Bare => {
                if for_loop_iterable(toks, i) {
                    diags.push(iteration_diag(
                        f,
                        t.line,
                        &t.text,
                        "a `for` loop iterates it directly",
                    ));
                }
            }
            ChainOutcome::Escapes { line, via } => {
                diags.push(iteration_diag(f, line, &t.text, &via));
            }
            ChainOutcome::CollectUnordered { line } => {
                if !collect_is_neutralized(toks, i) {
                    diags.push(iteration_diag(
                        f,
                        line,
                        &t.text,
                        "it is collected into an ordered container with no later sort",
                    ));
                }
            }
        }
    }
}

fn iteration_diag(f: &FileIndex, line: u32, ident: &str, via: &str) -> Diagnostic {
    Diagnostic {
        rule: Rule::UnorderedIteration,
        file: f.path.clone(),
        line,
        ident: ident.to_string(),
        message: format!(
            "hash-backed `{ident}` leaks its randomized iteration order: {via} — use \
             `BTreeMap`/`BTreeSet`, sort the collected result, or keep the map \
             lookup-only"
        ),
    }
}

/// The set of local bindings holding a hash collection: parameters whose
/// declared type mentions one, plus `let` bindings whose statement names a
/// hash type or calls a hash-returning function. Single forward pass —
/// bindings precede uses.
fn hash_bindings(toks: &[Token], func: &FnDef, model: &DeterminismModel) -> HashSet<String> {
    let mut tainted: HashSet<String> = HashSet::new();
    for (name, type_idents) in &func.params {
        if type_idents.iter().any(|n| is_hash_type(n)) {
            tainted.insert(name.clone());
        }
    }
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        // pattern [: annotation] = initialiser ;   (depth-0 `=` and `;`)
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut eq = None;
        while j < toks.len() {
            let x = &toks[j];
            if x.kind == TokKind::Punct {
                match x.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "=" if depth == 0 => {
                        eq = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i = j + 1;
            continue;
        };
        let mut end = eq + 1;
        let mut depth = 0usize;
        while end < toks.len() {
            let x = &toks[end];
            if x.kind == TokKind::Punct {
                match x.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            end += 1;
        }
        let stmt = &toks[i..end];
        let names_hash_type = stmt
            .iter()
            .any(|x| x.kind == TokKind::Ident && is_hash_type(&x.text));
        let calls_hash_fn = stmt.windows(2).any(|w| {
            w[0].kind == TokKind::Ident && model.hash_fns.contains(&w[0].text) && w[1].is_punct("(")
        });
        // `let m2 = m1;` / `let guard = self.vhosts.read().unwrap();` — the
        // initialiser *is* the hash collection (a tainted root projected
        // only through transparent steps).
        let alias = init_resolves_to_hash(&toks[eq + 1..end], &tainted, model);
        if names_hash_type || calls_hash_fn || alias {
            for x in &toks[i + 1..eq] {
                // pattern idents only — stop at a type annotation so
                // `let n: usize = map_like();` doesn't taint `usize`.
                if x.is_punct(":") {
                    break;
                }
                if x.kind == TokKind::Ident
                    && !matches!(x.text.as_str(), "mut" | "ref" | "_" | "box")
                    && !x.text.starts_with(char::is_uppercase)
                {
                    tainted.insert(x.text.clone());
                }
            }
        }
        i = eq + 1;
    }
    tainted
}

/// Does an initialiser expression evaluate to a hash collection itself —
/// a tainted binding / hash field / hash-fn call whose remaining chain is
/// only transparent projections (`&m`, `m.clone()`,
/// `self.vhosts.read().unwrap()`)? Such a `let` aliases the collection and
/// the binding inherits the taint.
fn init_resolves_to_hash(
    init: &[Token],
    tainted: &HashSet<String>,
    model: &DeterminismModel,
) -> bool {
    // Find the hash root inside the expression.
    let mut root = None;
    for (p, t) in init.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let after_dot = p > 0 && init[p - 1].is_punct(".");
        let next_is_call = init.get(p + 1).is_some_and(|x| x.is_punct("("));
        let hit = if after_dot {
            model.hash_fields.contains(&t.text)
        } else {
            tainted.contains(&t.text) || (model.hash_fns.contains(&t.text) && next_is_call)
        };
        if hit {
            root = Some((p, !after_dot && !tainted.contains(&t.text) && next_is_call));
            break;
        }
    }
    let Some((p, is_call)) = root else {
        return false;
    };
    let mut j = p + 1;
    if is_call {
        j = matching(init, j, init.len()) + 1;
    }
    // Every remaining step must be transparent.
    while j < init.len() {
        if init[j].is_punct("?") {
            j += 1;
            continue;
        }
        if !init[j].is_punct(".") {
            return false;
        }
        let Some((name, _, after)) = chain_step(init, j) else {
            return false;
        };
        if !TRANSPARENT_METHODS.contains(&name.as_str()) {
            return false;
        }
        j = after;
    }
    true
}

/// Walk the projection chain starting at `j` (the first token after the
/// tainted root mention, with call arguments already skipped).
fn walk_chain(toks: &[Token], mut j: usize) -> ChainOutcome {
    let mut iterated = false;
    let mut iter_line = 0u32;
    loop {
        let Some(t) = toks.get(j) else {
            return end_of_chain(iterated, iter_line);
        };
        if t.is_punct("?") {
            j += 1;
            continue;
        }
        if !iterated && t.is_punct("[") {
            // indexing is a point lookup
            return ChainOutcome::Clean;
        }
        if !t.is_punct(".") {
            return end_of_chain(iterated, iter_line);
        }
        let Some((name, name_idx, after)) = chain_step(toks, j) else {
            return end_of_chain(iterated, iter_line);
        };
        let n = name.as_str();
        if !iterated {
            if LOOKUP_METHODS.contains(&n) {
                return ChainOutcome::Clean;
            }
            if TRANSPARENT_METHODS.contains(&n) {
                j = after;
                continue;
            }
            if ITER_METHODS.contains(&n) {
                iterated = true;
                iter_line = toks[name_idx].line;
                j = after;
                continue;
            }
            // Unknown pre-iteration projection (a domain method returning
            // something else): assume it de-taints.
            return ChainOutcome::Clean;
        }
        if ITER_ADAPTERS.contains(&n) || TRANSPARENT_METHODS.contains(&n) {
            j = after;
            continue;
        }
        if ORDER_INSENSITIVE_CONSUMERS.contains(&n) {
            return ChainOutcome::Clean;
        }
        if n == "collect" {
            let targets = turbofish_idents(toks, name_idx + 1);
            if targets
                .iter()
                .any(|t| ORDERED_COLLECT_TARGETS.contains(&t.as_str()))
            {
                // re-keying into a map/set: insertion order never matters
                return ChainOutcome::Clean;
            }
            if !targets.is_empty() {
                return ChainOutcome::CollectUnordered {
                    line: toks[name_idx].line,
                };
            }
            // No turbofish: the target lives in the `let` annotation —
            // resolved by the caller via collect_is_neutralized.
            return ChainOutcome::CollectUnordered {
                line: toks[name_idx].line,
            };
        }
        // Order-sensitive consumer: next/find/position/fold/min_by_key/…
        return ChainOutcome::Escapes {
            line: toks[name_idx].line,
            via: format!("`.{n}(..)` consumes elements in visit order"),
        };
    }
}

fn end_of_chain(iterated: bool, iter_line: u32) -> ChainOutcome {
    if iterated {
        ChainOutcome::Escapes {
            line: iter_line,
            via: "the iterator escapes the projection chain (e.g. a `for` loop or a \
                  callee receives it)"
                .to_string(),
        }
    } else {
        ChainOutcome::Bare
    }
}

/// One `.method` step: returns `(name, name index, index after the
/// optional turbofish + argument list)`. `j` must point at the `.`.
fn chain_step(toks: &[Token], j: usize) -> Option<(String, usize, usize)> {
    let name_tok = toks.get(j + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut k = j + 2;
    if toks.get(k).is_some_and(|t| t.is_punct("::"))
        && toks.get(k + 1).is_some_and(|t| t.is_punct("<"))
    {
        k = skip_angles(toks, k + 1);
    }
    if toks.get(k).is_some_and(|t| t.is_punct("(")) {
        k = matching(toks, k, toks.len()) + 1;
    }
    Some((name_tok.text.clone(), j + 1, k))
}

/// Skip a `<...>` group starting at `open` (pointing at `<`); returns the
/// index just past the matching close, handling `>>` shift tokens.
fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
        }
        i += 1;
        if depth <= 0 {
            break;
        }
    }
    i
}

/// The identifiers inside a `::<...>` turbofish at `at` (pointing at the
/// `::`), or empty when there is none.
fn turbofish_idents(toks: &[Token], at: usize) -> Vec<String> {
    if !toks.get(at).is_some_and(|t| t.is_punct("::"))
        || !toks.get(at + 1).is_some_and(|t| t.is_punct("<"))
    {
        return Vec::new();
    }
    let end = skip_angles(toks, at + 1);
    toks[at + 1..end.min(toks.len())]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

/// Is the tainted mention at `i` the iterable of a `for` loop
/// (`for pat in map { … }` / `for pat in &map { … }`)?
fn for_loop_iterable(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let prev = &toks[j - 1];
        if prev.is_punct("&") || prev.is_punct("*") || prev.is_ident("mut") {
            j -= 1;
            continue;
        }
        return prev.is_ident("in");
    }
    false
}

/// A `collect()` with no (or an unordered) turbofish target is still
/// deterministic when (a) the enclosing `let` annotation names an ordered
/// collect target, or (b) the bound result is sorted later in the body.
fn collect_is_neutralized(toks: &[Token], mention: usize) -> bool {
    // Walk back to the statement's `let` (stopping at any statement or
    // block boundary).
    let mut j = mention;
    let mut let_idx = None;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        if t.is_ident("let") {
            let_idx = Some(j - 1);
            break;
        }
        j -= 1;
    }
    let Some(let_idx) = let_idx else { return false };
    // Annotation check: idents between `:` and `=` at depth 0.
    let mut k = let_idx + 1;
    let mut colon = None;
    let mut eq = None;
    let mut depth = 0i64;
    while k < toks.len() && k <= mention {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                "<<" => depth += 2,
                ")" | "]" | "}" | ">" => depth -= 1,
                ">>" => depth -= 2,
                ":" if depth == 0 && colon.is_none() => colon = Some(k),
                "=" if depth == 0 => {
                    eq = Some(k);
                    break;
                }
                _ => {}
            }
        }
        k += 1;
    }
    let Some(eq) = eq else { return false };
    if let Some(colon) = colon {
        let ordered = toks[colon + 1..eq].iter().any(|t| {
            t.kind == TokKind::Ident && ORDERED_COLLECT_TARGETS.contains(&t.text.as_str())
        });
        if ordered {
            return true;
        }
    }
    // Sort-suppression: the bound ident gets `.sort*()`-ed somewhere after
    // this statement.
    let binding = toks[let_idx + 1..colon.unwrap_or(eq)]
        .iter()
        .rev()
        .find(|t| {
            t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "_" | "box")
        })
        .map(|t| t.text.clone());
    let Some(binding) = binding else { return false };
    let mut m = mention;
    while m + 2 < toks.len() {
        if toks[m].is_ident(&binding)
            && toks[m + 1].is_punct(".")
            && toks[m + 2].kind == TokKind::Ident
            && SORT_METHODS.contains(&toks[m + 2].text.as_str())
        {
            return true;
        }
        m += 1;
    }
    false
}

// ---------------------------------------------------------------------------
// unordered-reduction
// ---------------------------------------------------------------------------

fn check_unordered_reduction(f: &FileIndex, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let is_call = t.is_ident("parallel_map")
            && toks.get(i + 1).is_some_and(|x| x.is_punct("("))
            && !(i > 0 && toks[i - 1].is_ident("fn"));
        if !is_call {
            i += 1;
            continue;
        }
        let open = i + 1;
        let close = matching(toks, open, toks.len());
        check_reduction_closure(f, &toks[open + 1..close], diags);
        i = close + 1;
    }
}

/// Inspect the closure argument of one `parallel_map(..)` call: flag
/// mutations of identifiers the closure does not bind itself.
fn check_reduction_closure(f: &FileIndex, args: &[Token], diags: &mut Vec<Diagnostic>) {
    // Find the top-level closure start: a `|` or `||` at depth 0.
    let mut depth = 0usize;
    let mut start = None;
    for (j, t) in args.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "|" | "||" if depth == 0 => {
                    start = Some(j);
                    break;
                }
                _ => {}
            }
        }
    }
    let Some(start) = start else { return };
    let mut bound: HashSet<String> = HashSet::new();
    let body_start = if args[start].is_punct("||") {
        start + 1
    } else {
        // idents between the `|`s are the closure parameters
        let mut j = start + 1;
        while j < args.len() && !args[j].is_punct("|") {
            if args[j].kind == TokKind::Ident && !matches!(args[j].text.as_str(), "mut" | "ref") {
                bound.insert(args[j].text.clone());
            }
            j += 1;
        }
        j + 1
    };
    let body = &args[body_start.min(args.len())..];
    // Bindings introduced inside the body: let / for patterns and nested
    // closure parameters.
    let mut j = 0usize;
    while j < body.len() {
        let t = &body[j];
        if t.is_ident("let") {
            let mut k = j + 1;
            while k < body.len() && !body[k].is_punct("=") && !body[k].is_punct(";") {
                if body[k].is_punct(":") {
                    break;
                }
                if body[k].kind == TokKind::Ident
                    && !matches!(body[k].text.as_str(), "mut" | "ref" | "_" | "box")
                    && !body[k].text.starts_with(char::is_uppercase)
                {
                    bound.insert(body[k].text.clone());
                }
                k += 1;
            }
            j = k;
        } else if t.is_ident("for") {
            let mut k = j + 1;
            while k < body.len() && !body[k].is_ident("in") {
                if body[k].kind == TokKind::Ident && !body[k].text.starts_with(char::is_uppercase) {
                    bound.insert(body[k].text.clone());
                }
                k += 1;
            }
            j = k;
        } else if t.is_punct("|") {
            // nested closure params
            let mut k = j + 1;
            while k < body.len() && !body[k].is_punct("|") {
                if body[k].kind == TokKind::Ident && !matches!(body[k].text.as_str(), "mut" | "ref")
                {
                    bound.insert(body[k].text.clone());
                }
                k += 1;
            }
            j = k + 1;
        } else {
            j += 1;
        }
    }
    // Mutation scan.
    for j in 0..body.len() {
        let t = &body[j];
        if t.kind != TokKind::Ident
            || t.text.starts_with(char::is_uppercase)
            || crate::rules::is_keyword(&t.text)
            || bound.contains(&t.text)
            || (j > 0 && body[j - 1].is_punct("."))
        {
            continue;
        }
        let method_mut = body.get(j + 1).is_some_and(|x| x.is_punct("."))
            && body.get(j + 2).is_some_and(|x| {
                x.kind == TokKind::Ident && CAPTURE_MUT_METHODS.contains(&x.text.as_str())
            })
            && body.get(j + 3).is_some_and(|x| x.is_punct("("));
        let compound = body.get(j + 1).is_some_and(|x| {
            x.kind == TokKind::Punct && COMPOUND_ASSIGN.contains(&x.text.as_str())
        });
        if method_mut || compound {
            let how = if compound {
                "a compound assignment".to_string()
            } else {
                format!("`.{}(..)`", body[j + 2].text)
            };
            diags.push(Diagnostic {
                rule: Rule::UnorderedReduction,
                file: f.path.clone(),
                line: t.line,
                ident: t.text.clone(),
                message: format!(
                    "captured `{}` is mutated ({how}) inside a `parallel_map` closure; \
                     worker threads drain chunks in real-time order, so cross-chunk \
                     accumulation depends on the worker count — return per-chunk values \
                     and combine them in chunk order instead",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::index::scan_file;

    fn run(src: &str) -> Vec<Diagnostic> {
        let idx = scan_file("fix.rs", src);
        crate::rules::analyze(&[idx], &Config::default())
            .into_iter()
            .filter(|d| d.rule.family() == crate::diag::RuleFamily::Determinism)
            .collect()
    }

    #[test]
    fn for_loop_over_hash_map_fires() {
        let d = run(
            "fn t() { let mut m: HashMap<u32, u32> = HashMap::new(); m.insert(1, 2); \
             for (k, v) in &m { println!(\"{k}{v}\"); } }",
        );
        assert!(
            d.iter()
                .any(|x| x.rule == Rule::UnorderedIteration && x.ident == "m"),
            "{d:?}"
        );
    }

    #[test]
    fn lookups_on_hash_map_are_clean() {
        let d = run("fn t(m: &HashMap<u32, u32>) -> u32 { \
             let a = m.get(&1).copied().unwrap_or(0); a + m.len() as u32 + m[&2] }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn collect_then_sort_is_clean_but_unsorted_collect_fires() {
        let good = run("fn t(m: &HashMap<String, u32>) -> Vec<String> { \
             let mut v: Vec<String> = m.keys().cloned().collect(); v.sort(); v }");
        assert!(good.is_empty(), "{good:?}");
        let bad = run("fn t(m: &HashMap<String, u32>) -> Vec<String> { \
             let v: Vec<String> = m.keys().cloned().collect(); v }");
        assert!(
            bad.iter().any(|x| x.rule == Rule::UnorderedIteration),
            "{bad:?}"
        );
    }

    #[test]
    fn turbofish_collect_into_btreemap_is_clean() {
        let d = run("fn t(m: &HashMap<String, u32>) -> usize { \
             m.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<String, u32>>().len() }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn order_insensitive_consumers_are_clean() {
        let d = run(
            "fn t(m: &HashMap<String, u32>) -> u32 { m.values().sum::<u32>() + \
             m.values().count() as u32 }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn min_by_key_on_hash_iter_fires() {
        let d = run("struct C { entries: HashMap<u32, u64> }\n\
             impl C { fn evict(&self) -> Option<u32> { \
             self.entries.iter().min_by_key(|(_, at)| **at).map(|(k, _)| *k) } }");
        assert!(
            d.iter()
                .any(|x| x.rule == Rule::UnorderedIteration && x.ident == "entries"),
            "{d:?}"
        );
    }

    #[test]
    fn hash_fn_result_iteration_fires() {
        let d = run("fn spans() -> HashMap<String, u32> { HashMap::new() }\n\
             fn t() { for (k, v) in spans() { println!(\"{k}{v}\"); } }");
        assert!(
            d.iter()
                .any(|x| x.rule == Rule::UnorderedIteration && x.ident == "spans"),
            "{d:?}"
        );
    }

    #[test]
    fn wall_clock_fires_outside_tests_only() {
        let d = run("fn t() -> u64 { let t0 = Instant::now(); t0.elapsed().as_nanos() as u64 }");
        assert!(
            d.iter()
                .any(|x| x.rule == Rule::WallClock && x.ident == "Instant"),
            "{d:?}"
        );
        let in_test = run(
            "#[cfg(test)]\nmod tests { fn t() -> bool { Instant::now().elapsed().as_nanos() > 0 } }",
        );
        assert!(in_test.is_empty(), "{in_test:?}");
    }

    #[test]
    fn ambient_entropy_sources_fire() {
        let d = run("fn a() { let r = thread_rng(); let _ = r; }\n\
             fn b() -> u32 { std::process::id() }\n\
             fn c() -> String { std::env::var(\"SEED\").unwrap_or_default() }");
        assert!(
            d.iter()
                .any(|x| x.rule == Rule::AmbientEntropy && x.ident == "thread_rng"),
            "{d:?}"
        );
        assert!(
            d.iter()
                .any(|x| x.rule == Rule::AmbientEntropy && x.ident == "process"),
            "{d:?}"
        );
        assert!(
            d.iter()
                .any(|x| x.rule == Rule::AmbientEntropy && x.ident == "env"),
            "{d:?}"
        );
    }

    #[test]
    fn captured_mutation_in_parallel_map_fires() {
        let d = run("fn t(items: &[u32]) { let mut acc = Vec::new(); \
             parallel_map(items, 4, |chunk_id, chunk| { acc.push(chunk_id); chunk.len() }); \
             acc.sort(); }");
        assert!(
            d.iter()
                .any(|x| x.rule == Rule::UnorderedReduction && x.ident == "acc"),
            "{d:?}"
        );
    }

    #[test]
    fn pure_parallel_map_closure_is_clean() {
        let d = run(
            "fn t(items: &[u32]) -> Vec<u64> { \
             parallel_map(items, 4, |chunk_id, chunk| { \
             let mut out = Vec::new(); for x in chunk { out.push(*x as u64 + chunk_id as u64); } out }) }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn vendored_files_do_not_contribute_hash_fns() {
        let vendor = scan_file(
            "vendor/proptest/src/lib.rs",
            "pub fn generate() -> HashSet<u32> { HashSet::new() }",
        );
        let ours = scan_file(
            "crates/crypto/src/rsa.rs",
            "fn t() { let k = generate(); for x in k.iter() { let _ = x; } }",
        );
        let model = DeterminismModel::build(&[vendor, ours]);
        assert!(!model.hash_fns.contains("generate"), "{:?}", model.hash_fns);
    }
}
