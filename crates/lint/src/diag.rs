//! Diagnostics and the analysis report.

use std::fmt;

/// The diagnostic classes `ts-lint` reports: five secret-hygiene rules
/// plus the determinism family (the repro's byte-identical-output claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A `==` / `!=` comparison touching secret-tainted bytes instead of
    /// `ts_crypto::ct::ct_eq` — a classic timing-oracle shape.
    NonCtComparison,
    /// A secret value can reach a formatter: `derive(Debug)` on a
    /// secret-marked type, a manual `Display` impl for one, or a
    /// `format!`/`println!`-family macro whose arguments mention a secret.
    SecretLeak,
    /// A secret-marked type has neither an `impl Drop` nor an `impl Wipe`,
    /// so key material survives in freed memory.
    MissingWipe,
    /// A table lookup indexed by secret-derived data (cache-timing surface).
    SecretIndex,
    /// A secret-tainted value passed to a telemetry sink call
    /// (`observe` / `emit` / `record` and anything added via
    /// `[telemetry] sinks`). Metric snapshots are exported and diffed, so
    /// key material reaching one is an exfiltration channel.
    TelemetrySink,
    /// Iterating / draining / collecting a `HashMap`/`HashSet` (or any
    /// value whose type-index entry resolves to one) where the visit order
    /// can escape into output. Hash iteration order varies per process
    /// (`RandomState`), so reports and telemetry built from it are not a
    /// pure function of the seed. Use `BTreeMap`/`BTreeSet`, sort the
    /// result, or keep the map lookup-only.
    UnorderedIteration,
    /// `Instant::now` / `SystemTime::now` outside the sanctioned boundary
    /// (telemetry wall timers, repro progress messages on stderr).
    /// Experiment logic must use the simnet virtual clock.
    WallClock,
    /// Ambient entropy reaching the simulation: `thread_rng`,
    /// `RandomState::new`, `from_entropy`, env-var-derived seeds,
    /// `process::id`. Every random draw must come from a seeded
    /// `HmacDrbg` stream.
    AmbientEntropy,
    /// Mutating captured state from inside a `parallel_map` closure.
    /// Workers drain chunks in a nondeterministic real-time order, so
    /// accumulating order-sensitive state (floats, string concat,
    /// first-wins maps) across them breaks worker-count independence —
    /// return values from the closure instead (they are re-concatenated
    /// in chunk order).
    UnorderedReduction,
    /// Ephemeral key material (a secret type whose declared lifetime class
    /// is `connection`) stored into a type whose declared lifetime class is
    /// longer (`epoch` / `process`) — the paper's crypto shortcut, caught
    /// statically. Declared via `// ctlint: lifetime(connection|epoch|
    /// process)` annotations; deliberate shortcuts (the simulation *models*
    /// them) are waived under `[[lifetime]]` in ctlint.toml.
    SecretLifetime,
    /// A binding the function explicitly wipes (`x.wipe()` /
    /// `wipe_bytes(&mut x)`) but with an early `return` / `?` between the
    /// binding and the wipe, so at least one exit path leaves the key
    /// material unscrubbed in memory.
    WipeOnAllPaths,
    /// An `unsafe` block without a `// SAFETY:` comment (immediately before
    /// the block or as its first statement), or an `unsafe` block whose
    /// body mentions secret-tainted data — raw-pointer code over key
    /// material needs an individually justified waiver.
    UnsafeAudit,
    /// Two lock fields acquired in opposite orders somewhere in the
    /// workspace (directly, or through a resolved call while a guard is
    /// still live). The global lock-acquisition graph — lock fields as
    /// nodes, "acquired B while holding A" as edges, held-sets propagated
    /// interprocedurally over the call graph — must stay acyclic, which is
    /// the classical sufficient condition for deadlock freedom.
    LockOrder,
    /// A `Relaxed` operation on an atomic field annotated
    /// `// ctlint: publishes(...)` — i.e. an atomic whose value gates the
    /// visibility of other data. Publication needs `Release` on the
    /// writer side and `Acquire` on the reader side; `Relaxed` orders
    /// nothing and lets readers observe the flag before the payload.
    AtomicOrdering,
    /// A lock guard bound to a local and still live at a `parallel_map` /
    /// `scope` / `spawn` fan-out or a user-supplied callback invocation.
    /// Worker closures that re-enter the guarded structure deadlock, and
    /// even when they don't, the lock serialises the whole fan-out.
    LockAcrossCallback,
    /// A `#[target_feature]` SIMD kernel reachable (over the call graph)
    /// from a production caller whose path back to dispatch never crosses
    /// a CPUID detect gate (`*available()` / `is_x86_feature_detected!`),
    /// or an unsafe block calling such a kernel whose `// SAFETY:` comment
    /// does not name the gate that makes the call sound.
    SimdDispatchGate,
}

impl Rule {
    /// Stable machine-readable rule id — this is what `ctlint.toml`
    /// allowlist entries name.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NonCtComparison => "non-ct-comparison",
            Rule::SecretLeak => "secret-leak",
            Rule::MissingWipe => "missing-wipe",
            Rule::SecretIndex => "secret-index",
            Rule::TelemetrySink => "telemetry-sink",
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::WallClock => "wall-clock",
            Rule::AmbientEntropy => "ambient-entropy",
            Rule::UnorderedReduction => "unordered-reduction",
            Rule::SecretLifetime => "secret-lifetime",
            Rule::WipeOnAllPaths => "wipe-on-all-paths",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::LockOrder => "lock-order",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::LockAcrossCallback => "lock-across-callback",
            Rule::SimdDispatchGate => "simd-dispatch-gate",
        }
    }

    /// Which `ctlint.toml` section may suppress this rule: `[[allow]]`
    /// for the secret-hygiene family, `[[determinism]]` for the
    /// determinism family.
    pub fn family(self) -> RuleFamily {
        match self {
            Rule::NonCtComparison
            | Rule::SecretLeak
            | Rule::MissingWipe
            | Rule::SecretIndex
            | Rule::TelemetrySink
            | Rule::WipeOnAllPaths
            | Rule::UnsafeAudit => RuleFamily::Hygiene,
            Rule::UnorderedIteration
            | Rule::WallClock
            | Rule::AmbientEntropy
            | Rule::UnorderedReduction => RuleFamily::Determinism,
            Rule::SecretLifetime => RuleFamily::Lifetime,
            Rule::LockOrder
            | Rule::AtomicOrdering
            | Rule::LockAcrossCallback
            | Rule::SimdDispatchGate => RuleFamily::Concurrency,
        }
    }

    /// All rules, for iteration/tests.
    pub fn all() -> [Rule; 16] {
        [
            Rule::NonCtComparison,
            Rule::SecretLeak,
            Rule::MissingWipe,
            Rule::SecretIndex,
            Rule::TelemetrySink,
            Rule::UnorderedIteration,
            Rule::WallClock,
            Rule::AmbientEntropy,
            Rule::UnorderedReduction,
            Rule::SecretLifetime,
            Rule::WipeOnAllPaths,
            Rule::UnsafeAudit,
            Rule::LockOrder,
            Rule::AtomicOrdering,
            Rule::LockAcrossCallback,
            Rule::SimdDispatchGate,
        ]
    }
}

/// The rule families, each with its own `ctlint.toml` exception
/// section. Keeping them separate means a determinism waiver can never
/// silently silence a secret-hygiene finding (or vice versa), and a
/// lifetime waiver — which documents a *deliberate* crypto shortcut the
/// simulation models — can silence nothing but `secret-lifetime`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleFamily {
    /// Secret hygiene: suppressed by `[[allow]]`.
    Hygiene,
    /// Determinism: suppressed by `[[determinism]]`.
    Determinism,
    /// Key-material lifetime: suppressed by `[[lifetime]]`.
    Lifetime,
    /// Concurrency soundness (lock order, atomics ordering, fan-out
    /// discipline, SIMD dispatch gating): suppressed by `[[concurrency]]`.
    Concurrency,
}

impl RuleFamily {
    /// The `ctlint.toml` section header that suppresses this family.
    pub fn section(self) -> &'static str {
        match self {
            RuleFamily::Hygiene => "[[allow]]",
            RuleFamily::Determinism => "[[determinism]]",
            RuleFamily::Lifetime => "[[lifetime]]",
            RuleFamily::Concurrency => "[[concurrency]]",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The identifier the finding is anchored on (type name, tainted
    /// variable, indexed table). Allowlist entries match against this.
    pub ident: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// The outcome of analysing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by any allowlist entry. Must be empty for the
    /// workspace to be considered clean.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings matched (and silenced) by an allowlist entry.
    pub suppressed: Vec<Diagnostic>,
    /// Allowlist entries that matched nothing — stale suppressions are
    /// themselves an error, so the allowlist can only shrink over time.
    pub stale_allows: Vec<String>,
    /// Number of `.rs` files analysed.
    pub files_scanned: usize,
}

impl Report {
    /// True when there is nothing to fix: no live findings and no stale
    /// allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.stale_allows.is_empty()
    }

    /// Render the report as human-readable text (used by the CLI and by
    /// test failure messages).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        for s in &self.stale_allows {
            out.push_str(&format!(
                "ctlint.toml: stale allowlist entry matched nothing: {s}\n"
            ));
        }
        out.push_str(&format!(
            "{} files scanned, {} finding(s), {} suppressed, {} stale allow(s)\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.suppressed.len(),
            self.stale_allows.len()
        ));
        out
    }
}
