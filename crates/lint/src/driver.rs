//! Parallel, incremental analysis driver.
//!
//! Parsing is the lint's dominant cost: every `.rs` file in the workspace
//! is lexed and item-scanned before any rule runs. The driver makes that
//! phase cheap twice over:
//!
//! * **incremental** — parse results are cached process-wide, keyed by
//!   path and FNV-1a content hash, so repeated scans in one process (the
//!   integration tests run the workspace lint several times; a future
//!   watch mode would too) re-parse only changed files;
//! * **parallel** — cache misses are parsed via
//!   [`ts_core::par::parallel_map`], fanning out across workers while
//!   keeping chunk order, so the resulting index slice — and therefore
//!   the lint output — is byte-identical at any worker count.
//!
//! The phases are strictly serial→parallel→serial: hashes and cache
//! probes happen serially, the pure parse fans out, and the merge back
//! into the cache is serial again. Nothing inside the parallel region
//! mutates shared state — the same discipline the lint's own
//! `unordered-reduction` rule enforces on the rest of the workspace.
//!
//! Cost telemetry flows through `ts-telemetry` counters (`crypto.lint.*`)
//! so `ts-lint --telemetry-json` can report what a scan did.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use ts_telemetry::Counter;

use crate::index::{scan_file, FileIndex};

/// Files actually lexed + item-scanned (cache misses).
pub static FILES_PARSED: Counter = Counter::new("crypto.lint.files_parsed");
/// Files served from the content-hash cache.
pub static CACHE_HITS: Counter = Counter::new("crypto.lint.cache_hits");
/// Interprocedural fixpoint rounds executed across all analyses.
pub static TAINT_ROUNDS: Counter = Counter::new("crypto.lint.taint_rounds");

/// FNV-1a over the file contents. Hand-rolled on purpose: the std hashers
/// are either randomly seeded (`RandomState` — the lint's own
/// `ambient-entropy` rule forbids it) or unspecified across releases;
/// FNV-1a is fixed forever and two lines long.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `path → (content hash, parsed index)`, shared across all scans in the
/// process. A `BTreeMap` keeps the cache itself deterministic to iterate,
/// though only point lookups touch it.
fn cache() -> &'static Mutex<BTreeMap<String, (u64, Arc<FileIndex>)>> {
    static CACHE: OnceLock<Mutex<BTreeMap<String, (u64, Arc<FileIndex>)>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Parse `files` into indexes, reusing cached results where the content
/// hash matches. The returned order matches the input order exactly.
pub fn index_files(files: &[(String, String)], workers: usize) -> Vec<Arc<FileIndex>> {
    let hashes: Vec<u64> = files
        .iter()
        .map(|(_, src)| content_hash(src.as_bytes()))
        .collect();

    // Serial phase: probe the cache.
    let mut out: Vec<Option<Arc<FileIndex>>> = vec![None; files.len()];
    let mut misses: Vec<usize> = Vec::new();
    {
        let cache = cache().lock().expect("lint cache poisoned");
        for (i, (path, _)) in files.iter().enumerate() {
            match cache.get(path) {
                Some((h, idx)) if *h == hashes[i] => {
                    out[i] = Some(Arc::clone(idx));
                    CACHE_HITS.inc();
                }
                _ => misses.push(i),
            }
        }
    }

    // Parallel phase: pure parse of the misses, results in chunk order.
    let parse = |_chunk: usize, ids: &[usize]| -> Vec<(usize, Arc<FileIndex>)> {
        ids.iter()
            .map(|&i| (i, Arc::new(scan_file(&files[i].0, &files[i].1))))
            .collect()
    };
    let parsed = if workers > 1 {
        ts_core::par::parallel_map(&misses, workers, parse)
    } else {
        parse(0, &misses)
    };
    FILES_PARSED.add(parsed.len() as u64);

    // Serial phase: merge into the cache and the output slots.
    let mut cache = cache().lock().expect("lint cache poisoned");
    for (i, idx) in parsed {
        cache.insert(files[i].0.clone(), (hashes[i], Arc::clone(&idx)));
        out[i] = Some(idx);
    }
    out.into_iter()
        .map(|slot| slot.expect("every file parsed or cached"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(content_hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn cache_serves_unchanged_files_and_reparses_changed_ones() {
        let files = vec![
            ("drv_test_a.rs".to_string(), "fn a() {}".to_string()),
            ("drv_test_b.rs".to_string(), "fn b() {}".to_string()),
        ];
        let first = index_files(&files, 1);
        let again = index_files(&files, 1);
        // Identical content: the second scan returns the same Arcs.
        assert!(Arc::ptr_eq(&first[0], &again[0]));
        assert!(Arc::ptr_eq(&first[1], &again[1]));
        // Changed content: a fresh parse for the changed file only.
        let changed = vec![
            ("drv_test_a.rs".to_string(), "fn a2() {}".to_string()),
            files[1].clone(),
        ];
        let third = index_files(&changed, 1);
        assert!(!Arc::ptr_eq(&first[0], &third[0]));
        assert!(Arc::ptr_eq(&first[1], &third[1]));
        assert_eq!(third[0].fns[0].name, "a2");
    }

    #[test]
    fn worker_counts_produce_identical_indexes() {
        let files: Vec<(String, String)> = (0..40)
            .map(|i| {
                (
                    format!("drv_par_{i}.rs"),
                    format!("fn f{i}(x: u8) -> u8 {{ x }}"),
                )
            })
            .collect();
        let serial = index_files(&files, 1);
        // Force re-parse under parallelism by changing every file.
        let files2: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.clone(), format!("{s} // v2")))
            .collect();
        let parallel = index_files(&files2, 8);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.fns[0].name, b.fns[0].name);
        }
    }
}
