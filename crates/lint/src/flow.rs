//! Interprocedural secret-flow: a fixed-point worklist over the call graph.
//!
//! The per-file rules see taint that *starts* inside one function — a
//! parameter of a secret type, a call to a secret-returning function. What
//! they cannot see lexically is taint that crosses a function boundary
//! through an innocently-typed channel: a `Vec<u8>` of key bytes passed
//! down two helpers into a telemetry sink, or a helper whose `-> Vec<u8>`
//! return is always the master secret. This module closes that gap with
//! two workspace-wide fact sets, computed to a fixed point:
//!
//! * **parameter taint** — `FnId → {param positions}` that receive
//!   secret-tainted arguments at some resolved call site, and
//! * **return taint** — function names whose declared return value is fed
//!   by tainted data on some path (`return expr` or tail expression).
//!
//! Both flow only through *byte-carrying* channels (`u8` buffers, `Ub`
//! limbs, secret types): scalar derivatives of secrets — lengths, indexes,
//! durations — are public here, exactly as the per-file `.len()` rule
//! already judges them.
//!
//! Iteration is *round-synchronous* (Jacobi): every round evaluates all
//! functions against the previous round's facts and merges the updates
//! afterwards. That makes the result — and therefore the lint output — a
//! pure function of the input files, independent of evaluation order and
//! worker count. Rounds are bounded by the facts lattice height (every
//! round must add a fact or the loop stops), and in practice converge in
//! two or three.
//!
//! Resolution follows [`crate::callgraph`]: only uniquely-named production
//! functions receive propagated facts, so a common method name can never
//! smear taint across unrelated impls.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, FnId};
use crate::index::{FileIndex, FnDef};
use crate::lexer::TokKind;
use crate::rules::{collect_bindings, SecretModel, TaintEnv};

/// The converged interprocedural facts.
pub struct FlowFacts {
    /// Extra secret-tainted parameter positions, per function definition.
    pub param_taint: BTreeMap<FnId, BTreeSet<usize>>,
    /// Function names whose call result is secret-tainted: the model's
    /// type/annotation-based set plus every flow-discovered one.
    pub secret_fns: BTreeSet<String>,
    /// Fixpoint rounds executed (reported through telemetry).
    pub rounds: u64,
}

impl FlowFacts {
    /// Facts with no interprocedural component (per-file fallback).
    pub fn intraprocedural(model: &SecretModel) -> FlowFacts {
        FlowFacts {
            param_taint: BTreeMap::new(),
            secret_fns: model.secret_fns.clone(),
            rounds: 0,
        }
    }
}

/// Solve the flow facts to a fixed point.
pub fn solve<F: AsRef<FileIndex> + Sync>(
    files: &[F],
    model: &SecretModel,
    graph: &CallGraph,
    workers: usize,
) -> FlowFacts {
    let mut facts = FlowFacts::intraprocedural(model);
    // Every production fn, in deterministic (file, fn) order.
    let fn_ids: Vec<FnId> = files
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| {
            f.as_ref()
                .fns
                .iter()
                .enumerate()
                .filter(|(_, func)| !func.in_test)
                .map(move |(gi, _)| FnId {
                    file: fi,
                    fn_idx: gi,
                })
        })
        .collect();

    loop {
        facts.rounds += 1;
        let eval = |_chunk: usize, ids: &[FnId]| -> Vec<Update> {
            let mut out = Vec::new();
            for &id in ids {
                evaluate(files, model, graph, &facts, id, &mut out);
            }
            out
        };
        let updates = if workers > 1 {
            ts_core::par::parallel_map(&fn_ids, workers, eval)
        } else {
            eval(0, &fn_ids)
        };
        let mut changed = false;
        for u in updates {
            match u {
                Update::Param(id, pos) => {
                    changed |= facts.param_taint.entry(id).or_default().insert(pos);
                }
                Update::Return(name) => {
                    changed |= facts.secret_fns.insert(name);
                }
            }
        }
        if !changed {
            break;
        }
    }
    facts
}

/// One fact discovered during a round, applied after the round completes.
enum Update {
    Param(FnId, usize),
    Return(String),
}

/// Can a value of this type span carry key *bytes*? Interprocedural taint
/// only flows through byte-carrying channels — `u8` buffers, `Ub` bignum
/// limbs, secret types. Scalar projections (lengths, indexes, durations,
/// counts) are public in this protocol, the same judgement the per-file
/// `.len()` rule makes; propagating them would smear taint across every
/// helper that takes a `usize`.
fn carries_bytes(type_idents: &[String], model: &SecretModel) -> bool {
    type_idents
        .iter()
        .any(|n| n == "u8" || n == "Ub" || model.secret_types.contains(n))
}

/// Evaluate one function against the current facts: find call sites whose
/// arguments are tainted, and decide whether the return value is.
fn evaluate<F: AsRef<FileIndex>>(
    files: &[F],
    model: &SecretModel,
    graph: &CallGraph,
    facts: &FlowFacts,
    id: FnId,
    out: &mut Vec<Update>,
) {
    let f = files[id.file].as_ref();
    let func = &f.fns[id.fn_idx];
    let toks = &f.tokens[func.body.0..func.body.1];
    let env = seed_env(model, facts, id, func, toks);

    for call in &graph.calls[id.file][id.fn_idx] {
        let Some(target) = graph.resolve(&call.callee) else {
            continue;
        };
        let params = &files[target.file].as_ref().fns[target.fn_idx].params;
        for (pos, &(lo, hi)) in call.args.iter().enumerate() {
            if pos >= params.len() {
                break;
            }
            if !carries_bytes(&params[pos].1, model) {
                continue;
            }
            if env.span_tainted(&f.tokens[lo..hi]) {
                let already = facts
                    .param_taint
                    .get(&target)
                    .is_some_and(|s| s.contains(&pos));
                if !already {
                    out.push(Update::Param(target, pos));
                }
            }
        }
    }

    // Return taint: only for fns whose declared return type carries bytes,
    // and only when the name resolves uniquely — otherwise the name-keyed
    // secret_fns set would taint unrelated same-named calls.
    if carries_bytes(&func.return_idents, model)
        && !facts.secret_fns.contains(&func.name)
        && graph.resolve(&func.name) == Some(id)
        && returns_tainted(toks, &env)
    {
        out.push(Update::Return(func.name.clone()));
    }
}

/// Build the taint environment for `func` under the current facts: the
/// type/annotation-based parameter seeds, the flow-discovered parameter
/// positions, and one forward binding pass.
pub(crate) fn seed_env<'m>(
    model: &'m SecretModel,
    facts: &'m FlowFacts,
    id: FnId,
    func: &FnDef,
    body: &[crate::lexer::Token],
) -> TaintEnv<'m> {
    let mut env = TaintEnv::new(model, &facts.secret_fns);
    for (pos, (name, type_idents)) in func.params.iter().enumerate() {
        let type_secret = func.annotated_secret
            || type_idents
                .iter()
                .any(|n| model.direct_secret_types.contains(n));
        let flow_secret = facts.param_taint.get(&id).is_some_and(|s| s.contains(&pos));
        if type_secret || flow_secret {
            env.idents.insert(name.clone());
        }
    }
    collect_bindings(body, &mut env);
    env
}

/// Does any `return expr` / tail expression mention tainted data?
fn returns_tainted(toks: &[crate::lexer::Token], env: &TaintEnv<'_>) -> bool {
    let mut i = 0usize;
    let mut last_semi = 0usize; // start of the candidate tail expression
    let mut depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("return") {
            // span to the next `;` / block end at this depth
            let mut j = i + 1;
            let mut d = 0usize;
            while j < toks.len() {
                let x = &toks[j];
                if x.kind == TokKind::Punct {
                    match x.text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => {
                            if d == 0 {
                                break;
                            }
                            d -= 1;
                        }
                        ";" if d == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            if env.span_tainted(&toks[i + 1..j]) {
                return true;
            }
            i = j;
            continue;
        }
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => last_semi = i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    last_semi < toks.len() && env.span_tainted(&toks[last_semi..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::config::Config;
    use crate::index::scan_file;

    fn facts_for(sources: &[(&str, &str)]) -> (Vec<FileIndex>, FlowFacts) {
        let files: Vec<FileIndex> = sources.iter().map(|(p, s)| scan_file(p, s)).collect();
        let model = SecretModel::build(&files, &Config::default());
        let graph = CallGraph::build(&files);
        let facts = solve(&files, &model, &graph, 1);
        (files, facts)
    }

    #[test]
    fn taint_crosses_two_hops() {
        let (_, facts) = facts_for(&[
            ("a.rs", "fn hop1(s: &Stek) { hop2(s.enc_key.to_vec()); }"),
            ("b.rs", "fn hop2(data: Vec<u8>) { hop3(data); }"),
            ("c.rs", "fn hop3(payload: Vec<u8>) { let _ = payload; }"),
        ]);
        assert_eq!(facts.param_taint.len(), 2, "{:?}", facts.param_taint);
        assert!(facts.rounds >= 2);
    }

    #[test]
    fn flow_discovers_secret_returns() {
        let (_, facts) = facts_for(&[(
            "a.rs",
            "fn expose(s: &SessionState) -> Vec<u8> { s.master_secret.to_vec() }",
        )]);
        assert!(facts.secret_fns.contains("expose"));
    }

    #[test]
    fn public_projections_do_not_propagate() {
        let (_, facts) = facts_for(&[
            ("a.rs", "fn hop1(s: &Stek) { hop2(s.enc_key.len()); }"),
            ("b.rs", "fn hop2(n: usize) { let _ = n; }"),
        ]);
        assert!(facts.param_taint.is_empty(), "{:?}", facts.param_taint);
    }

    #[test]
    fn ambiguous_callees_stay_clean() {
        let (_, facts) = facts_for(&[
            ("a.rs", "fn go(s: &Stek) { dup(s.enc_key.to_vec()); }"),
            ("b.rs", "fn dup(x: Vec<u8>) { let _ = x; }"),
            ("c.rs", "fn dup(y: Vec<u8>) { let _ = y; }"),
        ]);
        assert!(facts.param_taint.is_empty(), "{:?}", facts.param_taint);
    }

    #[test]
    fn worker_counts_agree() {
        let srcs: Vec<(String, String)> = (0..20)
            .map(|i| {
                (
                    format!("f{i}.rs"),
                    format!(
                        "fn start{i}(s: &Stek) {{ relay{i}(s.enc_key.to_vec()); }}\n\
                         fn relay{i}(d: Vec<u8>) -> Vec<u8> {{ d }}"
                    ),
                )
            })
            .collect();
        let files: Vec<FileIndex> = srcs.iter().map(|(p, s)| scan_file(p, s)).collect();
        let model = SecretModel::build(&files, &Config::default());
        let graph = CallGraph::build(&files);
        let a = solve(&files, &model, &graph, 1);
        let b = solve(&files, &model, &graph, 8);
        assert_eq!(a.param_taint, b.param_taint);
        assert_eq!(a.secret_fns, b.secret_fns);
    }
}
