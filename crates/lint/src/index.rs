//! Item-level scanning: from a token stream to a structural index.
//!
//! This is deliberately *not* a Rust parser. It recognises the handful of
//! item shapes the secret-hygiene analysis needs — `struct`/`enum`
//! definitions (with attributes, fields and `// ctlint:` annotations),
//! `impl` blocks (which trait for which type), and `fn` items (parameter
//! types, return type, body token range) — and skips everything else by
//! bracket matching. Anything it cannot make sense of is ignored rather
//! than reported, so the scanner is robust to arbitrary input.

use crate::lexer::{TokKind, Token};

/// A struct or enum definition.
#[derive(Debug, Clone)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// 1-based definition line.
    pub line: u32,
    /// True for `struct`, false for `enum`.
    pub is_struct: bool,
    /// Marked `// ctlint: secret` at the definition site.
    pub annotated_secret: bool,
    /// Declared lifetime class from `// ctlint: lifetime(connection)` /
    /// `lifetime(epoch)` / `lifetime(process)` — how long values of this
    /// type are allowed to live (see [`crate::lifetime`]).
    pub lifetime_class: Option<String>,
    /// Traits named in `#[derive(...)]` attributes.
    pub derives: Vec<String>,
    /// Named fields (empty for enums / tuple structs).
    pub fields: Vec<FieldDef>,
    /// Defined inside `#[cfg(test)]` code.
    pub in_test: bool,
}

/// One named struct field.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Every identifier appearing in the field's type.
    pub type_idents: Vec<String>,
    /// Type textually contains raw byte material (`u8` arrays/slices/vecs,
    /// or the bignum limb type `Ub`).
    pub byteish: bool,
    /// Marked `// ctlint: public` — excluded from taint even in a secret
    /// type (wire-visible identifiers, timestamps, counters).
    pub annotated_public: bool,
    /// Marked `// ctlint: secret` — force-included in taint.
    pub annotated_secret: bool,
    /// Marked `// ctlint: publishes(a, b)` — this atomic field gates the
    /// visibility of the named sibling data, so `Relaxed` operations on it
    /// fire `atomic-ordering` (see [`crate::concurrency`]). `Some` even
    /// when the list is empty.
    pub publishes: Option<Vec<String>>,
}

/// An `impl` block header.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// Final trait-path segment (`Debug`, `Display`, `Drop`, `Wipe`), or
    /// `None` for inherent impls.
    pub trait_name: Option<String>,
    /// Final path segment of the implementing type.
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]` code.
    pub in_test: bool,
}

/// A function item with a body.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Marked `// ctlint: secret`: every parameter (and the return value)
    /// is treated as secret-tainted.
    pub annotated_secret: bool,
    /// `(binding ident, identifiers in the declared type)` per parameter.
    /// `self` receivers are omitted.
    pub params: Vec<(String, Vec<String>)>,
    /// Identifiers appearing in the return type.
    pub return_idents: Vec<String>,
    /// Half-open token range of the body inside the file token vector.
    pub body: (usize, usize),
    /// Inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// The `impl` block's type name when this is a method (`impl Foo {
    /// fn … }` records `Foo`); `None` for free functions.
    pub self_type: Option<String>,
    /// Carries a `#[target_feature(enable = …)]` attribute — a SIMD kernel
    /// whose call sites must be CPUID-gated (see [`crate::concurrency`]).
    pub target_feature: bool,
}

/// One `unsafe { … }` block found in a function body.
#[derive(Debug, Clone)]
pub struct UnsafeBlock {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Half-open token range of the block body (inside the braces).
    pub body: (usize, usize),
    /// A `// SAFETY:` line comment immediately precedes the block or opens
    /// its body.
    pub has_safety_comment: bool,
    /// The text of that comment run (the `SAFETY` line plus its
    /// continuation lines), empty when absent. The SIMD-audit rule greps
    /// it for the CPUID gate the comment is supposed to name.
    pub safety_text: String,
    /// Inside `#[cfg(test)]` code.
    pub in_test: bool,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// Workspace-relative path.
    pub path: String,
    /// The file's full token stream (fn bodies are ranges into this).
    pub tokens: Vec<Token>,
    /// Type definitions.
    pub types: Vec<TypeDef>,
    /// Impl blocks.
    pub impls: Vec<ImplDef>,
    /// Function items.
    pub fns: Vec<FnDef>,
    /// `unsafe { … }` expression blocks (audited by the `unsafe-audit`
    /// rule). `unsafe fn` *declarations* are deliberately not listed: their
    /// obligations are discharged at call sites, which are unsafe blocks.
    pub unsafe_blocks: Vec<UnsafeBlock>,
}

impl AsRef<FileIndex> for FileIndex {
    fn as_ref(&self) -> &FileIndex {
        self
    }
}

/// Scan one file.
pub fn scan_file(path: &str, src: &str) -> FileIndex {
    let tokens = crate::lexer::lex(src);
    let mut idx = FileIndex {
        path: path.to_string(),
        ..FileIndex::default()
    };
    let end = tokens.len();
    scan_items(&tokens, 0, end, false, &mut idx);
    idx.unsafe_blocks = find_unsafe_blocks(&tokens, &idx.fns);
    idx.tokens = tokens;
    idx
}

/// Locate every `unsafe { … }` expression block and whether it carries a
/// `// SAFETY:` justification — either in the contiguous comment run
/// directly above the `unsafe` keyword, or as a comment inside the block.
fn find_unsafe_blocks(toks: &[Token], fns: &[FnDef]) -> Vec<UnsafeBlock> {
    let is_safety = |t: &Token| {
        t.kind == TokKind::LineComment
            && t.text
                .trim_start_matches(['/', '!'])
                .trim_start()
                .starts_with("SAFETY")
    };
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("unsafe") || !toks.get(i + 1).is_some_and(|t| t.is_punct("{")) {
            continue;
        }
        let close = matching(toks, i + 1, toks.len());
        // The comment run directly above: walk back over consecutive
        // line comments (a multi-line SAFETY comment is several tokens).
        let mut justified = false;
        let mut run_start = i;
        let mut j = i;
        while j > 0 && toks[j - 1].kind == TokKind::LineComment {
            j -= 1;
            run_start = j;
            if is_safety(&toks[j]) {
                justified = true;
                break;
            }
        }
        let mut safety_text = String::new();
        if justified {
            for t in &toks[run_start..i] {
                if t.kind == TokKind::LineComment {
                    safety_text.push_str(&t.text);
                    safety_text.push(' ');
                }
            }
        } else {
            // Or the justification opens the block body itself: capture the
            // whole contiguous comment run starting at the SAFETY line.
            if let Some(s) = toks[i + 2..close].iter().position(is_safety) {
                justified = true;
                for t in &toks[i + 2 + s..close] {
                    if t.kind != TokKind::LineComment {
                        break;
                    }
                    safety_text.push_str(&t.text);
                    safety_text.push(' ');
                }
            }
        }
        let in_test = fns
            .iter()
            .any(|f| f.in_test && f.body.0 <= i && i < f.body.1);
        out.push(UnsafeBlock {
            line: toks[i].line,
            body: (i + 2, close),
            has_safety_comment: justified,
            safety_text,
            in_test,
        });
    }
    out
}

/// Find the index of the close delimiter matching the open one at `open`
/// (which must be `(`, `[` or `{`). Returns `hi` if unbalanced.
pub fn matching(toks: &[Token], open: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < hi {
        match toks[i].text.as_str() {
            "(" | "[" | "{" if toks[i].kind == TokKind::Punct => depth += 1,
            ")" | "]" | "}" if toks[i].kind == TokKind::Punct => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    hi
}

/// Skip a `<...>` generic-argument group starting at `i` (pointing at `<`).
/// Returns the index just past the closing `>`.
fn skip_generics(toks: &[Token], mut i: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    while i < hi {
        match toks[i].text.as_str() {
            "<" | "<=" if toks[i].kind == TokKind::Punct => depth += 1,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            "->" => {}
            _ => {}
        }
        i += 1;
        if depth <= 0 {
            break;
        }
    }
    i
}

/// Pending per-item context accumulated from comments/attributes.
#[derive(Default)]
struct Pending {
    secret: bool,
    public: bool,
    lifetime: Option<String>,
    publishes: Option<Vec<String>>,
    derives: Vec<String>,
    cfg_test: bool,
    target_feature: bool,
}

/// Parse one `ctlint:` directive body (`secret`, `public`,
/// `lifetime(connection)`, `publishes(field, …)`) into the pending context.
fn read_ctlint_directive(rest: &str, pend: &mut Pending) {
    let rest = rest.trim();
    match rest {
        "secret" => pend.secret = true,
        "public" => pend.public = true,
        _ => {
            if let Some(class) = rest
                .strip_prefix("lifetime(")
                .and_then(|r| r.strip_suffix(')'))
            {
                pend.lifetime = Some(class.trim().to_string());
            } else if let Some(list) = rest
                .strip_prefix("publishes(")
                .and_then(|r| r.strip_suffix(')'))
            {
                pend.publishes = Some(
                    list.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
        }
    }
}

fn scan_items(toks: &[Token], lo: usize, hi: usize, in_test: bool, out: &mut FileIndex) {
    scan_items_with_self(toks, lo, hi, in_test, None, out);
}

fn scan_items_with_self(
    toks: &[Token],
    lo: usize,
    hi: usize,
    in_test: bool,
    self_type: Option<&str>,
    out: &mut FileIndex,
) {
    let mut i = lo;
    let mut pend = Pending::default();
    while i < hi {
        let t = &toks[i];
        match t.kind {
            TokKind::LineComment => {
                let txt = t.text.trim();
                if let Some(rest) = txt.strip_prefix("ctlint:") {
                    read_ctlint_directive(rest, &mut pend);
                }
                i += 1;
            }
            TokKind::Punct if t.text == "#" => {
                // #[attr] or #![attr]
                let mut j = i + 1;
                if j < hi && toks[j].is_punct("!") {
                    j += 1;
                }
                if j < hi && toks[j].is_punct("[") {
                    let close = matching(toks, j, hi);
                    read_attr(toks, j + 1, close, &mut pend);
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident => match t.text.as_str() {
                "pub" => {
                    // skip visibility, including pub(crate) / pub(in …)
                    i += 1;
                    if i < hi && toks[i].is_punct("(") {
                        i = matching(toks, i, hi) + 1;
                    }
                }
                "struct" | "enum" | "union" => {
                    i = scan_type_def(toks, i, hi, in_test, &mut pend, out);
                }
                "impl" => {
                    i = scan_impl(toks, i, hi, in_test, &mut pend, out);
                }
                "fn" => {
                    i = scan_fn(toks, i, hi, in_test, self_type, &mut pend, out);
                }
                "mod" => {
                    i = scan_mod(toks, i, hi, in_test, &mut pend, out);
                }
                "trait" | "macro_rules" => {
                    i = skip_to_block_end(toks, i, hi);
                    pend = Pending::default();
                }
                "use" | "extern" | "type" | "const" | "static" => {
                    i = skip_to_semi_or_block(toks, i, hi);
                    pend = Pending::default();
                }
                // `unsafe`, `async`, `default` etc. prefix other items:
                // keep pending context and move on.
                "unsafe" | "async" | "default" => i += 1,
                _ => {
                    i += 1;
                    pend = Pending::default();
                }
            },
            _ => {
                // Stray tokens at item level (shouldn't happen in valid
                // Rust): skip groups wholesale so we never mis-nest.
                if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                    i = matching(toks, i, hi) + 1;
                } else {
                    i += 1;
                }
                pend = Pending::default();
            }
        }
    }
}

fn read_attr(toks: &[Token], lo: usize, hi: usize, pend: &mut Pending) {
    let mut i = lo;
    while i < hi {
        if toks[i].kind == TokKind::Ident {
            let name = toks[i].text.as_str();
            if name == "derive" && i + 1 < hi && toks[i + 1].is_punct("(") {
                let close = matching(toks, i + 1, hi);
                for t in &toks[i + 2..close] {
                    if t.kind == TokKind::Ident {
                        pend.derives.push(t.text.clone());
                    }
                }
                i = close + 1;
                continue;
            }
            if name == "cfg" && i + 1 < hi && toks[i + 1].is_punct("(") {
                let close = matching(toks, i + 1, hi);
                if toks[i + 2..close].iter().any(|t| t.is_ident("test")) {
                    pend.cfg_test = true;
                }
                i = close + 1;
                continue;
            }
            if name == "target_feature" {
                pend.target_feature = true;
            }
        }
        i += 1;
    }
}

fn scan_type_def(
    toks: &[Token],
    kw: usize,
    hi: usize,
    in_test: bool,
    pend: &mut Pending,
    out: &mut FileIndex,
) -> usize {
    let is_struct = toks[kw].text == "struct";
    let mut i = kw + 1;
    let Some(name_tok) = toks.get(i).filter(|t| t.kind == TokKind::Ident) else {
        *pend = Pending::default();
        return i;
    };
    let mut def = TypeDef {
        name: name_tok.text.clone(),
        line: toks[kw].line,
        is_struct,
        annotated_secret: pend.secret,
        lifetime_class: pend.lifetime.take(),
        derives: std::mem::take(&mut pend.derives),
        fields: Vec::new(),
        in_test,
    };
    i += 1;
    if i < hi && toks[i].is_punct("<") {
        i = skip_generics(toks, i, hi);
    }
    // where-clause (if any) runs until the body/terminator
    while i < hi && !toks[i].is_punct("{") && !toks[i].is_punct("(") && !toks[i].is_punct(";") {
        i += 1;
    }
    if i < hi && toks[i].is_punct("{") {
        let close = matching(toks, i, hi);
        if is_struct {
            scan_fields(toks, i + 1, close, &mut def);
        }
        i = close + 1;
    } else if i < hi && toks[i].is_punct("(") {
        // tuple struct: no named fields to record; skip to `;`
        let close = matching(toks, i, hi);
        i = close + 1;
        while i < hi && !toks[i].is_punct(";") {
            i += 1;
        }
        i += 1;
    } else {
        i += 1; // `;`
    }
    out.types.push(def);
    *pend = Pending::default();
    i
}

fn scan_fields(toks: &[Token], lo: usize, hi: usize, def: &mut TypeDef) {
    let mut i = lo;
    let mut f_secret = false;
    let mut f_public = false;
    let mut f_publishes: Option<Vec<String>> = None;
    while i < hi {
        match toks[i].kind {
            TokKind::LineComment => {
                let txt = toks[i].text.trim();
                if let Some(rest) = txt.strip_prefix("ctlint:") {
                    match rest.trim() {
                        "secret" => f_secret = true,
                        "public" => f_public = true,
                        other => {
                            if let Some(list) = other
                                .strip_prefix("publishes(")
                                .and_then(|r| r.strip_suffix(')'))
                            {
                                f_publishes = Some(
                                    list.split(',')
                                        .map(|s| s.trim().to_string())
                                        .filter(|s| !s.is_empty())
                                        .collect(),
                                );
                            }
                        }
                    }
                }
                i += 1;
            }
            TokKind::Punct if toks[i].text == "#" => {
                let mut j = i + 1;
                if j < hi && toks[j].is_punct("[") {
                    j = matching(toks, j, hi) + 1;
                }
                i = j;
            }
            TokKind::Ident if toks[i].text == "pub" => {
                i += 1;
                if i < hi && toks[i].is_punct("(") {
                    i = matching(toks, i, hi) + 1;
                }
            }
            TokKind::Ident => {
                // `name : type-tokens` up to a depth-0 comma
                let name = toks[i].text.clone();
                i += 1;
                if i < hi && toks[i].is_punct(":") {
                    i += 1;
                    let ty_start = i;
                    let mut depth = 0usize;
                    while i < hi {
                        let tx = toks[i].text.as_str();
                        if toks[i].kind == TokKind::Punct {
                            match tx {
                                // Generic arguments nest too: the comma in
                                // `BTreeMap<Vec<u8>, Entry>` must not end
                                // the field. `>>` closes two levels (the
                                // lexer max-munches it into one token).
                                "(" | "[" | "{" | "<" => depth += 1,
                                ")" | "]" | "}" | ">" => depth = depth.saturating_sub(1),
                                ">>" => depth = depth.saturating_sub(2),
                                "," if depth == 0 => break,
                                _ => {}
                            }
                        }
                        i += 1;
                    }
                    let ty = &toks[ty_start..i];
                    let type_idents: Vec<String> = ty
                        .iter()
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone())
                        .collect();
                    let byteish = type_idents
                        .iter()
                        .any(|n| n == "u8" || n == "Ub" || n == "BytesMut");
                    def.fields.push(FieldDef {
                        name,
                        type_idents,
                        byteish,
                        annotated_public: f_public,
                        annotated_secret: f_secret,
                        publishes: f_publishes.take(),
                    });
                    i += 1; // comma
                }
                f_secret = false;
                f_public = false;
                f_publishes = None;
            }
            _ => i += 1,
        }
    }
}

fn scan_impl(
    toks: &[Token],
    kw: usize,
    hi: usize,
    in_test: bool,
    pend: &mut Pending,
    out: &mut FileIndex,
) -> usize {
    let line = toks[kw].line;
    let mut i = kw + 1;
    if i < hi && toks[i].is_punct("<") {
        i = skip_generics(toks, i, hi);
    }
    // header runs to the body brace (or `where`)
    let mut header = Vec::new();
    let mut depth = 0usize;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" if depth == 0 => break,
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if t.is_ident("where") && depth == 0 {
            // discard bounds; body brace still terminates the loop
            while i < hi && !toks[i].is_punct("{") {
                i += 1;
            }
            break;
        }
        header.push(i);
        i += 1;
    }
    let body_open = i;
    let body_close = if body_open < hi {
        matching(toks, body_open, hi)
    } else {
        hi
    };

    // Split the header at a top-level `for` (trait impls).
    let for_pos = header.iter().position(|&j| toks[j].is_ident("for"));
    let (trait_name, type_name) = match for_pos {
        Some(p) => (
            path_final_ident(toks, &header[..p]),
            path_final_ident(toks, &header[p + 1..]),
        ),
        None => (None, path_final_ident(toks, &header)),
    };

    if let Some(type_name) = type_name {
        out.impls.push(ImplDef {
            trait_name,
            type_name: type_name.clone(),
            line,
            in_test: in_test || pend.cfg_test,
        });
        if body_open < hi {
            scan_items_with_self(
                toks,
                body_open + 1,
                body_close,
                in_test || pend.cfg_test,
                Some(&type_name),
                out,
            );
        }
    }
    *pend = Pending::default();
    body_close + 1
}

/// Last identifier of a path, ignoring generic arguments: `std::fmt::Debug`
/// → `Debug`, `Vec<u8>` → `Vec`, `&mut Foo<T>` → `Foo`.
fn path_final_ident(toks: &[Token], positions: &[usize]) -> Option<String> {
    let mut last = None;
    for &j in positions {
        let t = &toks[j];
        if t.is_punct("<") {
            break;
        }
        if t.kind == TokKind::Ident && t.text != "dyn" && t.text != "mut" {
            last = Some(t.text.clone());
        }
    }
    last
}

fn scan_fn(
    toks: &[Token],
    kw: usize,
    hi: usize,
    in_test: bool,
    self_type: Option<&str>,
    pend: &mut Pending,
    out: &mut FileIndex,
) -> usize {
    let line = toks[kw].line;
    let mut i = kw + 1;
    let Some(name_tok) = toks.get(i).filter(|t| t.kind == TokKind::Ident) else {
        *pend = Pending::default();
        return i;
    };
    let name = name_tok.text.clone();
    i += 1;
    if i < hi && toks[i].is_punct("<") {
        i = skip_generics(toks, i, hi);
    }
    if i >= hi || !toks[i].is_punct("(") {
        *pend = Pending::default();
        return i;
    }
    let params_close = matching(toks, i, hi);
    let params = parse_params(toks, i + 1, params_close);
    i = params_close + 1;

    // Return type: after `->` up to `{`, `where`, or `;`.
    let mut return_idents = Vec::new();
    if i < hi && toks[i].is_punct("->") {
        i += 1;
        let mut depth = 0usize;
        while i < hi {
            let t = &toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" if depth == 0 => break,
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            if depth == 0 && t.is_ident("where") {
                break;
            }
            if t.kind == TokKind::Ident {
                return_idents.push(t.text.clone());
            }
            i += 1;
        }
    }
    // Skip a where-clause (bracket-aware: bounds like `[u8; N]: Sized`
    // contain semicolons that must not terminate the scan).
    let mut depth = 0usize;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" if depth == 0 => break,
                ";" if depth == 0 => break,
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        i += 1;
    }
    let (body, next) = if i < hi && toks[i].is_punct("{") {
        let close = matching(toks, i, hi);
        ((i + 1, close), close + 1)
    } else {
        ((i, i), i + 1) // declaration without body (trait method sig)
    };
    out.fns.push(FnDef {
        name,
        line,
        annotated_secret: pend.secret,
        params,
        return_idents,
        body,
        in_test: in_test || pend.cfg_test,
        self_type: self_type.map(|s| s.to_string()),
        target_feature: pend.target_feature,
    });
    *pend = Pending::default();
    next
}

fn parse_params(toks: &[Token], lo: usize, hi: usize) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        // one parameter: pattern `:` type, up to a depth-0 comma
        let start = i;
        let mut colon = None;
        let mut depth = 0usize;
        while i < hi {
            let t = &toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    "<" => depth += 1,
                    ">" => depth = depth.saturating_sub(1),
                    ">>" => depth = depth.saturating_sub(2),
                    ":" if depth == 0 && colon.is_none() => colon = Some(i),
                    "," if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if let Some(c) = colon {
            // binding = last plain ident of the pattern (covers `mut x`)
            let binding = toks[start..c]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
                .map(|t| t.text.clone());
            if let Some(binding) = binding {
                let type_idents = toks[c + 1..i]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .collect();
                out.push((binding, type_idents));
            }
        }
        i += 1; // comma
    }
    out
}

fn scan_mod(
    toks: &[Token],
    kw: usize,
    hi: usize,
    in_test: bool,
    pend: &mut Pending,
    out: &mut FileIndex,
) -> usize {
    let mut i = kw + 1;
    let mod_name = toks.get(i).map(|t| t.text.clone()).unwrap_or_default();
    i += 1;
    let inner_test = in_test || pend.cfg_test || mod_name == "tests";
    let next = if i < hi && toks[i].is_punct("{") {
        let close = matching(toks, i, hi);
        scan_items(toks, i + 1, close, inner_test, out);
        close + 1
    } else {
        i + 1 // `mod foo;`
    };
    *pend = Pending::default();
    next
}

fn skip_to_semi_or_block(toks: &[Token], mut i: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" if depth == 0 => return matching(toks, i, hi) + 1,
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn skip_to_block_end(toks: &[Token], mut i: usize, hi: usize) -> usize {
    while i < hi && !toks[i].is_punct("{") {
        i += 1;
    }
    if i < hi {
        matching(toks, i, hi) + 1
    } else {
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_with_annotations_and_derives() {
        let src = r#"
            // ctlint: secret
            #[derive(Clone, Debug)]
            pub struct Keys {
                // ctlint: public
                pub name: [u8; 16],
                pub enc_key: [u8; 16],
                pub created_at: u64,
            }
        "#;
        let idx = scan_file("t.rs", src);
        assert_eq!(idx.types.len(), 1);
        let t = &idx.types[0];
        assert_eq!(t.name, "Keys");
        assert!(t.annotated_secret);
        assert_eq!(t.derives, vec!["Clone", "Debug"]);
        assert_eq!(t.fields.len(), 3);
        assert!(t.fields[0].annotated_public);
        assert!(t.fields[0].byteish);
        assert!(!t.fields[1].annotated_public);
        assert!(t.fields[1].byteish);
        assert!(!t.fields[2].byteish);
    }

    #[test]
    fn impl_headers() {
        let src = r#"
            impl Keys { fn id(&self) -> u8 { 0 } }
            impl std::fmt::Debug for Keys { fn fmt(&self, f: &mut F) -> R { todo!() } }
            impl Drop for Keys { fn drop(&mut self) {} }
            impl<T: Clone> Wrapper<T> { }
        "#;
        let idx = scan_file("t.rs", src);
        let names: Vec<_> = idx
            .impls
            .iter()
            .map(|i| (i.trait_name.clone(), i.type_name.clone()))
            .collect();
        assert!(names.contains(&(None, "Keys".into())));
        assert!(names.contains(&(Some("Debug".into()), "Keys".into())));
        assert!(names.contains(&(Some("Drop".into()), "Keys".into())));
        assert!(names.contains(&(None, "Wrapper".into())));
    }

    #[test]
    fn fn_params_and_return() {
        let src =
            "fn derive_keys(master: &SessionState, mut label: &[u8]) -> ConnectionKeys { body() }";
        let idx = scan_file("t.rs", src);
        assert_eq!(idx.fns.len(), 1);
        let f = &idx.fns[0];
        assert_eq!(f.name, "derive_keys");
        assert_eq!(f.params[0].0, "master");
        assert!(f.params[0].1.contains(&"SessionState".to_string()));
        assert_eq!(f.params[1].0, "label");
        assert!(f.return_idents.contains(&"ConnectionKeys".to_string()));
        assert!(f.body.1 > f.body.0);
    }

    #[test]
    fn cfg_test_marks_items() {
        let src = r#"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn helper(k: &Stek) { let _ = k; }
                struct Fixture { x: [u8; 4] }
            }
        "#;
        let idx = scan_file("t.rs", src);
        assert!(!idx.fns.iter().find(|f| f.name == "prod").unwrap().in_test);
        assert!(idx.fns.iter().find(|f| f.name == "helper").unwrap().in_test);
        assert!(
            idx.types
                .iter()
                .find(|t| t.name == "Fixture")
                .unwrap()
                .in_test
        );
    }

    #[test]
    fn field_types_span_commas_inside_generics() {
        // The comma in `BTreeMap<K, V>` separates generic arguments, not
        // fields — `CacheEntry` must stay in the first field's type, and
        // nested `Vec<Vec<u8>>` (lexed with one `>>` token) must close.
        let src = "struct Cache {\n\
                   entries: BTreeMap<Vec<u8>, CacheEntry>,\n\
                   rows: Vec<Vec<u8>>,\n\
                   n: usize,\n\
                   }";
        let idx = scan_file("t.rs", src);
        let t = &idx.types[0];
        assert_eq!(t.fields.len(), 3, "{:?}", t.fields);
        assert!(t.fields[0].type_idents.contains(&"CacheEntry".to_string()));
        assert!(t.fields[1].byteish);
        assert_eq!(t.fields[2].name, "n");
    }

    #[test]
    fn publishes_annotation_and_target_feature_attr() {
        let src = r#"
            struct Shared {
                // ctlint: publishes(published, horizon)
                epoch: AtomicU64,
                published: Mutex<Arc<Set>>,
            }
            #[target_feature(enable = "avx2")]
            unsafe fn blocks8(state: &[u32; 16]) {}
            fn plain() {}
        "#;
        let idx = scan_file("t.rs", src);
        let t = &idx.types[0];
        assert_eq!(
            t.fields[0].publishes.as_deref(),
            Some(&["published".to_string(), "horizon".to_string()][..])
        );
        assert_eq!(t.fields[1].publishes, None);
        let f = idx.fns.iter().find(|f| f.name == "blocks8").unwrap();
        assert!(f.target_feature);
        assert!(
            !idx.fns
                .iter()
                .find(|f| f.name == "plain")
                .unwrap()
                .target_feature
        );
    }

    #[test]
    fn generic_fn_and_where_clause() {
        let src = "pub fn ct_eq_array<const N: usize>(a: &[u8; N], b: &[u8; N]) -> bool where [u8; N]: Sized { true }";
        let idx = scan_file("t.rs", src);
        let f = &idx.fns[0];
        assert_eq!(f.name, "ct_eq_array");
        assert_eq!(f.params.len(), 2);
        assert!(f.body.1 > f.body.0);
    }
}
