//! A hand-rolled Rust lexer.
//!
//! The build environment is fully offline, so `ts-lint` cannot depend on
//! `syn`/`proc-macro2`. Instead this module tokenizes Rust source directly.
//! It recognises exactly as much of the lexical grammar as the analyses in
//! [`crate::index`] and [`crate::rules`] need:
//!
//! * identifiers (including raw `r#ident`) and keywords (as identifiers),
//! * lifetimes (`'a`) vs. character literals (`'a'`),
//! * string / raw-string / byte-string / char / numeric literals,
//! * line and block comments (retained — `// ctlint:` annotations live in
//!   line comments),
//! * multi-character operators (`==`, `!=`, `->`, `::`, …) as single tokens.
//!
//! Design rule: the lexer **never panics**, whatever bytes it is fed.
//! Malformed input (unterminated strings, stray quotes, non-UTF-8 handled
//! upstream) degrades to best-effort tokens and then EOF. A property test in
//! `tests/lexer_never_panics.rs` enforces this on arbitrary input.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `r#type`).
    Ident,
    /// Lifetime, without the quote (`'a` lexes as `Lifetime("a")`).
    Lifetime,
    /// Any numeric literal (`0x1f`, `1_000u64`, `1.5e3`).
    Number,
    /// String / raw-string / byte-string literal, quotes included.
    Str,
    /// Character or byte literal, quotes included.
    Char,
    /// Line comment (`// …`, text without the `//`) — block comments are
    /// dropped, line comments are kept so `// ctlint:` annotations survive.
    LineComment,
    /// Operator or punctuation, possibly multi-character (`==`, `->`, `{`).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What class of token this is.
    pub kind: TokKind,
    /// The token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line number where the token starts.
    pub line: u32,
}

impl Token {
    /// True if this is a punct token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Multi-character operators, longest first so maximal-munch works.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "...", "..=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenize `src` into a flat token list. Never panics.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if is_ident_start(c) {
                self.ident_or_prefixed(line);
            } else if c.is_ascii_digit() {
                self.number(line);
            } else if c == '"' {
                self.string('"', line);
            } else if c == '\'' {
                self.lifetime_or_char(line);
            } else {
                self.punct(line);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // //
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump(); // /*
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
    }

    /// Identifier, or one of the prefixed literal forms: `r"…"`, `r#"…"#`,
    /// `r#ident`, `b"…"`, `b'…'`, `br"…"`.
    fn ident_or_prefixed(&mut self, line: u32) {
        let c = self.peek(0).unwrap_or(' ');
        // Raw strings / raw identifiers.
        if c == 'r' || c == 'b' {
            let mut hashes = 0usize;
            let mut look = 1usize;
            if c == 'b' && self.peek(1) == Some('r') {
                look = 2;
            }
            while self.peek(look + hashes) == Some('#') {
                hashes += 1;
            }
            match self.peek(look + hashes) {
                Some('"') if c == 'b' && look == 1 && hashes == 0 => {
                    // `b"…"` is an *escaped* byte string, not a raw one:
                    // `b"\""` must not terminate at the escaped quote, or
                    // the rest of the file lexes shifted by one string.
                    self.bump(); // b
                    return self.string('"', line);
                }
                Some('"') => {
                    // consume prefix
                    for _ in 0..(look + hashes + 1) {
                        self.bump();
                    }
                    return self.raw_string_body(hashes, line);
                }
                Some('\'') if c == 'b' && look == 1 && hashes == 0 => {
                    self.bump(); // b
                    self.bump(); // '
                    return self.char_body(line);
                }
                Some(d) if c == 'r' && hashes == 1 && is_ident_start(d) => {
                    // raw identifier r#foo — strip the prefix, keep `foo`
                    self.bump();
                    self.bump();
                    return self.plain_ident(line);
                }
                _ => {}
            }
        }
        self.plain_ident(line);
    }

    fn plain_ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if text.is_empty() {
            // Defensive: caller guaranteed an ident start, but never panic.
            self.bump();
            return;
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // Good enough for analysis: digits, hex/underscores, type
            // suffixes, exponents and a decimal point all glue together.
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                || c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if take {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Number, text, line);
    }

    fn string(&mut self, quote: char, line: u32) {
        let mut text = String::new();
        text.push(quote);
        self.bump();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == quote {
                text.push(c);
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn raw_string_body(&mut self, hashes: usize, line: u32) {
        let mut text = String::from("\"");
        loop {
            match self.peek(0) {
                None => break, // unterminated
                Some('"') => {
                    let mut ok = true;
                    for i in 0..hashes {
                        if self.peek(1 + i) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        text.push('"');
                        for _ in 0..=hashes {
                            self.bump();
                        }
                        break;
                    }
                    text.push('"');
                    self.bump();
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// At a `'`: lifetime (`'a`), loop label, or char literal (`'a'`, `'\n'`).
    fn lifetime_or_char(&mut self, line: u32) {
        // `'x` followed by another `'` is a char literal; `'x` followed by
        // anything else is a lifetime/label. `'\…'` is always a char.
        match self.peek(1) {
            Some(c) if is_ident_start(c) && self.peek(2) != Some('\'') => {
                self.bump(); // '
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, text, line);
            }
            _ => {
                self.bump(); // '
                self.char_body(line);
            }
        }
    }

    /// After the opening quote of a char/byte literal.
    fn char_body(&mut self, line: u32) {
        let mut text = String::from("'");
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '\'' {
                text.push(c);
                self.bump();
                break;
            } else if c == '\n' {
                break; // stray quote, not a literal — stop at end of line
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Char, text, line);
    }

    fn punct(&mut self, line: u32) {
        for op in MULTI_PUNCT {
            if self.starts_with(op) {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                self.push(TokKind::Punct, (*op).to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokKind::Punct, c.to_string(), line);
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn foo(a: &[u8]) -> bool { a == b }");
        assert!(toks.contains(&(TokKind::Ident, "foo".into())));
        assert!(toks.contains(&(TokKind::Punct, "->".into())));
        assert!(toks.contains(&(TokKind::Punct, "==".into())));
    }

    #[test]
    fn ne_is_one_token() {
        let toks = kinds("a != b");
        assert_eq!(toks[1], (TokKind::Punct, "!=".into()));
    }

    #[test]
    fn line_comment_retained_with_line_numbers() {
        let toks = lex("let x = 1;\n// ctlint: secret\nstruct K;");
        let c = toks
            .iter()
            .find(|t| t.kind == TokKind::LineComment)
            .unwrap();
        assert_eq!(c.text.trim(), "ctlint: secret");
        assert_eq!(c.line, 2);
        let k = toks.iter().find(|t| t.is_ident("K")).unwrap();
        assert_eq!(k.line, 3);
    }

    #[test]
    fn block_comments_nested_and_dropped() {
        let toks = kinds("a /* x /* y */ z */ b");
        assert_eq!(
            toks,
            vec![(TokKind::Ident, "a".into()), (TokKind::Ident, "b".into())]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("&'a str, 'x', '\\n', b'q'");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Char, "'x'".into())));
        assert!(toks.contains(&(TokKind::Char, "'\\n'".into())));
        assert!(toks.contains(&(TokKind::Char, "'q'".into())));
    }

    #[test]
    fn strings_raw_and_escaped() {
        let toks = kinds(r###"let s = "a\"b"; let r = r#"no " escape"#;"###);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].1.contains("no \" escape"));
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("r#type");
        assert_eq!(toks, vec![(TokKind::Ident, "type".into())]);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "'a", "/* never closed", "r#\"open", "b'", "'"] {
            let _ = lex(src);
        }
    }

    // --- tokenization edge cases that would corrupt call-graph edges ----

    #[test]
    fn byte_string_escaped_quote_does_not_shift_the_stream() {
        // Regression: `b"…"` used to lex as a *raw* string, so the escaped
        // quote terminated it early and every later token — including call
        // sites — came out of a phantom string context.
        let toks = kinds(r#"let s = b"a\"b"; leak_key(s);"#);
        assert!(toks.contains(&(TokKind::Str, "\"a\\\"b\"".into())));
        assert!(toks.contains(&(TokKind::Ident, "leak_key".into())));
        let parens = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Punct && t == "(")
            .count();
        assert_eq!(parens, 1, "{toks:?}");
    }

    #[test]
    fn raw_string_containing_code_produces_no_phantom_tokens() {
        // `fn`/idents inside a raw string must stay inside the Str token —
        // otherwise the item scanner would see a phantom function item and
        // the call graph would grow edges from string contents.
        let toks = kinds(r###"let t = r#"fn fake() { phantom(); }"#; real();"###);
        assert!(!toks.contains(&(TokKind::Ident, "phantom".into())));
        assert!(toks.contains(&(TokKind::Ident, "real".into())));
    }

    #[test]
    fn nested_block_comment_containing_code_is_fully_dropped() {
        let toks = kinds("a(); /* fn ghost() { /* nested */ call(); } */ b();");
        assert!(!toks.iter().any(|(_, t)| t == "ghost" || t == "call"));
        assert!(toks.contains(&(TokKind::Ident, "a".into())));
        assert!(toks.contains(&(TokKind::Ident, "b".into())));
    }

    #[test]
    fn lifetime_ticks_do_not_swallow_following_tokens() {
        // `'a` in generics must lex as a lifetime and leave `>`/idents
        // intact; `'a'` stays a char literal. A confusion here would make
        // the param parser mis-split and drop call-graph edges.
        let toks = kinds("fn f<'a>(x: &'a [u8]) { g(x, 'a', '\\u{1}') }");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Ident, "g".into())));
        assert!(toks.contains(&(TokKind::Char, "'a'".into())));
        let gts = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Punct && t == ">")
            .count();
        assert_eq!(gts, 1, "{toks:?}");
    }

    #[test]
    fn label_and_static_lifetimes() {
        let toks = kinds("'outer: loop { break 'outer; } let s: &'static str = x;");
        assert!(toks.contains(&(TokKind::Lifetime, "outer".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "static".into())));
    }
}
