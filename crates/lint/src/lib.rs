//! # ts-lint — secret-hygiene and constant-time static analysis
//!
//! The crypto-shortcuts study handles live key material on purpose: STEKs,
//! cached (EC)DHE private scalars, master secrets, connection keys. This
//! crate is the workspace's guard rail — a dependency-free static analyzer
//! (the offline build cannot use `syn`) that walks every `.rs` file and
//! reports four classes of secret-hygiene violations:
//!
//! 1. **`non-ct-comparison`** — `==`/`!=` on secret-tainted bytes instead
//!    of `ts_crypto::ct::ct_eq`,
//! 2. **`secret-leak`** — `derive(Debug)`/`Display` on secret-marked types,
//!    or a `format!`/`println!`-family macro mentioning a secret,
//! 3. **`missing-wipe`** — secret-marked types without wipe-on-drop,
//! 4. **`secret-index`** — table lookups indexed by secret-derived data.
//!
//! Secret marking combines a seed list of type names with `// ctlint:
//! secret` / `// ctlint: public` annotations in source; taint propagates
//! through struct fields and function signatures (see [`rules`]) — and,
//! interprocedurally, through call-site arguments and return values via a
//! workspace call graph and fixed-point flow facts (see [`callgraph`] and
//! [`flow`]). Three further families ride on those facts:
//!
//! * **`secret-lifetime`** — ephemeral key material stored into a type
//!   whose `// ctlint: lifetime(connection|epoch|process)` class is
//!   longer than the material's own (see [`lifetime`]); the crypto
//!   shortcuts the paper measures, made visible in source,
//! * **`wipe-on-all-paths`** — an explicit wipe that a `?`/`return`
//!   between binding and wipe can skip,
//! * **`unsafe-audit`** — `unsafe` blocks without a `// SAFETY:` comment,
//!   or reading secret-tainted data.
//!
//! A second family guards the repro's *determinism* claim — that every
//! table, figure, and `--telemetry-json` snapshot is a pure function of
//! the seed (see [`determinism`]):
//!
//! 5. **`unordered-iteration`** — `HashMap`/`HashSet` visit order escaping
//!    into output (iterate/drain/collect without a sort),
//! 6. **`wall-clock`** — `Instant::now`/`SystemTime::now` outside the
//!    sanctioned telemetry/progress boundary,
//! 7. **`ambient-entropy`** — `thread_rng`, `RandomState::new`,
//!    `from_entropy`, env-derived seeds, `process::id`,
//! 8. **`unordered-reduction`** — mutating captured state from inside a
//!    `parallel_map` closure (worker-order dependent).
//!
//! Deliberate exceptions (the AES S-box, the telemetry wall timers, the
//! measured crypto-shortcut windows) live in `ctlint.toml` at the
//! workspace root — hygiene waivers under `[[allow]]`, determinism waivers
//! under `[[determinism]]`, lifetime waivers under `[[lifetime]]`; every
//! entry needs a reason and must keep matching a real finding or the lint
//! fails.
//!
//! Scanning runs through the parallel incremental [`driver`]: parse
//! results are cached by content hash and fan out over
//! `ts_core::par::parallel_map`, with byte-identical output at any worker
//! count. Run it as `cargo run -p ts-lint` (`--workers N`,
//! `--telemetry-json PATH`) or, enforced, via the root-package integration
//! test `tests/lint_clean.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod concurrency;
pub mod config;
pub mod determinism;
pub mod diag;
pub mod driver;
pub mod flow;
pub mod index;
pub mod lexer;
pub mod lifetime;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::{Allow, Config, ConfigError};
pub use diag::{Diagnostic, Report, Rule, RuleFamily};

/// Analyze in-memory sources (used by fixture tests). Applies the
/// allowlist from `config` and reports stale entries.
pub fn analyze_sources(files: &[(String, String)], config: &Config) -> Report {
    analyze_sources_with_workers(files, config, 1)
}

/// [`analyze_sources`] with an explicit worker count. The report is
/// byte-identical at every worker count; workers only change wall time.
pub fn analyze_sources_with_workers(
    files: &[(String, String)],
    config: &Config,
    workers: usize,
) -> Report {
    let indexes = driver::index_files(files, workers);
    let raw = rules::analyze_with_workers(&indexes, config, workers);
    apply_allowlist(raw, config, files.len())
}

/// Analyze every production `.rs` file under `root`, honouring
/// `root/ctlint.toml` if present. Uses the default worker count.
///
/// Skipped trees: `target/`, VCS metadata, `tests/` and `benches/`
/// directories (test code legitimately compares and prints secrets — the
/// same exemption `#[cfg(test)]` modules get), and the lint's own
/// `tests/fixtures/` corpus of deliberately-bad snippets.
pub fn check_workspace(root: &Path) -> Result<Report, ConfigError> {
    check_workspace_with_workers(root, ts_core::par::default_workers())
}

/// [`check_workspace`] with an explicit worker count.
pub fn check_workspace_with_workers(root: &Path, workers: usize) -> Result<Report, ConfigError> {
    let (files, config) = load_workspace(root)?;
    Ok(analyze_sources_with_workers(&files, &config, workers))
}

/// The secret model the analyzer would use for `root` — what `ts-lint
/// --model` prints. Lets a developer see *why* an identifier is tainted.
pub fn workspace_model(root: &Path) -> Result<rules::SecretModel, ConfigError> {
    let (files, config) = load_workspace(root)?;
    let indexes = driver::index_files(&files, 1);
    Ok(rules::SecretModel::build(&indexes, &config))
}

/// The hash-collection model the determinism rules would use for `root` —
/// the `hash fields` / `hash fns` lines of `ts-lint --model`.
pub fn workspace_determinism_model(
    root: &Path,
) -> Result<determinism::DeterminismModel, ConfigError> {
    let (files, _config) = load_workspace(root)?;
    let indexes = driver::index_files(&files, 1);
    Ok(determinism::DeterminismModel::build(&indexes))
}

/// The concurrency model — lock-field declarations, the global
/// lock-acquisition graph, interprocedural held-lock sets, and publisher
/// atomics — as printed by `ts-lint --model`. Deterministic (name-sorted)
/// and byte-identical for every `workers` value.
pub fn workspace_concurrency_model(
    root: &Path,
    workers: usize,
) -> Result<concurrency::ConcurrencyModel, ConfigError> {
    let (files, _config) = load_workspace(root)?;
    let indexes = driver::index_files(&files, workers);
    let graph = callgraph::CallGraph::build(&indexes);
    Ok(concurrency::ConcurrencyModel::build(&indexes, &graph))
}

fn load_workspace(root: &Path) -> Result<(Vec<(String, String)>, Config), ConfigError> {
    let config_path = root.join("ctlint.toml");
    let config = match std::fs::read_to_string(&config_path) {
        Ok(text) => Config::from_toml(&text)?,
        Err(_) => Config::default(),
    };
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths);
    paths.sort();
    let files: Vec<(String, String)> = paths
        .into_iter()
        .filter_map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            std::fs::read_to_string(&p).ok().map(|src| (rel, src))
        })
        .collect();
    Ok((files, config))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if matches!(
                name.as_str(),
                "target" | ".git" | "tests" | "benches" | "examples"
            ) {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn apply_allowlist(raw: Vec<Diagnostic>, config: &Config, files_scanned: usize) -> Report {
    let mut report = Report {
        files_scanned,
        ..Report::default()
    };
    let mut matched = vec![false; config.allows.len()];
    for d in raw {
        let mut hit = false;
        for (i, a) in config.allows.iter().enumerate() {
            if a.matches(&d) {
                matched[i] = true;
                hit = true;
            }
        }
        if hit {
            report.suppressed.push(d);
        } else {
            report.diagnostics.push(d);
        }
    }
    for (i, a) in config.allows.iter().enumerate() {
        if !matched[i] {
            report.stale_allows.push(a.describe());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_suppresses_and_detects_stale() {
        let src = "// ctlint: secret\nfn sub(s: &mut [u8]) { s[0] = T[s[0] as usize]; }";
        let mut cfg = Config::default();
        cfg.allows.push(Allow {
            section: diag::RuleFamily::Hygiene,
            rule: "secret-index".into(),
            file: "aes.rs".into(),
            ident: "T".into(),
            reason: "test".into(),
        });
        cfg.allows.push(Allow {
            section: diag::RuleFamily::Hygiene,
            rule: "secret-index".into(),
            file: "gone.rs".into(),
            ident: "OLD".into(),
            reason: "stale".into(),
        });
        let report = analyze_sources(&[("crates/x/src/aes.rs".into(), src.into())], &cfg);
        assert!(report.diagnostics.is_empty(), "{}", report.render());
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.stale_allows.len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn clean_sources_are_clean() {
        let report = analyze_sources(
            &[(
                "lib.rs".into(),
                "fn ok(a: u32, b: u32) -> bool { a == b }".into(),
            )],
            &Config::default(),
        );
        assert!(report.is_clean(), "{}", report.render());
    }
}
