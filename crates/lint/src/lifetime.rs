//! The `secret-lifetime` rule: crypto-shortcut lifetime classes.
//!
//! The paper's core observation is that performance shortcuts *extend the
//! lifetime of key material*: a session ticket key that outlives its
//! rotation epoch, a cached session secret that outlives its connection, a
//! Diffie-Hellman exponent reused across handshakes. This rule makes those
//! windows explicit in source. A type declares how long its values may
//! live with an annotation above the definition:
//!
//! ```text
//! // ctlint: lifetime(epoch)
//! pub struct Stek { … }
//! ```
//!
//! The classes are ordered `connection < epoch < process`. Secret types
//! without an annotation default to `connection` — key material is
//! per-connection unless something says otherwise. The rule fires when a
//! type whose declared class is *longer* stores material of a *shorter*
//! class:
//!
//! * **declaration site** — an annotated container has a field whose type
//!   is shorter-lived (`SessionState` inside a `lifetime(process)` cache);
//! * **store site** — a method of an annotated type moves a shorter-lived
//!   parameter or local into `self` (an `insert`/`push`/assignment), or a
//!   constructor packs one into the struct literal.
//!
//! Every finding marks a deliberate crypto shortcut (the thing this repo
//! exists to measure) or a bug; the deliberate ones carry `[[lifetime]]`
//! waivers in `ctlint.toml` whose reasons cite the measured window.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Rule};
use crate::index::{matching, FileIndex, FnDef};
use crate::lexer::{TokKind, Token};
use crate::rules::{is_keyword, SecretModel};

/// How long values of a type are allowed to live, ordered shortest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LifetimeClass {
    /// Dies with the TLS connection (keys, per-handshake secrets).
    Connection,
    /// Dies at a rotation epoch (STEKs, resumption windows).
    Epoch,
    /// Lives as long as the process (caches, managers, global state).
    Process,
}

impl LifetimeClass {
    /// Parse an annotation body (`connection` / `epoch` / `process`).
    pub fn parse(s: &str) -> Option<LifetimeClass> {
        match s {
            "connection" => Some(LifetimeClass::Connection),
            "epoch" => Some(LifetimeClass::Epoch),
            "process" => Some(LifetimeClass::Process),
            _ => None,
        }
    }

    /// The annotation spelling of this class.
    pub fn name(self) -> &'static str {
        match self {
            LifetimeClass::Connection => "connection",
            LifetimeClass::Epoch => "epoch",
            LifetimeClass::Process => "process",
        }
    }
}

/// Verbs that move an argument into the receiver's storage.
const STORE_CALLS: &[&str] = &[
    "insert",
    "push",
    "push_front",
    "push_back",
    "extend",
    "replace",
    "store",
];

/// The workspace lifetime-class map, from explicit annotations.
pub struct LifetimeModel {
    /// Types carrying `// ctlint: lifetime(…)`, by name.
    pub declared: BTreeMap<String, LifetimeClass>,
}

impl LifetimeModel {
    /// Collect every explicitly annotated production type.
    pub fn build<F: AsRef<FileIndex>>(files: &[F]) -> LifetimeModel {
        let mut declared = BTreeMap::new();
        for f in files {
            for t in &f.as_ref().types {
                if t.in_test {
                    continue;
                }
                if let Some(c) = t.lifetime_class.as_deref().and_then(LifetimeClass::parse) {
                    declared.insert(t.name.clone(), c);
                }
            }
        }
        LifetimeModel { declared }
    }

    /// The class of type `name`: its annotation if present, else
    /// `connection` for secret types (key material is per-connection by
    /// default), else none — public types carry no class at all.
    pub fn class_of(&self, name: &str, model: &SecretModel) -> Option<LifetimeClass> {
        if let Some(c) = self.declared.get(name) {
            return Some(*c);
        }
        if model.secret_types.contains(name) {
            return Some(LifetimeClass::Connection);
        }
        None
    }

    /// The shortest class named by any identifier in a type span (a
    /// `Vec<Stek>` is epoch-classed through `Stek`).
    fn span_class(&self, idents: &[String], model: &SecretModel) -> Option<LifetimeClass> {
        idents.iter().filter_map(|n| self.class_of(n, model)).min()
    }
}

/// Declaration-site check for one file: annotated containers must not
/// declare fields of a shorter class.
pub fn check_decls(
    f: &FileIndex,
    model: &SecretModel,
    ltm: &LifetimeModel,
    diags: &mut Vec<Diagnostic>,
) {
    for t in &f.types {
        if t.in_test {
            continue;
        }
        let Some(container) = ltm.declared.get(&t.name).copied() else {
            continue;
        };
        for fd in &t.fields {
            if fd.annotated_public {
                continue;
            }
            let Some(cls) = ltm.span_class(&fd.type_idents, model) else {
                continue;
            };
            if cls < container {
                diags.push(Diagnostic {
                    rule: Rule::SecretLifetime,
                    file: f.path.clone(),
                    line: t.line,
                    ident: fd.name.clone(),
                    message: format!(
                        "field `{}` of `{}` holds {}-lifetime secret material but the \
                         container is declared lifetime({}); the shortcut extends the \
                         key's exposure window — shorten the container's class, \
                         re-derive per {}, or waive under [[lifetime]] with the \
                         measured window as the reason",
                        fd.name,
                        t.name,
                        cls.name(),
                        container.name(),
                        cls.name(),
                    ),
                });
            }
        }
    }
}

/// Store-site check for one function: a method of an annotated type moving
/// shorter-lived material into `self` (store verbs, struct literals, field
/// assignment).
pub fn check_stores(
    f: &FileIndex,
    func: &FnDef,
    model: &SecretModel,
    ltm: &LifetimeModel,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(self_ty) = func.self_type.as_deref() else {
        return;
    };
    let Some(container) = ltm.declared.get(self_ty).copied() else {
        return;
    };
    let toks = &f.tokens[func.body.0..func.body.1];

    // Shorter-lived values in scope: parameters of a shorter class, then
    // `let` bindings whose initialiser mentions a shorter-classed type or
    // an already-short binding (one forward pass — bindings precede uses).
    let mut short: BTreeMap<String, LifetimeClass> = BTreeMap::new();
    for (name, type_idents) in &func.params {
        if let Some(c) = ltm.span_class(type_idents, model) {
            if c < container {
                short.insert(name.clone(), c);
            }
        }
    }
    collect_short_bindings(toks, model, ltm, container, &mut short);
    if short.is_empty() {
        return;
    }

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // `self.…….verb(args)` — a store verb whose receiver chain roots
        // at `self`.
        if t.kind == TokKind::Ident
            && STORE_CALLS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            let mut j = i - 1; // at the `.` before the verb
            while j >= 2 && toks[j - 1].kind == TokKind::Ident && toks[j - 2].is_punct(".") {
                j -= 2;
            }
            let rooted_at_self = j >= 1 && toks[j - 1].is_ident("self");
            let close = matching(toks, i + 1, toks.len());
            if rooted_at_self {
                if let Some((name, cls)) = first_short(&toks[i + 2..close], &short) {
                    diags.push(store_diag(
                        f,
                        toks[i].line,
                        &name,
                        cls,
                        self_ty,
                        container,
                        &format!("`.{}(…)` stores it into `self`", t.text),
                    ));
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        // `TypeName { … }` / `Self { … }` constructor literal.
        if t.kind == TokKind::Ident
            && (t.text == self_ty || t.text == "Self")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("{"))
            && !(i > 0
                && (toks[i - 1].is_ident("struct")
                    || toks[i - 1].is_ident("impl")
                    || toks[i - 1].is_ident("for")))
        {
            let close = matching(toks, i + 1, toks.len());
            if let Some((name, cls)) = first_short(&toks[i + 2..close], &short) {
                diags.push(store_diag(
                    f,
                    toks[i].line,
                    &name,
                    cls,
                    self_ty,
                    container,
                    "the constructor literal packs it into the value",
                ));
            }
            i = close + 1;
            continue;
        }
        // `self.field = <expr>;`
        if t.is_punct("=")
            && i >= 3
            && toks[i - 1].kind == TokKind::Ident
            && toks[i - 2].is_punct(".")
            && toks[i - 3].is_ident("self")
        {
            let mut end = i + 1;
            let mut depth = 0usize;
            while end < toks.len() {
                let x = &toks[end];
                if x.kind == TokKind::Punct {
                    match x.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                end += 1;
            }
            if let Some((name, cls)) = first_short(&toks[i + 1..end], &short) {
                diags.push(store_diag(
                    f,
                    toks[i].line,
                    &name,
                    cls,
                    self_ty,
                    container,
                    &format!("it is assigned to `self.{}`", toks[i - 1].text),
                ));
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
}

/// One forward pass adding `let` bindings whose initialiser mentions a
/// shorter-classed type name or an already-short binding.
fn collect_short_bindings(
    toks: &[Token],
    model: &SecretModel,
    ltm: &LifetimeModel,
    container: LifetimeClass,
    short: &mut BTreeMap<String, LifetimeClass>,
) {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        // pattern … = initialiser ;   (depth-0 `=` and `;`)
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut eq = None;
        while j < toks.len() {
            let x = &toks[j];
            if x.kind == TokKind::Punct {
                match x.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "=" if depth == 0 => {
                        eq = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i = j + 1;
            continue;
        };
        let mut end = eq + 1;
        let mut depth = 0usize;
        while end < toks.len() {
            let x = &toks[end];
            if x.kind == TokKind::Punct {
                match x.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            end += 1;
        }
        let cls = toks[eq + 1..end]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .filter_map(|t| {
                ltm.class_of(&t.text, model)
                    .or_else(|| short.get(&t.text).copied())
            })
            .min();
        if let Some(cls) = cls {
            if cls < container {
                for x in &toks[i + 1..eq] {
                    if x.is_punct(":") {
                        break;
                    }
                    if x.kind == TokKind::Ident
                        && !matches!(x.text.as_str(), "mut" | "ref" | "_" | "box")
                        && !x.text.starts_with(char::is_uppercase)
                    {
                        short.insert(x.text.clone(), cls);
                    }
                }
            }
        }
        i = eq + 1;
    }
}

/// The first shorter-lived binding mentioned in a span (projections
/// through `.len()` etc. do not matter here: storing any handle to the
/// value extends its life).
fn first_short(
    toks: &[Token],
    short: &BTreeMap<String, LifetimeClass>,
) -> Option<(String, LifetimeClass)> {
    for (p, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            continue;
        }
        if p > 0 && toks[p - 1].is_punct(".") {
            continue; // field/method name, not a binding mention
        }
        if let Some(c) = short.get(&t.text) {
            return Some((t.text.clone(), *c));
        }
    }
    None
}

fn store_diag(
    f: &FileIndex,
    line: u32,
    name: &str,
    cls: LifetimeClass,
    self_ty: &str,
    container: LifetimeClass,
    how: &str,
) -> Diagnostic {
    Diagnostic {
        rule: Rule::SecretLifetime,
        file: f.path.clone(),
        line,
        ident: name.to_string(),
        message: format!(
            "{}-lifetime `{}` outlives its class: {} and `{}` is declared \
             lifetime({}); the shortcut keeps the secret alive past its \
             window — wipe and re-derive instead, or waive under [[lifetime]]",
            cls.name(),
            name,
            how,
            self_ty,
            container.name(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::diag::Rule;
    use crate::index::scan_file;

    fn run(src: &str) -> Vec<Diagnostic> {
        let idx = scan_file("fix.rs", src);
        crate::rules::analyze(&[idx], &Config::default())
            .into_iter()
            .filter(|d| d.rule == Rule::SecretLifetime)
            .collect()
    }

    #[test]
    fn class_ordering() {
        assert!(LifetimeClass::Connection < LifetimeClass::Epoch);
        assert!(LifetimeClass::Epoch < LifetimeClass::Process);
        assert_eq!(LifetimeClass::parse("epoch"), Some(LifetimeClass::Epoch));
        assert_eq!(LifetimeClass::parse("forever"), None);
    }

    #[test]
    fn decl_site_fires_on_shorter_field() {
        let d = run("// ctlint: lifetime(process)\nstruct Cache { held: Vec<SessionState> }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].ident, "held");
    }

    #[test]
    fn equal_or_no_class_is_clean() {
        let d = run(
            "// ctlint: lifetime(process)\nstruct Cache { counts: Vec<u64> }\n\
             // ctlint: lifetime(connection)\nstruct Conn { keys: Option<ConnectionKeys> }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn store_site_fires_on_insert_of_param() {
        let d = run(
            "// ctlint: lifetime(process)\nstruct Cache { slots: Vec<u64> }\n\
             impl Cache { fn put(&mut self, state: SessionState) { \
             self.slots.push(hash(state)); } }",
        );
        assert!(d.iter().any(|x| x.ident == "state"), "{d:?}");
    }

    #[test]
    fn store_site_tracks_local_bindings_into_literals() {
        let d = run("// ctlint: lifetime(epoch)\nstruct Stek { k: [u8; 16] }\n\
             impl Drop for Stek { fn drop(&mut self) {} }\n\
             // ctlint: lifetime(process)\nstruct Mgr { id: u64 }\n\
             impl Mgr { fn new() -> Mgr { let active = Stek { k: [0; 16] }; \
             let held = prepare(active); Mgr { id: held } } }");
        assert!(
            d.iter().any(|x| x.ident == "held" || x.ident == "active"),
            "{d:?}"
        );
    }

    #[test]
    fn unannotated_methods_are_clean() {
        let d = run("struct Plain { slots: Vec<u64> }\n\
             impl Plain { fn put(&mut self, state: SessionState) { \
             self.slots.push(hash(state)); } }");
        assert!(d.is_empty(), "{d:?}");
    }
}
