//! CLI entry point: `cargo run -p ts-lint [workspace-root]`.
//!
//! Prints every finding (and stale allowlist entry) and exits non-zero if
//! the workspace is not clean — the same check `tests/lint_clean.rs`
//! enforces from `cargo test`.
//!
//! Flags: `--model` dumps the inferred secret/hash/concurrency models
//! (including the lock-acquisition graph and held-lock sets) instead of
//! linting; `--workers N` sets the analysis worker count (output is
//! byte-identical at any N); `--telemetry-json PATH` writes the
//! `crypto.lint.*` cost counters as a deterministic JSON snapshot.

// The CLI's whole job is printing the report.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

/// Pull the value of a `--flag VALUE` pair out of `args`, if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    if at + 1 >= args.len() {
        return None;
    }
    let value = args.remove(at + 1);
    args.remove(at);
    Some(value)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let dump_model = args.iter().any(|a| a == "--model");
    args.retain(|a| a != "--model");
    let workers = take_value(&mut args, "--workers")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(ts_core::par::default_workers)
        .max(1);
    let telemetry_json = take_value(&mut args, "--telemetry-json").map(PathBuf::from);
    let root = args.first().map(PathBuf::from).unwrap_or_else(|| {
        // Default to the workspace root when run via `cargo run -p ts-lint`.
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or(manifest)
    });
    if !root.is_dir() {
        // A typo'd root would otherwise scan zero files and "pass".
        println!(
            "error: workspace root {} is not a directory",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    if dump_model {
        let join = |s: &std::collections::BTreeSet<String>| {
            s.iter().cloned().collect::<Vec<_>>().join(" ")
        };
        return match (
            ts_lint::workspace_model(&root),
            ts_lint::workspace_determinism_model(&root),
            ts_lint::workspace_concurrency_model(&root, workers),
        ) {
            (Ok(m), Ok(dm), Ok(cm)) => {
                println!("secret types:  {}", join(&m.secret_types));
                println!("direct types:  {}", join(&m.direct_secret_types));
                println!("secret fields: {}", join(&m.secret_fields));
                println!("public fields: {}", join(&m.public_fields));
                println!("secret fns:    {}", join(&m.secret_fns));
                println!("hash fields:   {}", join(&dm.hash_fields));
                println!("hash fns:      {}", join(&dm.hash_fns));
                print!("{}", cm.render());
                ExitCode::SUCCESS
            }
            (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
                println!("config error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let code = match ts_lint::check_workspace_with_workers(&root, workers) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            println!("config error: {e}");
            ExitCode::FAILURE
        }
    };
    if let Some(path) = telemetry_json {
        // The deterministic form (no wall-clock fields): scan cost counters
        // (`crypto.lint.*`) for CI artifacts and regression tracking.
        let text = ts_telemetry::snapshot().to_json(false).to_json_string();
        if let Err(e) = std::fs::write(&path, text) {
            println!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    code
}
