//! The secret-hygiene rules, plus the taint model they share.
//!
//! ## Taint model
//!
//! A *secret type* is any type named in the seed list ([`crate::config`]),
//! annotated `// ctlint: secret`, or — by fixpoint propagation — any struct
//! with a non-`// ctlint: public` field whose type is itself secret.
//!
//! A *secret field* is a byte-carrying field (`u8` arrays/vecs/slices, `Ub`
//! limbs) of a secret type, unless annotated `// ctlint: public`. Field
//! accesses `.field` to one of these taint the whole expression.
//!
//! Inside a function, taint starts at parameters of secret type (or every
//! parameter if the `fn` carries `// ctlint: secret`) and flows forward
//! through `let` / `for` bindings whose initialiser mentions tainted data.
//! Calls to secret-returning functions (configured names, annotated `fn`s,
//! and anything returning a secret type) taint their result.
//!
//! On top of the per-function pass, the interprocedural facts from
//! [`crate::flow`] seed extra taint: parameters that receive tainted
//! arguments at some resolved call site elsewhere in the workspace, and
//! functions whose returns were observed to carry secrets. That is what
//! catches a master secret laundered through two innocently-typed helper
//! hops into a telemetry sink.
//!
//! `.len()` / `.is_empty()` projections de-taint: lengths of secrets are
//! public in this protocol (TLS key sizes are fixed by the cipher suite).
//!
//! Test code (`#[cfg(test)]` modules, `tests/`/`benches/` trees) is exempt:
//! tests legitimately compare and print key material.

use std::collections::{BTreeSet, HashSet};

use crate::callgraph::{CallGraph, FnId};
use crate::config::Config;
use crate::diag::{Diagnostic, Rule};
use crate::flow::FlowFacts;
use crate::index::{matching, FileIndex, FnDef};
use crate::lexer::{TokKind, Token};
use crate::lifetime::LifetimeModel;

/// Formatter-family macros whose arguments must never mention a secret.
const FMT_MACROS: &[&str] = &[
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "dbg",
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
    "trace",
    "debug",
    "info",
    "warn",
    "error",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// The workspace-wide secret model derived from all file indexes.
pub struct SecretModel {
    /// Every secret type name (seed + annotated + propagated).
    pub secret_types: BTreeSet<String>,
    /// Secret types marked directly (seed list or annotation) — these are
    /// the ones that must implement `Drop`/`Wipe` themselves.
    pub direct_secret_types: BTreeSet<String>,
    /// Byte-carrying field names of secret types.
    pub secret_fields: BTreeSet<String>,
    /// Field names annotated `// ctlint: public` — projecting a tainted
    /// value through one of these yields public data.
    pub public_fields: BTreeSet<String>,
    /// Functions whose return value is secret.
    pub secret_fns: BTreeSet<String>,
    /// Call names that ship their arguments into exported telemetry
    /// (counters, histograms, the event stream). Tainted arguments to
    /// these fire [`Rule::TelemetrySink`].
    pub telemetry_sinks: BTreeSet<String>,
}

impl SecretModel {
    /// Build the model: seed lists, annotations, then field-type fixpoint.
    pub fn build<F: AsRef<FileIndex>>(files: &[F], config: &Config) -> SecretModel {
        let mut secret: BTreeSet<String> = config.secret_types.iter().cloned().collect();
        let mut direct = secret.clone();
        for f in files {
            for t in &f.as_ref().types {
                if t.annotated_secret && !t.in_test {
                    secret.insert(t.name.clone());
                    direct.insert(t.name.clone());
                }
            }
        }
        // Propagate through struct fields until stable. Test-only types
        // and functions stay out of the model: matching is by bare name,
        // and a test helper must not taint a production identifier.
        loop {
            let mut changed = false;
            for f in files {
                for t in &f.as_ref().types {
                    if t.in_test || secret.contains(&t.name) {
                        continue;
                    }
                    let inherits = t.fields.iter().any(|fd| {
                        !fd.annotated_public && fd.type_idents.iter().any(|n| secret.contains(n))
                    });
                    if inherits {
                        secret.insert(t.name.clone());
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Secret fields: byte material of secret types. Public-annotated
        // fields are collected separately so projections through them
        // de-taint.
        let mut fields = BTreeSet::new();
        let mut public_fields = BTreeSet::new();
        for f in files {
            for t in &f.as_ref().types {
                if t.in_test || !secret.contains(&t.name) {
                    continue;
                }
                for fd in &t.fields {
                    if fd.annotated_public {
                        public_fields.insert(fd.name.clone());
                        continue;
                    }
                    if fd.byteish || fd.annotated_secret {
                        fields.insert(fd.name.clone());
                    }
                }
            }
        }
        // Secret-returning functions.
        let mut fns: BTreeSet<String> = config.secret_fns.iter().cloned().collect();
        for f in files {
            for func in &f.as_ref().fns {
                if func.in_test {
                    continue;
                }
                if func.annotated_secret || func.return_idents.iter().any(|n| secret.contains(n)) {
                    fns.insert(func.name.clone());
                }
            }
        }
        SecretModel {
            secret_types: secret,
            direct_secret_types: direct,
            secret_fields: fields,
            public_fields,
            secret_fns: fns,
            telemetry_sinks: config.telemetry_sinks.iter().cloned().collect(),
        }
    }
}

/// Run all rules over the indexed files. Returns raw (pre-allowlist)
/// diagnostics sorted by file/line.
pub fn analyze<F: AsRef<FileIndex> + Sync>(files: &[F], config: &Config) -> Vec<Diagnostic> {
    analyze_with_workers(files, config, 1)
}

/// [`analyze`] with an explicit worker count for the interprocedural
/// fixpoint and the per-file rule pass. The output is byte-identical at
/// every worker count: parallel stages return values re-assembled in
/// chunk order, and the flow rounds are Jacobi-synchronous.
pub fn analyze_with_workers<F: AsRef<FileIndex> + Sync>(
    files: &[F],
    config: &Config,
    workers: usize,
) -> Vec<Diagnostic> {
    let model = SecretModel::build(files, config);
    let graph = CallGraph::build(files);
    let facts = crate::flow::solve(files, &model, &graph, workers);
    crate::driver::TAINT_ROUNDS.add(facts.rounds);
    let ltm = LifetimeModel::build(files);

    // Which types have a wipe story (Drop or Wipe impl anywhere)?
    let mut wiped: HashSet<&str> = HashSet::new();
    for f in files {
        for im in &f.as_ref().impls {
            if let Some(tr) = &im.trait_name {
                if tr == "Drop" || tr == "Wipe" {
                    wiped.insert(im.type_name.as_str());
                }
            }
        }
    }

    let ids: Vec<usize> = (0..files.len()).collect();
    let scan = |_chunk: usize, chunk_ids: &[usize]| -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for &fi in chunk_ids {
            check_file(files, fi, &model, &facts, &ltm, &wiped, &mut out);
        }
        out
    };
    let mut diags = if workers > 1 {
        ts_core::par::parallel_map(&ids, workers, scan)
    } else {
        scan(0, &ids)
    };

    // The determinism family shares the indexes but has its own model
    // (hash-collection fields/fns instead of secrets).
    crate::determinism::check(files, &mut diags);

    // The concurrency family reuses the call graph for interprocedural
    // held-lock propagation and SIMD dispatch-gate walks.
    crate::concurrency::check(files, &graph, &mut diags);

    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule.id(), &a.ident).cmp(&(&b.file, b.line, b.rule.id(), &b.ident))
    });
    diags.dedup();
    diags
}

/// Run every per-file rule over `files[fi]`.
fn check_file<F: AsRef<FileIndex>>(
    files: &[F],
    fi: usize,
    model: &SecretModel,
    facts: &FlowFacts,
    ltm: &LifetimeModel,
    wiped: &HashSet<&str>,
    diags: &mut Vec<Diagnostic>,
) {
    let f = files[fi].as_ref();
    {
        // Rule: secret-leak via derives, and missing-wipe on definitions.
        for t in &f.types {
            if t.in_test || !model.secret_types.contains(&t.name) {
                continue;
            }
            // A derived Debug only leaks when the type itself holds raw
            // secret bytes. Wrapper types whose secrecy comes from a
            // secret-typed field format that field through its own
            // (manual, redacting) impl, so the derive composes safely.
            let holds_raw_bytes = model.direct_secret_types.contains(&t.name)
                || t.fields.iter().any(|fd| fd.byteish && !fd.annotated_public);
            if holds_raw_bytes && t.derives.iter().any(|d| d == "Debug") {
                diags.push(Diagnostic {
                    rule: Rule::SecretLeak,
                    file: f.path.clone(),
                    line: t.line,
                    ident: t.name.clone(),
                    message: format!(
                        "secret type `{}` derives Debug; derive leaks key bytes into any \
                         formatter — write a redacting manual impl instead",
                        t.name
                    ),
                });
            }
            if t.is_struct
                && model.direct_secret_types.contains(&t.name)
                && !wiped.contains(t.name.as_str())
            {
                diags.push(Diagnostic {
                    rule: Rule::MissingWipe,
                    file: f.path.clone(),
                    line: t.line,
                    ident: t.name.clone(),
                    message: format!(
                        "secret type `{}` has no `Drop`/`Wipe` impl; key material will \
                         survive in freed memory — implement `ts_crypto::wipe::Wipe` and \
                         wipe on drop",
                        t.name
                    ),
                });
            }
        }
        // Rule: secret-leak via a manual Display impl.
        for im in &f.impls {
            if im.in_test {
                continue;
            }
            if im.trait_name.as_deref() == Some("Display")
                && model.secret_types.contains(&im.type_name)
            {
                diags.push(Diagnostic {
                    rule: Rule::SecretLeak,
                    file: f.path.clone(),
                    line: im.line,
                    ident: im.type_name.clone(),
                    message: format!(
                        "secret type `{}` implements Display; secret-bearing types must \
                         not be user-printable",
                        im.type_name
                    ),
                });
            }
        }
        // Rule: secret-lifetime at declaration sites.
        crate::lifetime::check_decls(f, model, ltm, diags);
        // Rule: unsafe-audit — missing `// SAFETY:` justification.
        for ub in &f.unsafe_blocks {
            if !ub.in_test && !ub.has_safety_comment {
                diags.push(Diagnostic {
                    rule: Rule::UnsafeAudit,
                    file: f.path.clone(),
                    line: ub.line,
                    ident: "unsafe".to_string(),
                    message: "unsafe block has no `// SAFETY:` comment; every unsafe \
                              block must state the invariant that makes it sound"
                        .to_string(),
                });
            }
        }
        // Body rules.
        for (gi, func) in f.fns.iter().enumerate() {
            if func.in_test {
                continue;
            }
            let id = FnId {
                file: fi,
                fn_idx: gi,
            };
            analyze_body(f, func, id, model, facts, ltm, diags);
        }
    }
}

/// Per-function taint environment.
pub(crate) struct TaintEnv<'m> {
    /// Tainted local bindings (seeded parameters plus `let`/`for` flow).
    pub(crate) idents: HashSet<String>,
    /// The workspace secret model.
    pub(crate) model: &'m SecretModel,
    /// Secret-returning function names — the model's set, possibly
    /// extended with flow-discovered ones (see [`crate::flow`]).
    secret_fns: &'m BTreeSet<String>,
}

impl<'m> TaintEnv<'m> {
    /// An environment with no tainted bindings yet, judging call results
    /// against `secret_fns`.
    pub(crate) fn new(model: &'m SecretModel, secret_fns: &'m BTreeSet<String>) -> TaintEnv<'m> {
        TaintEnv {
            idents: HashSet::new(),
            model,
            secret_fns,
        }
    }

    /// Is the expression spanned by `toks` secret-tainted?
    ///
    /// Mentions immediately projected through `.len()` / `.is_empty()` do
    /// not count — secret *sizes* are public in this protocol.
    pub(crate) fn span_tainted(&self, toks: &[Token]) -> bool {
        self.first_tainted(toks).is_some()
    }

    /// The first tainted identifier mentioned in `toks`, if any.
    pub(crate) fn first_tainted(&self, toks: &[Token]) -> Option<String> {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let after_dot = i > 0 && toks[i - 1].is_punct(".");
            let mentions = if after_dot {
                self.model.secret_fields.contains(&t.text)
            } else {
                self.idents.contains(&t.text)
                    || (self.secret_fns.contains(&t.text)
                        && toks.get(i + 1).is_some_and(|n| n.is_punct("(")))
            };
            if mentions && !self.projection_public(toks, i) {
                return Some(t.text.clone());
            }
        }
        None
    }

    /// After the mention at `i`, does the field chain resolve to public
    /// data — a length query (sizes are fixed by the cipher suite), a
    /// scalar DRBG draw (simulation sampling randomness; the generator
    /// *state* stays secret, and byte-level draws like `bytes` /
    /// `fill_bytes` stay tainted), or a `// ctlint: public` field?
    fn projection_public(&self, toks: &[Token], i: usize) -> bool {
        const PUBLIC_CALLS: &[&str] = &[
            "len",
            "is_empty",
            "bit_len",
            "gen_range",
            "gen_bool",
            "gen_f64",
            "next_u32",
            "next_u64",
        ];
        // Walk the whole chain: `a.material.len()` is public even though
        // `material` is secret (the length of a secret is not a secret).
        // A name in both field sets resolves secret — some type still
        // declares it as live key bytes. Unknown projections (`.clone()`,
        // `.to_vec()`) carry the verdict of what they project from.
        let mut public = false;
        let mut j = i + 1;
        while j + 1 < toks.len() && toks[j].is_punct(".") && toks[j + 1].kind == TokKind::Ident {
            let name = &toks[j + 1].text;
            if PUBLIC_CALLS.contains(&name.as_str())
                && toks.get(j + 2).is_some_and(|t| t.is_punct("("))
            {
                return true;
            }
            if self.model.secret_fields.contains(name) {
                public = false;
            } else if self.model.public_fields.contains(name) {
                public = true;
            }
            j += 2;
        }
        public
    }
}

fn analyze_body(
    f: &FileIndex,
    func: &FnDef,
    id: FnId,
    model: &SecretModel,
    facts: &FlowFacts,
    ltm: &LifetimeModel,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &f.tokens[func.body.0..func.body.1];
    // Seeding (see `flow::seed_env`): only *direct* secret types (seed
    // list + `// ctlint: secret`) taint a whole parameter — those are the
    // actual key-material holders — plus any parameter position the
    // interprocedural fixpoint proved receives tainted arguments. Then one
    // forward pass over `let` / `for` bindings.
    let env = crate::flow::seed_env(model, facts, id, func, toks);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            check_comparison(f, func, toks, i, &env, diags);
            i += 1;
        } else if t.kind == TokKind::Ident
            && FMT_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            i = check_fmt_macro(f, toks, i, &env, diags);
        } else if t.is_punct("[") && is_index_open(toks, i) {
            check_index(f, toks, i, &env, diags);
            i += 1;
        } else if t.kind == TokKind::Ident
            && model.telemetry_sinks.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            i = check_sink_call(f, toks, i, &env, diags);
        } else {
            i += 1;
        }
    }

    // Rule: wipe-on-all-paths — an explicit wipe that an early exit skips.
    check_wipe_paths(f, toks, diags);
    // Rule: secret-lifetime at store sites.
    crate::lifetime::check_stores(f, func, model, ltm, diags);
    // Rule: unsafe-audit — tainted reads inside this fn's unsafe blocks.
    for ub in &f.unsafe_blocks {
        if ub.in_test || ub.body.0 < func.body.0 || ub.body.1 > func.body.1 {
            continue;
        }
        if let Some(ident) = env.first_tainted(&f.tokens[ub.body.0..ub.body.1]) {
            diags.push(Diagnostic {
                rule: Rule::UnsafeAudit,
                file: f.path.clone(),
                line: ub.line,
                ident: ident.clone(),
                message: format!(
                    "unsafe block reads secret-tainted `{ident}`; raw-pointer access to \
                     key material bypasses every other guard — keep secrets behind safe \
                     APIs or waive with the audit rationale"
                ),
            });
        }
    }
}

/// Wipe verbs: `x.wipe()` method calls and the `ts_crypto::wipe` free
/// functions. The rule checks that no `?` / `return` between a binding's
/// initialising statement and its wipe can skip the wipe.
const WIPE_FREE_FNS: &[&str] = &["wipe_bytes", "wipe_u32s", "wipe_u64s"];

fn check_wipe_paths(f: &FileIndex, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let mut target: Option<String> = None;
        if t.is_ident("wipe")
            && i >= 2
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks[i - 2].kind == TokKind::Ident
            && !is_keyword(&toks[i - 2].text)
            // A plain local only: `self.field.wipe()` chains are the
            // owning type's lifecycle, not a local cleanup obligation.
            && !(i >= 3 && toks[i - 3].is_punct("."))
        {
            target = Some(toks[i - 2].text.clone());
        } else if t.kind == TokKind::Ident
            && WIPE_FREE_FNS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            let close = matching(toks, i + 1, toks.len());
            // The wiped binding: last plain ident of the argument
            // (`&mut kb` → `kb`); a field access means it is not a local.
            let span = &toks[i + 2..close];
            if let Some(p) = span
                .iter()
                .rposition(|x| x.kind == TokKind::Ident && !is_keyword(&x.text))
            {
                if !(p > 0 && span[p - 1].is_punct(".")) {
                    target = Some(span[p].text.clone());
                }
            }
        }
        if let Some(name) = target.filter(|n| n != "self") {
            check_one_wipe(f, toks, &name, i, diags);
        }
        i += 1;
    }
}

/// Is the explicit wipe of `name` at token `pos` reachable on all paths
/// from its binding? Flags the first `?` / `return` in between.
fn check_one_wipe(
    f: &FileIndex,
    toks: &[Token],
    name: &str,
    pos: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(first) = toks[..pos].iter().position(|t| t.is_ident(name)) else {
        return;
    };
    // The end of the statement that introduces the binding: a `?` inside
    // the initialiser itself cannot leak the value (it does not exist yet).
    let mut j = first;
    let mut depth = 0usize;
    let mut stmt_end = pos;
    while j < pos {
        let x = &toks[j];
        if x.kind == TokKind::Punct {
            match x.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => {
                    stmt_end = j;
                    break;
                }
                _ => {}
            }
        }
        j += 1;
    }
    for k in stmt_end..pos {
        let x = &toks[k];
        if x.is_punct("?") || x.is_ident("return") {
            let how = if x.is_punct("?") { "`?`" } else { "`return`" };
            diags.push(Diagnostic {
                rule: Rule::WipeOnAllPaths,
                file: f.path.clone(),
                line: x.line,
                ident: name.to_string(),
                message: format!(
                    "`{name}` is wiped at line {} but the {how} here exits first and \
                     skips the wipe, leaving key material live in freed memory — wipe \
                     before the fallible call or hold the buffer in a drop guard",
                    toks[pos].line
                ),
            });
            return; // one finding per wipe site
        }
    }
}

/// Seed and grow the binding taint set in one forward pass.
pub(crate) fn collect_bindings(toks: &[Token], env: &mut TaintEnv<'_>) {
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("let") {
            // In `while let` / `if let` the "initialiser" is the scrutinee
            // and ends at the block brace; a plain `let`'s initialiser ends
            // at the semicolon (its depth-0 braces are struct literals).
            let conditional_let =
                i > 0 && (toks[i - 1].is_ident("while") || toks[i - 1].is_ident("if"));
            // pattern … = initialiser … ;   (depth-0 `=` and `;`)
            let mut j = i + 1;
            let mut depth = 0usize;
            let mut eq = None;
            while j < toks.len() {
                let x = &toks[j];
                if x.kind == TokKind::Punct {
                    match x.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        "=" if depth == 0 => {
                            eq = Some(j);
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            if let Some(eq) = eq {
                let mut k = eq + 1;
                let mut depth = 0usize;
                while k < toks.len() {
                    let x = &toks[k];
                    if x.kind == TokKind::Punct {
                        match x.text.as_str() {
                            "{" if depth == 0 && conditional_let => break,
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => {
                                if depth == 0 {
                                    break;
                                }
                                depth -= 1;
                            }
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                if env.span_tainted(&toks[eq + 1..k]) {
                    bind_pattern_idents(&toks[i + 1..eq], env);
                }
                i = eq + 1;
                continue;
            }
        } else if t.is_ident("for") {
            // for pat in iter { … }
            let pat_start = i + 1;
            let mut j = pat_start;
            while j < toks.len() && !toks[j].is_ident("in") {
                j += 1;
            }
            if j < toks.len() {
                let mut k = j + 1;
                let mut depth = 0usize;
                while k < toks.len() {
                    let x = &toks[k];
                    if x.kind == TokKind::Punct {
                        match x.text.as_str() {
                            "{" if depth == 0 => break,
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth = depth.saturating_sub(1),
                            _ => {}
                        }
                    }
                    k += 1;
                }
                if env.span_tainted(&toks[j + 1..k]) {
                    bind_pattern_idents(&toks[pat_start..j], env);
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Add the binding identifiers of a pattern to the taint set. Uppercase
/// identifiers (enum constructors, types) and keywords are skipped.
fn bind_pattern_idents(pat: &[Token], env: &mut TaintEnv<'_>) {
    for t in pat {
        if t.kind == TokKind::Ident
            && !matches!(t.text.as_str(), "mut" | "ref" | "_" | "box")
            && !t.text.starts_with(char::is_uppercase)
        {
            env.idents.insert(t.text.clone());
        }
    }
}

/// Is the `[` at `i` an index operation (as opposed to an array literal,
/// attribute, or macro bracket)?
fn is_index_open(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = &toks[i - 1];
    prev.kind == TokKind::Ident && !is_keyword(&prev.text)
        || prev.is_punct("]")
        || prev.is_punct(")")
}

pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "mut"
            | "ref"
            | "return"
            | "if"
            | "else"
            | "match"
            | "in"
            | "for"
            | "while"
            | "loop"
            | "break"
            | "continue"
            | "as"
            | "move"
            | "fn"
            | "impl"
            | "where"
            | "use"
            | "pub"
            | "struct"
            | "enum"
            | "const"
            | "static"
            | "type"
            | "trait"
            | "mod"
            | "unsafe"
            | "dyn"
            | "box"
            | "await"
            | "async"
            | "crate"
            | "self"
            | "Self"
            | "super"
            | "true"
            | "false"
    )
}

fn check_comparison(
    f: &FileIndex,
    _func: &FnDef,
    toks: &[Token],
    op: usize,
    env: &TaintEnv<'_>,
    diags: &mut Vec<Diagnostic>,
) {
    let left = operand_left(toks, op);
    let right = operand_right(toks, op);
    let hit = env
        .first_tainted(&toks[left..op])
        .or_else(|| env.first_tainted(&toks[op + 1..right]));
    if let Some(ident) = hit {
        let message = format!(
            "`{}` on secret-tainted `{}` is a timing oracle; use \
             `ts_crypto::ct::ct_eq` (or `ct_eq_array`) instead",
            toks[op].text, ident
        );
        diags.push(Diagnostic {
            rule: Rule::NonCtComparison,
            file: f.path.clone(),
            line: toks[op].line,
            ident,
            message,
        });
    }
}

/// Walk the primary-expression chain leftwards from the operator.
/// Returns the start index of the operand span.
fn operand_left(toks: &[Token], op: usize) -> usize {
    let mut i = op;
    while i > 0 {
        let t = &toks[i - 1];
        match t.kind {
            TokKind::Ident if !is_keyword(&t.text) => i -= 1,
            TokKind::Number | TokKind::Str | TokKind::Char => i -= 1,
            TokKind::Punct => match t.text.as_str() {
                "." | "::" | "?" => i -= 1,
                ")" | "]" => {
                    // jump to the matching opener
                    let mut depth = 0i64;
                    let mut j = i - 1;
                    loop {
                        match toks[j].text.as_str() {
                            ")" | "]" | "}" if toks[j].kind == TokKind::Punct => depth += 1,
                            "(" | "[" | "{" if toks[j].kind == TokKind::Punct => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if j == 0 {
                            break;
                        }
                        j -= 1;
                    }
                    i = j;
                }
                "&" | "*" => i -= 1,
                _ => break,
            },
            _ => break,
        }
    }
    i
}

/// Walk the primary-expression chain rightwards from the operator.
/// Returns the end index (exclusive) of the operand span.
fn operand_right(toks: &[Token], op: usize) -> usize {
    let mut i = op + 1;
    // unary prefixes
    while i < toks.len()
        && toks[i].kind == TokKind::Punct
        && matches!(toks[i].text.as_str(), "&" | "*" | "!" | "-")
    {
        i += 1;
    }
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident if t.text == "as" => i += 1,
            TokKind::Ident if !is_keyword(&t.text) => i += 1,
            TokKind::Number | TokKind::Str | TokKind::Char => i += 1,
            TokKind::Punct => match t.text.as_str() {
                "." | "::" | "?" => i += 1,
                "(" | "[" => i = matching(toks, i, toks.len()) + 1,
                _ => break,
            },
            _ => break,
        }
    }
    i
}

/// Check the argument tokens of a formatter-family macro. Returns the
/// index to resume scanning from.
fn check_fmt_macro(
    f: &FileIndex,
    toks: &[Token],
    name_idx: usize,
    env: &TaintEnv<'_>,
    diags: &mut Vec<Diagnostic>,
) -> usize {
    let open = name_idx + 2;
    if !toks
        .get(open)
        .is_some_and(|t| t.is_punct("(") || t.is_punct("[") || t.is_punct("{"))
    {
        return name_idx + 1;
    }
    let close = matching(toks, open, toks.len());
    if let Some(ident) = env.first_tainted(&toks[open + 1..close]) {
        let message = format!(
            "`{}!` argument mentions secret-tainted `{}`; secrets must not reach \
             formatters or log output",
            toks[name_idx].text, ident
        );
        diags.push(Diagnostic {
            rule: Rule::SecretLeak,
            file: f.path.clone(),
            line: toks[name_idx].line,
            ident,
            message,
        });
        // one finding per macro invocation is enough
        return close + 1;
    }
    name_idx + 1
}

/// Check the argument tokens of a telemetry sink call (`observe(..)`,
/// `emit(..)`, `.record(..)`, plus configured names). Returns the index
/// to resume scanning from.
fn check_sink_call(
    f: &FileIndex,
    toks: &[Token],
    name_idx: usize,
    env: &TaintEnv<'_>,
    diags: &mut Vec<Diagnostic>,
) -> usize {
    let open = name_idx + 1;
    let close = matching(toks, open, toks.len());
    if let Some(ident) = env.first_tainted(&toks[open + 1..close]) {
        let message = format!(
            "telemetry sink `{}` receives secret-tainted `{}`; metrics are \
             exported, so only public scalars and static labels may reach a \
             sink — record a length, count, or class label instead",
            toks[name_idx].text, ident
        );
        diags.push(Diagnostic {
            rule: Rule::TelemetrySink,
            file: f.path.clone(),
            line: toks[name_idx].line,
            ident,
            message,
        });
        // one finding per sink call is enough
        return close + 1;
    }
    name_idx + 1
}

fn check_index(
    f: &FileIndex,
    toks: &[Token],
    open: usize,
    env: &TaintEnv<'_>,
    diags: &mut Vec<Diagnostic>,
) {
    let close = matching(toks, open, toks.len());
    if close <= open + 1 {
        return;
    }
    if let Some(ident) = env.first_tainted(&toks[open + 1..close]) {
        let base = toks[..open]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
            .map(|t| t.text.clone())
            .unwrap_or_else(|| "<expr>".to_string());
        diags.push(Diagnostic {
            rule: Rule::SecretIndex,
            file: f.path.clone(),
            line: toks[open].line,
            ident: base,
            message: format!(
                "table `{}` is indexed by secret-tainted `{}`; data-dependent lookups \
                 leak through the cache — mask with `ct_select` or justify in ctlint.toml",
                toks[..open]
                    .iter()
                    .rev()
                    .find(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
                    .map(|t| t.text.as_str())
                    .unwrap_or("<expr>"),
                ident
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::scan_file;

    fn run(src: &str) -> Vec<Diagnostic> {
        let idx = scan_file("fix.rs", src);
        analyze(&[idx], &Config::default())
    }

    #[test]
    fn comparison_on_secret_param_fires() {
        let d = run("fn check(keys: &Stek, other: &[u8]) -> bool { keys.enc_key == *other }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::NonCtComparison);
    }

    #[test]
    fn len_comparison_is_public() {
        let d = run("fn check(keys: &Stek) -> bool { keys.enc_key.len() == 16 }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn let_binding_propagates_taint() {
        let d = run("fn check(state: &SessionState, x: &[u8]) -> bool {\
                 let ms = state.master_secret; ms != *x }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::NonCtComparison);
    }

    #[test]
    fn fmt_macro_leak_fires() {
        let d = run("fn show(kp: &DhKeyPair) -> String { format!(\"{:?}\", kp) }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::SecretLeak);
    }

    #[test]
    fn derive_debug_on_secret_type_fires() {
        let d = run(
            "// ctlint: secret\n#[derive(Debug, Clone)]\nstruct K { b: [u8; 32] }\n\
             impl Drop for K { fn drop(&mut self) {} }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::SecretLeak);
        assert_eq!(d[0].ident, "K");
    }

    #[test]
    fn missing_wipe_fires_and_drop_silences() {
        let bad = run("// ctlint: secret\nstruct K { b: [u8; 32] }");
        assert!(bad.iter().any(|d| d.rule == Rule::MissingWipe), "{bad:?}");
        let good = run(
            "// ctlint: secret\nstruct K { b: [u8; 32] }\nimpl Drop for K { fn drop(&mut self) {} }",
        );
        assert!(good.iter().all(|d| d.rule != Rule::MissingWipe), "{good:?}");
    }

    #[test]
    fn secret_index_fires() {
        let d = run(
            "// ctlint: secret\nfn sub(state: &mut [u8]) { for b in state.iter_mut() { *b = TABLE[*b as usize]; } }",
        );
        assert!(
            d.iter()
                .any(|x| x.rule == Rule::SecretIndex && x.ident == "TABLE"),
            "{d:?}"
        );
    }

    #[test]
    fn public_annotation_detaints_field() {
        let d = run(
            "// ctlint: secret\nstruct K {\n// ctlint: public\nname: [u8; 16],\nkey: [u8; 16],\n}\n\
             impl Drop for K { fn drop(&mut self) {} }\n\
             fn find(k: &K, want: &[u8]) -> bool { k.name == *want }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn taint_propagates_through_containing_struct() {
        // Wrapper has a DhKeyPair field → Wrapper is secret → its byteish
        // sibling field is a secret field.
        let d = run("struct Wrapper { kp: DhKeyPair, salt: Vec<u8> }\n\
             fn cmp(w: &Wrapper, x: &[u8]) -> bool { w.salt == *x }");
        assert!(d.iter().any(|x| x.rule == Rule::NonCtComparison), "{d:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let d = run(
            "#[cfg(test)]\nmod tests {\n fn t(k: &Stek) { assert!(k.enc_key == [0u8; 16]); }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn tainted_arg_to_sink_fires() {
        let d = run("fn leak(keys: &Stek) { HANDSHAKES.observe(keys.enc_key[0] as u64); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::TelemetrySink);
        assert_eq!(d[0].ident, "keys");
    }

    #[test]
    fn tainted_arg_to_free_fn_sink_fires() {
        let d = run(
            "fn leak(state: &SessionState) { let ms = state.master_secret; emit(ms[0] as u64); }",
        );
        assert!(
            d.iter()
                .any(|x| x.rule == Rule::TelemetrySink && x.ident == "ms"),
            "{d:?}"
        );
    }

    #[test]
    fn public_projections_through_sinks_are_clean() {
        // Lengths of secrets are public; so are unrelated scalars.
        let d = run("fn sample(keys: &Stek, n: usize) {\
                 HIST.observe(keys.enc_key.len() as u64);\
                 SPAN.record(n as u64, 7);\
             }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn sink_definitions_do_not_fire() {
        // A nested `fn record(...)` is a definition, not a call.
        let d = run("fn outer(keys: &Stek) { fn record(v: u64) { let _ = v; } record(3); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn configured_extra_sink_fires() {
        let mut cfg = Config::default();
        cfg.telemetry_sinks.push("count_outcome".to_string());
        let idx = scan_file(
            "fix.rs",
            "fn leak(keys: &Stek) { count_outcome(keys.enc_key[0]); }",
        );
        let d = analyze(&[idx], &cfg);
        assert!(d.iter().any(|x| x.rule == Rule::TelemetrySink), "{d:?}");
    }

    #[test]
    fn secret_fn_call_taints_binding() {
        let d = run("fn handshake(pre: &[u8]) -> bool {\
               let ms = master_secret(pre, b\"x\", b\"y\");\
               ms == [0u8; 48] }");
        assert!(d.iter().any(|x| x.rule == Rule::NonCtComparison), "{d:?}");
    }
}
