//! The lock-graph construction must be *total* — it never panics, even on
//! byte soup — and *deterministic over file order*: the model is keyed by
//! names and its edge witnesses are minimised over (path, line), so any
//! permutation of the input files must render byte-identically. This is
//! the same pure-function-of-the-input contract the determinism rules
//! demand of the simulation itself.

use proptest::prelude::*;
use ts_lint::callgraph::CallGraph;
use ts_lint::concurrency::ConcurrencyModel;
use ts_lint::driver;

/// A small cross-file corpus exercising every model surface: a two-field
/// cycle split across functions, an ambiguous field name owned by two
/// types, a publisher atomic, a fan-out under guard, and a gated
/// target-feature kernel.
fn corpus() -> Vec<(String, String)> {
    vec![
        (
            "a.rs".to_string(),
            "struct A { m: Mutex<u8>, n: Mutex<u8> }\n\
             impl A {\n\
                 fn mn(&self) { let gm = self.m.lock(); let gn = self.n.lock(); }\n\
                 fn nm(&self) { let gn = self.n.lock(); self.grab_m(); }\n\
                 fn grab_m(&self) { let gm = self.m.lock(); }\n\
             }\n"
                .to_string(),
        ),
        (
            "b.rs".to_string(),
            "struct B { m: Mutex<u8> }\n\
             impl B {\n\
                 fn hold(&self) { let g = self.m.lock(); helper(); }\n\
             }\n\
             fn helper() {}\n"
                .to_string(),
        ),
        (
            "c.rs".to_string(),
            "struct C {\n\
                 // ctlint: publishes(payload)\n\
                 epoch: AtomicU64,\n\
                 payload: Mutex<u64>,\n\
             }\n\
             impl C {\n\
                 fn bad(&self) -> u64 { self.epoch.load(Ordering::Relaxed) }\n\
             }\n"
                .to_string(),
        ),
        (
            "d.rs".to_string(),
            "struct D { state: Mutex<Vec<u8>> }\n\
             impl D {\n\
                 fn fan(&self, xs: &[u8]) { let g = self.state.lock(); parallel_map(xs, 4, |_c, v: &[u8]| v.to_vec()); }\n\
             }\n"
                .to_string(),
        ),
        (
            "e.rs".to_string(),
            "fn kern_available() -> bool { true }\n\
             #[target_feature(enable = \"avx2\")]\n\
             unsafe fn kern8(x: &mut [u8]) { x[0] = 1; }\n\
             fn run(x: &mut [u8]) {\n\
                 if kern_available() {\n\
                     // SAFETY: kern_available() gates this path on CPUID.\n\
                     unsafe { kern8(x) }\n\
                 }\n\
             }\n"
                .to_string(),
        ),
    ]
}

fn render(files: &[(String, String)]) -> String {
    let indexes = driver::index_files(files, 1);
    let graph = CallGraph::build(&indexes);
    ConcurrencyModel::build(&indexes, &graph).render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Any permutation of the corpus renders the same model bytes. The
    // vendored proptest stand-in has no shuffle strategy, so a generated
    // seed drives a Fisher–Yates shuffle (splitmix64 step) here.
    #[test]
    fn model_is_file_order_independent(seed in any::<u64>()) {
        let mut order = corpus();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        prop_assert_eq!(render(&order), render(&corpus()));
    }

    // Totality: construction never panics, whatever half-typed source the
    // workspace walk feeds it — including dangling `.lock()` chains,
    // unbalanced brackets, and stray `for`/`let` fragments.
    #[test]
    fn construction_is_total_on_soup(
        src in "[a-zA-Z0-9_ .:;,<>=!&|'\"/#\\[\\]{}()*-]{0,200}",
        salt in "[a-z]{0,8}",
    ) {
        let shaped = format!(
            "struct S{salt} {{ m: Mutex<u8> }} fn f{salt}() {{ {src} }}"
        );
        let files = vec![("soup.rs".to_string(), shaped)];
        let _ = render(&files);
    }
}
