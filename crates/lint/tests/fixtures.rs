//! Fixture corpus driver.
//!
//! Every `tests/fixtures/*.rs` snippet declares the findings it must
//! produce in `// expect: <rule-id> <ident>` header lines — none means the
//! snippet must analyze clean. Each file is analyzed in isolation with the
//! default config, and the produced (rule, ident) multiset must match the
//! declaration *exactly*: a bad snippet firing an extra diagnostic is as
//! much a regression as a good snippet firing at all.
//!
//! File-name convention: `bad_*` must declare at least one expectation,
//! `good_*` must declare none. The workspace scan in `check_workspace`
//! skips `tests/` directories, so the corpus never pollutes the real lint.

use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixture_files() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .to_string();
            let src = std::fs::read_to_string(&p).expect("readable fixture");
            (name, src)
        })
        .collect()
}

fn expectations(src: &str) -> Vec<(String, String)> {
    src.lines()
        .filter_map(|l| l.trim().strip_prefix("// expect: "))
        .map(|rest| {
            let mut it = rest.split_whitespace();
            let rule = it.next().expect("expect line: rule id").to_string();
            let ident = it.next().expect("expect line: anchor ident").to_string();
            (rule, ident)
        })
        .collect()
}

#[test]
fn fixtures_produce_exactly_their_expected_diagnostics() {
    let files = fixture_files();
    assert!(
        files.len() >= 10,
        "fixture corpus went missing ({} files)",
        files.len()
    );
    for (name, src) in &files {
        let mut expected = expectations(src);
        if name.starts_with("bad_") {
            assert!(
                !expected.is_empty(),
                "{name}: bad fixture declares no expectations"
            );
        } else if name.starts_with("good_") {
            assert!(
                expected.is_empty(),
                "{name}: good fixture declares expectations"
            );
        } else {
            panic!("{name}: fixture names must start with bad_ or good_");
        }
        let report =
            ts_lint::analyze_sources(&[(name.clone(), src.clone())], &ts_lint::Config::default());
        let mut got: Vec<(String, String)> = report
            .diagnostics
            .iter()
            .map(|d| (d.rule.id().to_string(), d.ident.clone()))
            .collect();
        expected.sort();
        got.sort();
        assert_eq!(
            got,
            expected,
            "{name} diagnostics diverge:\n{}",
            report.render()
        );
    }
}

#[test]
fn every_rule_has_a_firing_and_a_clean_fixture() {
    let files = fixture_files();
    let fired: BTreeSet<String> = files
        .iter()
        .flat_map(|(_, src)| expectations(src))
        .map(|(rule, _)| rule)
        .collect();
    for rule in ts_lint::Rule::all() {
        assert!(
            fired.contains(rule.id()),
            "no firing fixture for {}",
            rule.id()
        );
    }
    let clean = files
        .iter()
        .filter(|(name, _)| name.starts_with("good_"))
        .count();
    assert!(
        clean >= 4,
        "want at least one clean fixture per rule, have {clean}"
    );
}
