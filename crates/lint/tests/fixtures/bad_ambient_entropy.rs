// expect: ambient-entropy RandomState
// expect: ambient-entropy env
// Ambient entropy — OS randomness, environment variables — makes two runs
// with the same --seed diverge.
use std::collections::hash_map::RandomState;

pub fn seed_from_environment() -> u64 {
    let _hasher_seed = RandomState::new();
    std::env::var("REPRO_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}
