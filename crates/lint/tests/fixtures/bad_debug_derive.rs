// expect: secret-leak SessionTicketKey
//
// `#[derive(Debug)]` on a type holding raw key bytes prints them into any
// log line that formats the struct.

// ctlint: secret
#[derive(Debug)]
struct SessionTicketKey {
    aes_key: [u8; 16],
}

impl Drop for SessionTicketKey {
    fn drop(&mut self) {
        self.aes_key = [0; 16];
    }
}
