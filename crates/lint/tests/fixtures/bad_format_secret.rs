// expect: secret-leak d
//
// A formatter-family macro whose arguments mention a secret value writes
// key material to log output.

// ctlint: secret
struct Drbg {
    k: Vec<u8>,
}

impl Drop for Drbg {
    fn drop(&mut self) {
        self.k.clear();
    }
}

fn log_state(d: &Drbg) -> String {
    format!("drbg key = {:02x?}", d.k)
}
