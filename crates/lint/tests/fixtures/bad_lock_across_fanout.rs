// expect: lock-across-callback Registry.entries
//
// The guard bound to `g` is still live when the `parallel_map` fan-out
// starts: any worker closure that re-enters the registry deadlocks, and
// even the happy path serialises the whole fan-out behind one lock.

struct Registry {
    entries: Mutex<Vec<u8>>,
}

impl Registry {
    fn broadcast(&self, items: &[u8], workers: usize) -> Vec<Vec<u8>> {
        let g = self.entries.lock();
        g.len();
        parallel_map(items, workers, |_chunk, xs: &[u8]| xs.to_vec())
    }
}
