// expect: lock-order CacheShards.a
//
// Two functions acquire the same pair of mutex fields in opposite
// orders: one thread in `ab` and one in `ba` can each hold their first
// lock and block forever on the second. The lock-acquisition graph gets
// both `a -> b` and `b -> a`, a cycle.

struct CacheShards {
    a: Mutex<Vec<u8>>,
    b: Mutex<Vec<u8>>,
}

impl CacheShards {
    fn ab(&self) -> usize {
        let ga = self.a.lock();
        let gb = self.b.lock();
        ga.len() + gb.len()
    }

    fn ba(&self) -> usize {
        let gb = self.b.lock();
        let ga = self.a.lock();
        ga.len() + gb.len()
    }
}
