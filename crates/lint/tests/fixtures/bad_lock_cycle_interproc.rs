// expect: lock-order Ledger.accounts
//
// The cycle only appears interprocedurally: each function takes one lock
// directly and the other through a helper while the first guard is still
// live. Held-lock sets propagated over the call graph close the loop.

struct Ledger {
    accounts: Mutex<Vec<u64>>,
    journal: Mutex<Vec<u64>>,
}

impl Ledger {
    fn post(&self) {
        let accounts = self.accounts.lock();
        self.append_journal();
        accounts.len();
    }

    fn append_journal(&self) {
        let journal = self.journal.lock();
        journal.len();
    }

    fn replay(&self) {
        let journal = self.journal.lock();
        self.touch_accounts();
        journal.len();
    }

    fn touch_accounts(&self) {
        let accounts = self.accounts.lock();
        accounts.len();
    }
}
