// expect: lock-order Sharded.shards
//
// Two elements of the same lock-array field held at once: with `from`
// and `to` swapped between two threads this deadlocks exactly like a
// two-field cycle. The sharded SessionCache stays safe by never holding
// two shards — lock, copy out, unlock, then lock the next.

struct Sharded {
    shards: Vec<Mutex<Vec<u8>>>,
}

impl Sharded {
    fn transfer(&self, from: usize, to: usize) {
        let src = self.shards[from].lock();
        let dst = self.shards[to].lock();
        src.len() + dst.len();
    }
}
