// expect: missing-wipe ExportKey
//
// A secret-marked type with neither `Drop` nor `Wipe` leaves key bytes in
// freed memory for the process lifetime.

// ctlint: secret
struct ExportKey {
    bytes: Vec<u8>,
}
