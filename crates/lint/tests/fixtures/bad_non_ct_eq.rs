// expect: non-ct-comparison a
//
// A byte-for-byte `==` on key material short-circuits at the first
// mismatching byte — the classic MAC-check timing oracle.

// ctlint: secret
struct MacKey {
    material: Vec<u8>,
}

impl Drop for MacKey {
    fn drop(&mut self) {
        self.material.clear();
    }
}

fn verify(a: &MacKey, b: &MacKey) -> bool {
    a.material == b.material
}
