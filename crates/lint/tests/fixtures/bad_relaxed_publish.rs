// expect: atomic-ordering epoch
//
// `epoch` is annotated as publishing `current`: readers treat an epoch
// match as proof their pinned snapshot is still the published one. A
// `Relaxed` load orders nothing, so a reader can observe the new epoch
// value before the snapshot it vouches for.

struct Snapshot {
    // ctlint: publishes(current)
    epoch: AtomicU64,
    current: Mutex<u64>,
}

impl Snapshot {
    fn read_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    fn read_current(&self) -> u64 {
        let current = self.current.lock();
        *current
    }
}
