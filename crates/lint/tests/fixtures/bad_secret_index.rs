// expect: secret-index LOOKUP
//
// Indexing a table with secret-derived data leaks the secret through
// cache-line timing (the AES T-table attack shape).

const LOOKUP: [u8; 256] = [0; 256];

// ctlint: secret
fn substitute(state: &mut [u8]) {
    for b in state.iter_mut() {
        *b = LOOKUP[*b as usize];
    }
}
