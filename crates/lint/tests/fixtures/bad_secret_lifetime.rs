// A process-lifetime cache holding connection-lifetime session state:
// the exact crypto shortcut the paper measures. Fires at the declaration
// (the field's class is shorter than the container's) and at the store
// site (a connection-class parameter pushed into `self`).
// expect: secret-lifetime held
// expect: secret-lifetime state

// ctlint: lifetime(process)
struct ResumptionCache {
    held: Vec<SessionState>,
}

impl ResumptionCache {
    fn put(&mut self, state: SessionState) {
        self.held.push(state);
    }
}
