// expect: simd-dispatch-gate blocks4
//
// The dispatch path is gated correctly, but the SAFETY comment restates
// the code (bounds arithmetic) instead of the invariant that actually
// makes the `unsafe` sound — which CPUID detect gates this path. The
// comment must name the gate so a reader can audit the pairing.

fn mul_available() -> bool {
    true
}

#[target_feature(enable = "pclmulqdq")]
unsafe fn blocks4(x: &mut [u8]) {
    x[0] = x[0].wrapping_add(1);
}

pub fn driver(x: &mut [u8]) {
    if mul_available() {
        // SAFETY: offsets are in bounds for the 16-byte block.
        unsafe { blocks4(x) }
    }
}
