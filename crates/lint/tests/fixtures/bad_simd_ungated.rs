// expect: simd-dispatch-gate gf_mul8
//
// The kernel's SAFETY comment claims an upstream CPUID check, but no
// caller path back through the call graph ever crosses one: `update`
// reaches `fold` reaches the #[target_feature] kernel unconditionally.
// On a CPU without AVX2 this is an illegal-instruction fault.

#[target_feature(enable = "avx2")]
unsafe fn gf_mul8(x: &mut [u8]) {
    x[0] = x[0].wrapping_add(1);
}

fn fold(x: &mut [u8]) {
    // SAFETY: caller verified CPUID avx2 support upstream.
    unsafe { gf_mul8(x) }
}

pub fn update(x: &mut [u8]) {
    fold(x);
}
