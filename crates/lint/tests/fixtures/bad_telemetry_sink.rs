// A secret-tainted value flowing into a telemetry sink: metric snapshots
// are exported and diffed, so this is an exfiltration channel even though
// nothing is "printed".
// expect: telemetry-sink keys
// expect: telemetry-sink ms

static HANDSHAKE_COST: Histogram = Histogram::new("tls.handshake.cost", &[1, 10]);

fn leak_via_histogram(keys: &Stek) {
    HANDSHAKE_COST.observe(keys.enc_key[0] as u64);
}

fn leak_via_event(state: &SessionState) {
    let ms = state.master_secret;
    emit(ms[0] as u64);
}
