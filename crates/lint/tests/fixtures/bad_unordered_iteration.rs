// expect: unordered-iteration counts
// A HashMap's randomized visit order escapes straight into the returned
// vector: two runs with different hash seeds print different rows.
use std::collections::HashMap;

pub fn histogram(samples: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for s in samples {
        *counts.entry(*s).or_default() += 1;
    }
    let mut rows = Vec::new();
    for (k, v) in counts {
        rows.push((k, v));
    }
    rows
}
