// expect: unordered-reduction total
// Mutating captured state from inside a parallel_map closure makes the
// result depend on which worker gets there first.
pub fn sum_via_captured_accumulator(items: &[u64]) -> u64 {
    let mut total = 0u64;
    parallel_map(items, 8, |_id, chunk| {
        for x in chunk {
            total += *x;
        }
        Vec::<u64>::new()
    });
    total
}

fn parallel_map<T, R>(items: &[T], workers: usize, f: impl FnMut(usize, &[T]) -> Vec<R>) -> Vec<R> {
    let mut f = f;
    let _ = workers;
    f(0, items)
}
