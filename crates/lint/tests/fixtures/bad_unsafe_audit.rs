// Two unsafe-audit failures: a block with no `// SAFETY:` justification,
// and a (justified) block that reads secret-tainted key bytes through a
// raw pointer — key material must stay behind safe APIs.
// expect: unsafe-audit unsafe
// expect: unsafe-audit keys

fn copy_words(dst: &mut [u64], src: &[u64]) {
    unsafe {
        core::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr(), src.len());
    }
}

fn export(keys: &Stek, out: *mut u8) {
    // SAFETY: caller guarantees `out` points at 16 writable bytes.
    unsafe {
        core::ptr::copy_nonoverlapping(keys.enc_key.as_ptr(), out, 16);
    }
}
