// expect: wall-clock Instant
// expect: wall-clock SystemTime
// Wall-clock reads in experiment logic make results depend on when (and
// how fast) the run happened instead of on the seed.
use std::time::{Instant, SystemTime, UNIX_EPOCH};

pub fn jittered_day() -> u64 {
    let t = Instant::now();
    let epoch = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_secs();
    epoch / 86_400 + t.elapsed().as_secs()
}
