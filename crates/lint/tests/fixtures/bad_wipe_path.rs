// The wipe is written, but the fallible transmit between binding and
// wipe can exit first via `?` — on that path the key bytes survive in
// freed memory unwiped.
// expect: wipe-on-all-paths kb

fn derive_and_send(seed: &[u8]) -> Result<(), Error> {
    let mut kb = expand(seed);
    transmit(&kb)?;
    wipe_bytes(&mut kb);
    Ok(())
}
