// The constant-time comparison helper is the sanctioned way to compare
// key material; mentioning secrets as *arguments* is not a finding.

// ctlint: secret
struct MacKey {
    material: Vec<u8>,
}

impl Drop for MacKey {
    fn drop(&mut self) {
        self.material.clear();
    }
}

fn verify(a: &MacKey, b: &MacKey) -> bool {
    ts_crypto::ct::ct_eq(&a.material, &b.material)
}
