// A clean sharded structure: every acquisition is a statement-scoped
// temporary (lock, use, release within the expression), so no two locks
// are ever held at once and the lock graph has no edges at all.

struct Shards {
    slots: Vec<Mutex<Vec<u8>>>,
}

impl Shards {
    fn insert(&self, i: usize, v: u8) {
        self.slots[i].lock().push(v);
    }

    fn sweep(&self) -> usize {
        let mut total = 0;
        for slot in self.slots.iter() {
            total += slot.lock().len();
        }
        total
    }
}
