// Ordered structures, lookup-only hash maps, and sorted drains are all
// legitimate: none of them lets the hash seed reach the output.
use std::collections::{BTreeMap, HashMap};

pub fn histogram(samples: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for s in samples {
        *counts.entry(*s).or_default() += 1;
    }
    counts.into_iter().collect()
}

pub fn lookup_only(index: &HashMap<String, u64>, key: &str) -> Option<u64> {
    index.get(key).copied()
}

pub fn sorted_drain(index: &HashMap<String, u64>) -> Vec<String> {
    let mut keys: Vec<String> = index.keys().cloned().collect();
    keys.sort();
    keys
}

pub fn rekeyed(index: &HashMap<String, u64>) -> BTreeMap<String, u64> {
    index.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<String, u64>>()
}
