// Comparing secret *sizes* is public: lengths are fixed by the cipher
// suite, so `.len()` projections de-taint.

// ctlint: secret
struct MacKey {
    material: Vec<u8>,
}

impl Drop for MacKey {
    fn drop(&mut self) {
        self.material.clear();
    }
}

fn well_formed(a: &MacKey) -> bool {
    a.material.len() == 32
}
