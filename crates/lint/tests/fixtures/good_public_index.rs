// Table lookups indexed by public data (here: record lengths) are fine.

fn histogram(lengths: &[usize]) -> [u32; 64] {
    let mut bins = [0u32; 64];
    for &l in lengths.iter() {
        bins[l % 64] += 1;
    }
    bins
}
