// The epoch-publication pattern with correct orderings: AcqRel on the
// bump that accompanies replacing the published value, Acquire on the
// reader side — the annotated atomic never uses Relaxed.

struct Snapshot {
    // ctlint: publishes(current)
    epoch: AtomicU64,
    current: Mutex<u64>,
}

impl Snapshot {
    fn replace(&self, v: u64) -> u64 {
        let mut current = self.current.lock();
        *current = v;
        self.epoch.fetch_add(1, Ordering::AcqRel)
    }

    fn read_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}
