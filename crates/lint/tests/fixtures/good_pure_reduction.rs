// The closure returns its chunk's partial result and the harness
// concatenates in chunk order — no captured state, no worker races.
pub fn sum_via_chunk_results(items: &[u64]) -> u64 {
    let partials = parallel_map(items, 8, |_id, chunk| vec![chunk.iter().sum::<u64>()]);
    partials.into_iter().sum()
}

fn parallel_map<T, R>(items: &[T], workers: usize, f: impl Fn(usize, &[T]) -> Vec<R>) -> Vec<R> {
    let _ = workers;
    f(0, items)
}
