// A *manual* Debug impl is the sanctioned redaction mechanism: the type
// controls exactly what reaches the formatter.

// ctlint: secret
struct SessionTicketKey {
    aes_key: [u8; 16],
}

impl Drop for SessionTicketKey {
    fn drop(&mut self) {
        self.aes_key = [0; 16];
    }
}

impl std::fmt::Debug for SessionTicketKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SessionTicketKey(<redacted>)")
    }
}
