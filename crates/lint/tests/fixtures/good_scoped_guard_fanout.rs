// The lock-then-fan-out pattern done right: the guard lives in an inner
// block that closes (releasing the lock) before `parallel_map` starts,
// so workers never contend with — or deadlock against — the holder.

struct Registry {
    entries: Mutex<Vec<u8>>,
}

impl Registry {
    fn broadcast(&self, items: &[u8], workers: usize) -> Vec<Vec<u8>> {
        let seed = {
            let g = self.entries.lock();
            g.len() as u8
        };
        parallel_map(items, workers, move |_chunk, xs: &[u8]| {
            xs.iter().map(|b| b.wrapping_add(seed)).collect()
        })
    }
}
