// Lifetime classes lining up: a process-lifetime aggregate stores only
// public digests, and a connection-lifetime slot holds connection-class
// keys — equal classes, no shortcut.

// ctlint: lifetime(process)
struct HandshakeStats {
    counts: Vec<u64>,
}

impl HandshakeStats {
    fn bump(&mut self, outcome: u64) {
        self.counts.push(outcome);
    }
}

// ctlint: lifetime(connection)
struct ConnSlot {
    keys: Option<ConnectionKeys>,
}
