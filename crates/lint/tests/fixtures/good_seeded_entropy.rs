// All randomness flows from an explicit caller-provided seed, so replaying
// the seed replays the run.
pub struct SeededRng(u64);

impl SeededRng {
    pub fn from_seed(seed: u64) -> Self {
        SeededRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        self.0
    }
}
