// A sound SIMD dispatch: the only path to the #[target_feature] kernel
// crosses a CPUID detect, and the SAFETY comment names that gate as the
// invariant (not the bounds arithmetic the compiler already sees).

fn fold_available() -> bool {
    true
}

#[target_feature(enable = "avx2")]
unsafe fn fold8(x: &mut [u8]) {
    x[0] = x[0].wrapping_add(1);
}

pub fn fold(x: &mut [u8]) {
    if fold_available() {
        // SAFETY: fold_available() gates this path on the CPUID avx2
        // detect, so the target-feature contract holds at every call.
        unsafe { fold8(x) }
    } else {
        x[0] = x[0].wrapping_add(1);
    }
}
