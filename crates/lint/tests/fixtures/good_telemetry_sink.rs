// Telemetry over public facts about secrets is fine: lengths, counts and
// static class labels never reveal key bytes.

static TICKET_SIZE: Histogram = Histogram::new("tls.ticket.size", &[64, 128]);

fn sample(keys: &Stek, attempts: u32) {
    TICKET_SIZE.observe(keys.enc_key.len() as u64);
    SPAN.record(attempts as u64, 7);
    emit(attempts as u64);
}
