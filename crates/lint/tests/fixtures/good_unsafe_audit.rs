// A sound unsafe block: it states the invariant that makes it safe and
// touches only public buffers — no key material near the raw pointer.

fn zero_words(buf: &mut [u64]) {
    // SAFETY: the pointer and length come from the same live slice.
    unsafe {
        core::ptr::write_bytes(buf.as_mut_ptr(), 0, buf.len());
    }
}
