// Experiment logic runs on virtual time threaded in by the caller; wall
// clocks are fine inside #[cfg(test)] code, which the analyzer exempts.
pub fn span_days(first_seen: u64, last_seen: u64) -> u64 {
    (last_seen - first_seen) / 86_400 + 1
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_inside_tests_is_exempt() {
        let t = Instant::now();
        assert_eq!(super::span_days(0, 86_400), 2);
        assert!(t.elapsed().as_secs() < 60);
    }
}
