// A `Wipe` impl (or `Drop`) satisfies the zeroization requirement.

// ctlint: secret
struct ExportKey {
    bytes: Vec<u8>,
}

impl ts_crypto::wipe::Wipe for ExportKey {
    fn wipe(&mut self) {
        ts_crypto::wipe::wipe_bytes(&mut self.bytes);
    }
}

impl Drop for ExportKey {
    fn drop(&mut self) {
        use ts_crypto::wipe::Wipe;
        self.wipe();
    }
}
