// Wipes that every path reaches: the buffer is erased before the first
// fallible call, and the method-form wipe has no early exit between
// binding and wipe.

fn derive_and_send(seed: &[u8]) -> Result<(), Error> {
    let mut kb = expand(seed);
    let tag = seal(&kb);
    wipe_bytes(&mut kb);
    transmit(&tag)?;
    Ok(())
}

fn rotate(mgr: &mut Mgr) {
    let mut old = mgr.take_old();
    old.wipe();
}
