//! The interprocedural contract: taint that crosses function boundaries
//! through innocently-typed channels must still reach the rules, the call
//! graph must be a pure total function of its input, and the report must
//! not depend on the worker count.

use proptest::prelude::*;

/// A master secret laundered through two helper hops — each typed as a
/// plain `Vec<u8>` — into a telemetry sink in a third file. No single file
/// shows a violation on its own; only the workspace call graph does.
#[test]
fn two_hop_leak_reaches_the_sink_rule() {
    let files: Vec<(String, String)> = [
        (
            "crates/a/src/hop1.rs",
            "pub fn acquire(state: &SessionState) {\n    \
             relay(state.master_secret.to_vec());\n}\n",
        ),
        (
            "crates/b/src/hop2.rs",
            "pub fn relay(material: Vec<u8>) {\n    deliver(material);\n}\n",
        ),
        (
            "crates/c/src/hop3.rs",
            "pub fn deliver(payload: Vec<u8>) {\n    \
             LATENCY.observe(payload[0] as u64);\n}\n",
        ),
    ]
    .into_iter()
    .map(|(p, s)| (p.to_string(), s.to_string()))
    .collect();

    // Each file in isolation is clean — the leak is invisible lexically.
    for f in &files {
        let solo = ts_lint::analyze_sources(std::slice::from_ref(f), &ts_lint::Config::default());
        assert!(solo.is_clean(), "{}: {}", f.0, solo.render());
    }

    // Together, the sink call in the third file fires.
    let report = ts_lint::analyze_sources(&files, &ts_lint::Config::default());
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render());
    let d = &report.diagnostics[0];
    assert_eq!(d.rule.id(), "telemetry-sink");
    assert_eq!(d.file, "crates/c/src/hop3.rs");
    assert_eq!(d.ident, "payload");

    // And the report is byte-identical at any worker count.
    for workers in [2usize, 8] {
        let multi =
            ts_lint::analyze_sources_with_workers(&files, &ts_lint::Config::default(), workers);
        assert_eq!(multi.render(), report.render(), "workers={workers}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Call-graph construction is total (never panics on rust-shaped soup)
    // and deterministic (two builds over the same indexes agree exactly).
    #[test]
    fn callgraph_build_is_total_and_deterministic(
        srcs in proptest::collection::vec(
            "[a-zA-Z0-9_ .:;,<>=!&|'\"/#\\[\\]{}()*?-]{0,160}",
            1..6,
        ),
    ) {
        let files: Vec<ts_lint::index::FileIndex> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| ts_lint::index::scan_file(&format!("f{i}.rs"), s))
            .collect();
        let a = ts_lint::callgraph::CallGraph::build(&files);
        let b = ts_lint::callgraph::CallGraph::build(&files);
        prop_assert_eq!(&a.defs, &b.defs);
        prop_assert_eq!(&a.calls, &b.calls);
        // Shape invariant the flow solver indexes by: one call-site list
        // per (file, fn).
        prop_assert_eq!(a.calls.len(), files.len());
        for (f, per_fn) in files.iter().zip(&a.calls) {
            prop_assert_eq!(per_fn.len(), f.fns.len());
        }
        // Every resolved name must point at an in-bounds production fn.
        for (name, ids) in &a.defs {
            if let Some(id) = a.resolve(name) {
                prop_assert_eq!(ids.len(), 1);
                prop_assert!(id.file < files.len());
                prop_assert!(id.fn_idx < files[id.file].fns.len());
            }
        }
    }
}
