//! The lexer (and the whole scan pipeline above it) must never panic:
//! `ts-lint` reads every `.rs` file in the workspace, including half-typed
//! code during development, so arbitrary byte soup has to tokenize.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Arbitrary (lossy-decoded) bytes: exercises unterminated strings,
    // stray quotes, lone backslashes, non-ASCII, embedded NULs.
    #[test]
    fn lex_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = ts_lint::lexer::lex(&src);
    }

    // Rust-shaped soup: dense in the constructs the scanner layer keys on
    // (comments, strings, braces, lifetimes, char literals), so the deeper
    // index/rules passes get driven too, via analyze_sources.
    #[test]
    fn scan_rust_shaped_soup(src in "[a-zA-Z0-9_ .:;,<>=!&|'\"/#\\[\\]{}()*-]{0,200}") {
        let toks = ts_lint::lexer::lex(&src);
        // Line numbers are monotonic — downstream rules rely on this.
        for w in toks.windows(2) {
            prop_assert!(w[0].line <= w[1].line);
        }
        let report = ts_lint::analyze_sources(
            &[("soup.rs".to_string(), src.clone())],
            &ts_lint::Config::default(),
        );
        let _ = report.render();
    }
}
