//! The lexer (and the whole scan pipeline above it) must never panic:
//! `ts-lint` reads every `.rs` file in the workspace, including half-typed
//! code during development, so arbitrary byte soup has to tokenize.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Arbitrary (lossy-decoded) bytes: exercises unterminated strings,
    // stray quotes, lone backslashes, non-ASCII, embedded NULs.
    #[test]
    fn lex_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = ts_lint::lexer::lex(&src);
    }

    // Rust-shaped soup: dense in the constructs the scanner layer keys on
    // (comments, strings, braces, lifetimes, char literals), so the deeper
    // index/rules passes get driven too, via analyze_sources.
    #[test]
    fn scan_rust_shaped_soup(src in "[a-zA-Z0-9_ .:;,<>=!&|'\"/#\\[\\]{}()*-]{0,200}") {
        let toks = ts_lint::lexer::lex(&src);
        // Line numbers are monotonic — downstream rules rely on this.
        for w in toks.windows(2) {
            prop_assert!(w[0].line <= w[1].line);
        }
        let report = ts_lint::analyze_sources(
            &[("soup.rs".to_string(), src.clone())],
            &ts_lint::Config::default(),
        );
        let _ = report.render();
    }

    // Turbofish drains: whatever the identifier spelling or spacing, a
    // hash-map drain collected through `::<Vec<..>>` must flag exactly one
    // unordered-iteration, while `::<BTreeMap<..>>` re-keys clean. Also
    // pins the lexer contract the chain walker relies on: `::` is one
    // token and never fuses with the following `<` into a `::<` composite.
    #[test]
    fn turbofish_drain_classification(
        stem in "[a-z][a-z0-9_]{0,10}",
        ws in " {0,3}",
    ) {
        let n = format!("m_{stem}");
        let flagged = format!(
            "fn f(mut {n}: std::collections::HashMap<String, u64>) -> Vec<(String, u64)> {{\n    \
             {n}.drain(){ws}.collect{ws}::<Vec<(String, u64)>>()\n}}\n"
        );
        for tok in ts_lint::lexer::lex(&flagged) {
            prop_assert_ne!(tok.text.as_str(), "::<", "lexer must not fuse ::<");
        }
        let report = ts_lint::analyze_sources(
            &[("turbofish.rs".to_string(), flagged)],
            &ts_lint::Config::default(),
        );
        prop_assert_eq!(report.diagnostics.len(), 1, "{}", report.render());
        prop_assert_eq!(report.diagnostics[0].rule.id(), "unordered-iteration");
        prop_assert_eq!(&report.diagnostics[0].ident, &n);

        let rekeyed = format!(
            "fn f(mut {n}: std::collections::HashMap<String, u64>) \
             -> std::collections::BTreeMap<String, u64> {{\n    \
             {n}.drain(){ws}.collect{ws}::<std::collections::BTreeMap<String, u64>>()\n}}\n"
        );
        let report = ts_lint::analyze_sources(
            &[("turbofish.rs".to_string(), rekeyed)],
            &ts_lint::Config::default(),
        );
        prop_assert!(report.is_clean(), "{}", report.render());
    }

    // `for (k, v) in map` destructuring: the rule must anchor the finding
    // on the map, never on the pattern bindings, for any ident spelling.
    #[test]
    fn for_loop_destructuring_anchors_on_the_map(
        map_stem in "[a-z][a-z0-9_]{0,10}",
        key_stem in "[a-z][a-z0-9_]{0,10}",
        val_stem in "[a-z][a-z0-9_]{0,10}",
    ) {
        let (n, k, v) = (format!("m_{map_stem}"), format!("k_{key_stem}"), format!("v_{val_stem}"));
        let src = format!(
            "fn g({n}: std::collections::HashMap<String, u64>) -> u64 {{\n    \
             let mut acc = 0;\n    \
             for ({k}, {v}) in &{n} {{\n        acc += *{v} + {k}.len() as u64;\n    }}\n    \
             acc\n}}\n"
        );
        let report = ts_lint::analyze_sources(
            &[("destructure.rs".to_string(), src)],
            &ts_lint::Config::default(),
        );
        prop_assert_eq!(report.diagnostics.len(), 1, "{}", report.render());
        prop_assert_eq!(report.diagnostics[0].rule.id(), "unordered-iteration");
        prop_assert_eq!(&report.diagnostics[0].ident, &n);
    }
}
