//! # ts-loadgen — a handshake load generator for the sans-I/O stack
//!
//! `repro loadgen` runs N worker threads hammering a simulated server
//! fleet (one CA, M leaf identities, **one shared session cache and one
//! shared STEK manager** — a §5 "service group") with a configurable mix
//! of full handshakes, session-ID resumptions, and ticket resumptions.
//! Every connection is driven through the poll-based connection API
//! ([`ts_tls::ConnectionCommon::read_tls`] / `write_tls` /
//! `process_new_packets`), so the harness doubles as a stress test of the
//! sharded cache and the epoch-pinned STEK snapshot under real thread
//! contention.
//!
//! ## Determinism contract
//!
//! The *work counts* (handshakes per kind, cache hits, tickets issued) are
//! a pure function of `(seed, workers, targets, requests_per_worker, mix)`
//! and independent of thread scheduling:
//!
//! * virtual time is pinned, so nothing expires, rotates, or is evicted;
//! * each worker resumes only sessions it established itself, so a hit
//!   can never depend on another worker's progress;
//! * the mix schedule is positional (`i % 100` against the percentages),
//!   not sampled.
//!
//! Wall-clock latencies go to a *wall-flagged* histogram
//! ([`ts_telemetry::Histogram::new_wall`]), which the deterministic
//! telemetry form drops — so `--telemetry-json` output stays byte-identical
//! across same-seed runs at any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use ts_crypto::drbg::HmacDrbg;
use ts_crypto::rsa::RsaPrivateKey;
use ts_telemetry::{Counter, Histogram};
use ts_tls::cache::SharedSessionCache;
use ts_tls::config::{ClientConfig, ServerConfig, ServerIdentity};
use ts_tls::ephemeral::{EphemeralCache, EphemeralPolicy};
use ts_tls::pump::{pump, pump_app_data};
use ts_tls::server::ResumeKind;
use ts_tls::session::SessionState;
use ts_tls::ticket::{RotationPolicy, SharedStekManager, StekManager, TicketFormat};
use ts_tls::{ClientConn, ServerConn};
use ts_x509::{Certificate, CertificateParams, DistinguishedName, RootStore, Validity};

static LG_OK: Counter = Counter::new("loadgen.handshake.ok");
static LG_FULL: Counter = Counter::new("loadgen.handshake.full");
static LG_RESUME_SID: Counter = Counter::new("loadgen.resume.session_id");
static LG_RESUME_TICKET: Counter = Counter::new("loadgen.resume.ticket");
static LG_BULK_TRANSFERS: Counter = Counter::new("loadgen.bulk.transfers");
static LG_BULK_BYTES: Counter = Counter::new("loadgen.bulk.app_bytes");
/// Wall-clock handshake latency in microseconds. Excluded from the
/// deterministic telemetry form (see `Histogram::new_wall`).
static LG_LATENCY_US: Histogram = Histogram::new_wall(
    "loadgen.handshake_us",
    &[
        50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
        1_000_000,
    ],
);

/// The fixed virtual time every connection handshakes at: nothing ages,
/// so cache entries never expire and STEKs never rotate mid-run.
const VIRTUAL_NOW: u64 = 100;

/// Resumption mix as percentages of the request schedule (must sum to
/// 100). A resumption slot with nothing stashed yet falls back to a full
/// handshake — still deterministically, since the schedule is positional.
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Full handshakes per 100 requests.
    pub full_pct: u8,
    /// Session-ID resumptions per 100 requests.
    pub session_id_pct: u8,
    /// Ticket resumptions per 100 requests.
    pub ticket_pct: u8,
}

impl Mix {
    /// The paper-motivated default: resumption-heavy (10/45/45).
    pub const RESUMPTION_HEAVY: Mix = Mix {
        full_pct: 10,
        session_id_pct: 45,
        ticket_pct: 45,
    };
}

/// Load-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Worker threads.
    pub workers: usize,
    /// Distinct server identities in the fleet (all sharing one session
    /// cache and one STEK manager).
    pub targets: usize,
    /// Requests each worker performs.
    pub requests_per_worker: usize,
    /// Request mix.
    pub mix: Mix,
    /// Seed for all derived randomness.
    pub seed: u64,
    /// Percentage of requests (positional, like the mix schedule) that
    /// additionally transfer application data through the negotiated
    /// record protection after the handshake: client sends
    /// [`LoadgenConfig::bulk_bytes`], server echoes them back. 0 disables
    /// bulk transfer entirely, leaving the handshake-only profile (and
    /// its CI-pinned work counts) untouched.
    pub bulk_pct: u8,
    /// Application bytes per direction of each bulk transfer.
    pub bulk_bytes: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            workers: 1,
            targets: 4,
            requests_per_worker: 200,
            mix: Mix::RESUMPTION_HEAVY,
            seed: 2016,
            bulk_pct: 0,
            bulk_bytes: 16_384,
        }
    }
}

/// Deterministic work performed by a run — a pure function of the config,
/// asserted byte-for-byte by the CI smoke job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkCounts {
    /// Total successful handshakes.
    pub handshakes: u64,
    /// Full handshakes (including resumption-slot fallbacks).
    pub full: u64,
    /// Session-ID cache resumptions.
    pub resume_session_id: u64,
    /// Ticket resumptions.
    pub resume_ticket: u64,
}

/// Deterministic bulk-transfer tallies, kept out of [`WorkCounts`] so the
/// CI equality check on the `work` object is independent of bulk knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BulkCounts {
    /// Echo round-trips performed (one per bulk-scheduled request).
    pub transfers: u64,
    /// Total application bytes moved (both directions summed).
    pub app_bytes: u64,
}

/// Outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// The config that produced this report.
    pub config: LoadgenConfig,
    /// Deterministic work counts.
    pub work: WorkCounts,
    /// Deterministic bulk-transfer counts (all zero when `bulk_pct` is 0).
    pub bulk: BulkCounts,
    /// Wall seconds for the whole run (from the injected clock).
    pub elapsed_secs: f64,
    /// Busy seconds of the busiest worker — the run's critical path on a
    /// machine with at least `workers` idle cores.
    pub max_worker_busy_secs: f64,
    /// Sum of all workers' busy seconds.
    pub total_busy_secs: f64,
    /// p50 handshake latency in microseconds (None if nothing measured).
    pub p50_us: Option<u64>,
    /// p99 handshake latency in microseconds.
    pub p99_us: Option<u64>,
}

impl LoadgenReport {
    /// Measured wall throughput.
    pub fn handshakes_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.work.handshakes as f64 / self.elapsed_secs
    }

    /// Throughput this run would sustain with every worker on its own
    /// core: total work divided by the busiest worker's busy time. On a
    /// host with fewer cores than workers, wall throughput degrades to
    /// serial while this stays flat-to-rising — report both.
    pub fn modeled_ideal_core_hs_per_sec(&self) -> f64 {
        if self.max_worker_busy_secs <= 0.0 {
            return 0.0;
        }
        self.work.handshakes as f64 / self.max_worker_busy_secs
    }

    /// Render as JSON (schema `loadgen/v1`). The `work` object is
    /// deterministic; everything under `measured` carries wall time.
    pub fn to_json(&self) -> String {
        let fmt_opt = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
        format!(
            "{{\n  \"schema\": \"loadgen/v1\",\n  \
             \"workers\": {},\n  \"targets\": {},\n  \"requests_per_worker\": {},\n  \
             \"seed\": {},\n  \
             \"mix\": {{\"full_pct\": {}, \"session_id_pct\": {}, \"ticket_pct\": {}}},\n  \
             \"work\": {{\"handshakes\": {}, \"full\": {}, \"resume_session_id\": {}, \
             \"resume_ticket\": {}}},\n  \
             \"bulk\": {{\"pct\": {}, \"bytes_per_direction\": {}, \"transfers\": {}, \
             \"app_bytes\": {}}},\n  \
             \"measured\": {{\"elapsed_secs\": {:.3}, \"handshakes_per_sec\": {:.1}, \
             \"max_worker_busy_secs\": {:.3}, \"total_busy_secs\": {:.3}, \
             \"modeled_ideal_core_hs_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}\n}}",
            self.config.workers,
            self.config.targets,
            self.config.requests_per_worker,
            self.config.seed,
            self.config.mix.full_pct,
            self.config.mix.session_id_pct,
            self.config.mix.ticket_pct,
            self.work.handshakes,
            self.work.full,
            self.work.resume_session_id,
            self.work.resume_ticket,
            self.config.bulk_pct,
            self.config.bulk_bytes,
            self.bulk.transfers,
            self.bulk.app_bytes,
            self.elapsed_secs,
            self.handshakes_per_sec(),
            self.max_worker_busy_secs,
            self.total_busy_secs,
            self.modeled_ideal_core_hs_per_sec(),
            fmt_opt(self.p50_us),
            fmt_opt(self.p99_us),
        )
    }
}

/// The simulated fleet: one root store and one `ServerConfig` per target,
/// all sharing a single session cache and STEK manager.
pub struct Fleet {
    /// Trust store containing the fleet CA.
    pub store: Arc<RootStore>,
    /// Per-target server configs (index = target id).
    pub configs: Vec<ServerConfig>,
}

/// The SNI of target `t`.
pub fn target_sni(t: usize) -> String {
    format!("lg-{t}.sim")
}

/// Build a fleet of `targets` servers from `seed`.
///
/// The shared cache is sized so the run can never evict (eviction order
/// would depend on thread interleaving); the STEK policy is `Static` so
/// the epoch-pinned snapshot stays on its lock-free fast path after the
/// first acceptance — exactly the steady state worth measuring.
pub fn build_fleet(cfg: &LoadgenConfig) -> Fleet {
    let mut rng = HmacDrbg::from_seed_label(cfg.seed, "loadgen-fleet");
    let ca_key = RsaPrivateKey::generate(512, &mut rng).expect("ca key");
    let ca_name = DistinguishedName::cn("Loadgen CA");
    let ca = Certificate::issue(
        &CertificateParams {
            serial: 1,
            subject: ca_name.clone(),
            validity: Validity {
                not_before: 0,
                not_after: u32::MAX as u64,
            },
            dns_names: vec![],
            is_ca: true,
        },
        &ca_key.public,
        &ca_name,
        &ca_key,
    );
    let mut store = RootStore::new();
    store.add_root(ca);

    // Headroom over the worst case (every request a full handshake, every
    // full handshake inserting one session) so eviction never triggers.
    // The total is multiplied by the shard count because SharedSessionCache
    // splits capacity evenly across shards while the target SNIs may all
    // hash into one — each shard must individually fit the worst case.
    let cache_capacity =
        (cfg.workers * cfg.requests_per_worker + 1_024) * ts_tls::cache::SHARD_COUNT;
    let cache = SharedSessionCache::new(3_600, cache_capacity);
    let stek = SharedStekManager::new(StekManager::new(
        RotationPolicy::Static,
        TicketFormat::Rfc5077,
        HmacDrbg::from_seed_label(cfg.seed, "loadgen-stek"),
        0,
    ));

    let configs = (0..cfg.targets)
        .map(|t| {
            let sni = target_sni(t);
            let key = RsaPrivateKey::generate(512, &mut rng).expect("leaf key");
            let leaf = Certificate::issue(
                &CertificateParams {
                    serial: 2 + t as u64,
                    subject: DistinguishedName::cn(&sni),
                    validity: Validity {
                        not_before: 0,
                        not_after: u32::MAX as u64,
                    },
                    dns_names: vec![sni.clone()],
                    is_ca: false,
                },
                &key.public,
                &ca_name,
                &ca_key,
            );
            let eph = EphemeralCache::new(
                EphemeralPolicy::FreshPerHandshake,
                ts_crypto::dh::DhGroup::Sim256,
                HmacDrbg::from_seed_label(cfg.seed ^ t as u64, "loadgen-eph"),
            );
            let mut sc = ServerConfig::new(
                Arc::new(ServerIdentity {
                    chain: vec![leaf],
                    key,
                }),
                eph,
            );
            sc.session_cache = Some(cache.clone());
            sc.tickets = Some(stek.clone());
            sc.ticket_lifetime_hint = 3_600;
            sc.ticket_accept_window = 3_600;
            sc
        })
        .collect();
    Fleet {
        store: Arc::new(store),
        configs,
    }
}

/// What a worker remembers about a target it has already visited. The
/// session ID and ticket blob are cleartext wire artifacts (§4.2); only
/// the `SessionState` fields below carry the master secret.
#[derive(Default)]
struct TargetStash {
    // ctlint: public
    session_id: Vec<u8>,
    session_state: Option<SessionState>,
    // ctlint: public
    ticket_blob: Vec<u8>,
    ticket_state: Option<SessionState>,
}

/// The three request kinds a schedule slot can ask for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Full,
    SessionId,
    Ticket,
}

fn kind_for(mix: Mix, i: usize) -> Kind {
    let slot = (i % 100) as u8;
    if slot < mix.full_pct {
        Kind::Full
    } else if slot < mix.full_pct + mix.session_id_pct {
        Kind::SessionId
    } else {
        Kind::Ticket
    }
}

/// Per-worker result, merged by [`run`].
struct WorkerOutcome {
    counts: WorkCounts,
    bulk: BulkCounts,
    busy_nanos: u64,
}

/// Is request `i` a bulk-transfer slot? Positional like [`kind_for`], so
/// bulk work counts stay a pure function of the config.
fn is_bulk_slot(cfg: &LoadgenConfig, i: usize) -> bool {
    cfg.bulk_pct > 0 && cfg.bulk_bytes > 0 && (i % 100) < cfg.bulk_pct as usize
}

fn run_worker(
    fleet: &Fleet,
    cfg: &LoadgenConfig,
    worker: usize,
    clock: &(dyn Fn() -> u64 + Sync),
) -> WorkerOutcome {
    let mut stash: Vec<TargetStash> = (0..cfg.targets).map(|_| TargetStash::default()).collect();
    let mut counts = WorkCounts {
        handshakes: 0,
        full: 0,
        resume_session_id: 0,
        resume_ticket: 0,
    };
    let mut bulk = BulkCounts::default();
    let mut busy_nanos = 0u64;
    for i in 0..cfg.requests_per_worker {
        // Spread workers across targets with a per-worker phase so the
        // fleet (and all cache shards) see traffic from request 0 on.
        let target = (worker + i) % cfg.targets;
        let kind = kind_for(cfg.mix, i);
        let mut ccfg = ClientConfig::new(fleet.store.clone(), &target_sni(target), VIRTUAL_NOW);
        match kind {
            Kind::SessionId => {
                if let Some(state) = stash[target].session_state.clone() {
                    ccfg.resumption.session = Some((stash[target].session_id.clone(), state));
                }
            }
            Kind::Ticket => {
                if let Some(state) = stash[target].ticket_state.clone() {
                    ccfg.resumption.ticket = Some((stash[target].ticket_blob.clone(), state));
                }
            }
            Kind::Full => {}
        }
        let client_rng = HmacDrbg::new(format!("lg-{}-w{worker}-r{i}-c", cfg.seed).as_bytes());
        let server_rng = HmacDrbg::new(format!("lg-{}-w{worker}-r{i}-s", cfg.seed).as_bytes());
        let t0 = clock();
        let mut client = ClientConn::new(ccfg, client_rng);
        let mut server = ServerConn::new(fleet.configs[target].clone(), server_rng, VIRTUAL_NOW);
        let mut capture = pump(&mut client, &mut server)
            .expect("loadgen handshake")
            .capture;
        let t1 = clock();
        busy_nanos += t1.saturating_sub(t0);
        LG_LATENCY_US.observe(t1.saturating_sub(t0) / 1_000);
        let summary = client.summary().expect("established");
        counts.handshakes += 1;
        LG_OK.inc();
        match summary.resumed {
            None => {
                counts.full += 1;
                LG_FULL.inc();
                // Stash what this full handshake earned for later slots.
                if !summary.server_session_id.is_empty() {
                    stash[target].session_id = summary.server_session_id.clone();
                    stash[target].session_state = Some(summary.session.clone());
                }
                if let Some(nst) = &summary.new_ticket {
                    stash[target].ticket_blob = nst.ticket.clone();
                    stash[target].ticket_state = Some(summary.session.clone());
                }
            }
            Some(ResumeKind::SessionId) => {
                counts.resume_session_id += 1;
                LG_RESUME_SID.inc();
            }
            Some(ResumeKind::Ticket) => {
                counts.resume_ticket += 1;
                LG_RESUME_TICKET.inc();
            }
        }
        if is_bulk_slot(cfg, i) {
            // Echo round-trip through the negotiated record protection —
            // the record-layer (AES-GCM / ChaCha20-Poly1305) counterpart
            // of the handshake stress above. The payload pattern varies
            // per request so a stuck sequence number or IV would trip the
            // equality checks.
            let payload: Vec<u8> = (0..cfg.bulk_bytes)
                .map(|b| (b as u8).wrapping_add(i as u8))
                .collect();
            let b0 = clock();
            client.send_app_data(&payload).expect("bulk send");
            pump_app_data(&mut client, &mut server, &mut capture).expect("bulk pump");
            // `ct_eq` + `panic!` instead of `assert_eq!` on purpose:
            // assert macros Debug-format their (secret-tainted) arguments
            // on failure, and `==` on tainted data trips the
            // timing-oracle lint.
            if !ts_crypto::ct::ct_eq(&server.recv_app_data(), &payload) {
                panic!("bulk upstream mismatch");
            }
            server.send_app_data(&payload).expect("bulk echo");
            pump_app_data(&mut client, &mut server, &mut capture).expect("bulk echo pump");
            if !ts_crypto::ct::ct_eq(&client.recv_app_data(), &payload) {
                panic!("bulk downstream mismatch");
            }
            busy_nanos += clock().saturating_sub(b0);
            bulk.transfers += 1;
            bulk.app_bytes += 2 * payload.len() as u64;
            LG_BULK_TRANSFERS.inc();
            LG_BULK_BYTES.add(2 * payload.len() as u64);
        }
    }
    WorkerOutcome {
        counts,
        bulk,
        busy_nanos,
    }
}

/// Run the load profile. `clock` supplies monotonic nanoseconds (injected
/// so this crate stays wall-clock-free under the determinism lint; the
/// `repro` binary passes an `Instant`-based closure, tests a fake).
pub fn run(cfg: &LoadgenConfig, clock: &(dyn Fn() -> u64 + Sync)) -> LoadgenReport {
    assert!(cfg.workers > 0 && cfg.targets > 0, "workers/targets >= 1");
    assert_eq!(
        cfg.mix.full_pct as u32 + cfg.mix.session_id_pct as u32 + cfg.mix.ticket_pct as u32,
        100,
        "mix percentages must sum to 100"
    );
    let fleet = build_fleet(cfg);
    let before = ts_telemetry::snapshot();
    let t0 = clock();
    let fleet_ref = &fleet;
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|w| s.spawn(move || run_worker(fleet_ref, cfg, w, clock)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let elapsed_secs = clock().saturating_sub(t0) as f64 / 1e9;
    let after = ts_telemetry::snapshot();

    let mut work = WorkCounts {
        handshakes: 0,
        full: 0,
        resume_session_id: 0,
        resume_ticket: 0,
    };
    let mut bulk = BulkCounts::default();
    let mut max_busy = 0u64;
    let mut total_busy = 0u64;
    for o in &outcomes {
        work.handshakes += o.counts.handshakes;
        work.full += o.counts.full;
        work.resume_session_id += o.counts.resume_session_id;
        work.resume_ticket += o.counts.resume_ticket;
        bulk.transfers += o.bulk.transfers;
        bulk.app_bytes += o.bulk.app_bytes;
        max_busy = max_busy.max(o.busy_nanos);
        total_busy += o.busy_nanos;
    }
    let delta = after.delta_since(&before);
    let latency = delta
        .histograms
        .iter()
        .find(|h| h.name == "loadgen.handshake_us");
    LoadgenReport {
        config: *cfg,
        work,
        bulk,
        elapsed_secs,
        max_worker_busy_secs: max_busy as f64 / 1e9,
        total_busy_secs: total_busy as f64 / 1e9,
        p50_us: latency.and_then(|h| h.percentile(50.0)),
        p99_us: latency.and_then(|h| h.percentile(99.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake monotonic clock: 1µs per read, no wall time.
    fn fake_clock() -> impl Fn() -> u64 + Sync {
        let ticks = std::sync::atomic::AtomicU64::new(0);
        move || ticks.fetch_add(1, std::sync::atomic::Ordering::Relaxed) * 1_000
    }

    fn small(workers: usize) -> LoadgenConfig {
        LoadgenConfig {
            workers,
            targets: 3,
            requests_per_worker: 40,
            mix: Mix::RESUMPTION_HEAVY,
            seed: 7,
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn work_counts_are_deterministic_across_worker_counts_per_worker() {
        // The same worker index produces the same counts regardless of how
        // many siblings run beside it.
        let clock = fake_clock();
        let solo = run(&small(1), &clock);
        let four = run(&small(4), &clock);
        assert_eq!(four.work.handshakes, 4 * solo.work.handshakes);
        assert_eq!(four.work.full, 4 * solo.work.full);
        assert_eq!(four.work.resume_session_id, 4 * solo.work.resume_session_id);
        assert_eq!(four.work.resume_ticket, 4 * solo.work.resume_ticket);
    }

    #[test]
    fn resumption_mix_is_respected_after_warmup() {
        let clock = fake_clock();
        let cfg = LoadgenConfig {
            workers: 2,
            targets: 2,
            requests_per_worker: 100,
            mix: Mix::RESUMPTION_HEAVY,
            seed: 11,
            ..LoadgenConfig::default()
        };
        let report = run(&cfg, &clock);
        assert_eq!(report.work.handshakes, 200);
        // Slots 0..9 are full; the earliest resumption slots may fall back
        // to full until the worker has stashed a session per target, but
        // with requests covering both targets the overwhelming majority of
        // the 90 resumption slots must actually resume.
        assert!(report.work.full >= 20, "full floor: {:?}", report.work);
        assert!(
            report.work.resume_session_id >= 80,
            "sid resumes: {:?}",
            report.work
        );
        assert!(
            report.work.resume_ticket >= 80,
            "ticket resumes: {:?}",
            report.work
        );
        assert_eq!(
            report.work.full + report.work.resume_session_id + report.work.resume_ticket,
            report.work.handshakes
        );
    }

    #[test]
    fn report_json_has_schema_and_work_fields() {
        let clock = fake_clock();
        let report = run(&small(1), &clock);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"loadgen/v1\""));
        assert!(json.contains("\"work\""));
        assert!(json.contains(&format!("\"handshakes\": {}", report.work.handshakes)));
    }

    #[test]
    fn bulk_slots_echo_deterministic_byte_counts() {
        let clock = fake_clock();
        let mut cfg = small(2);
        cfg.bulk_pct = 50;
        cfg.bulk_bytes = 1_000;
        let report = run(&cfg, &clock);
        // 40 requests/worker: slots 0..49 of each century are bulk, so all
        // 40 are. Two workers → 80 transfers, 2 kB moved per transfer.
        assert_eq!(report.bulk.transfers, 80);
        assert_eq!(report.bulk.app_bytes, 80 * 2 * 1_000);
        // Bulk transfer must not perturb the handshake work counts.
        let baseline = run(&small(2), &clock);
        assert_eq!(report.work, baseline.work);
        assert_eq!(baseline.bulk, BulkCounts::default());
        let json = report.to_json();
        assert!(json.contains("\"bulk\""));
        assert!(json.contains("\"transfers\": 80"));
    }

    #[test]
    fn bulk_payload_crosses_record_fragmentation_boundary() {
        // 40 000 bytes forces write_record to fragment each direction into
        // three protected records; the echo equality inside run_worker is
        // the actual assertion — this test just has to survive it.
        let clock = fake_clock();
        let mut cfg = small(1);
        cfg.requests_per_worker = 2;
        cfg.bulk_pct = 100;
        cfg.bulk_bytes = 40_000;
        let report = run(&cfg, &clock);
        assert_eq!(report.bulk.transfers, 2);
        assert_eq!(report.bulk.app_bytes, 2 * 2 * 40_000);
    }

    #[test]
    fn full_only_mix_never_resumes() {
        let clock = fake_clock();
        let cfg = LoadgenConfig {
            workers: 1,
            targets: 2,
            requests_per_worker: 30,
            mix: Mix {
                full_pct: 100,
                session_id_pct: 0,
                ticket_pct: 0,
            },
            seed: 3,
            ..LoadgenConfig::default()
        };
        let report = run(&cfg, &clock);
        assert_eq!(report.work.full, 30);
        assert_eq!(report.work.resume_session_id, 0);
        assert_eq!(report.work.resume_ticket, 0);
    }
}
